from setuptools import setup

setup(
    extras_require={
        # The compiled kernel backend (REPRO_KERNELS=native / TrainConfig
        # kernels="native") loads its C library through cffi; a C
        # compiler (cc/gcc/clang) must be on PATH at first use.  The
        # numpy reference backend needs neither.
        "native": ["cffi"],
    },
)
