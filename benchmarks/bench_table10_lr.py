"""Table X: inconsistent client/server learning rates (supplementary D)."""

from repro.experiments import table10_learning_rates

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def _hr(cell: str) -> float:
    return float(cell.split("/")[1])


def test_table10_learning_rates(benchmark, archive):
    table = run_once(benchmark, table10_learning_rates)
    archive("table10_lr", table)
    rows = {(row[0], row[1]): row[2] for row in table.rows}
    consistent = "eta_i = eta (1.0)"
    # Reproduction checks: mismatched rates hurt HR; the attack stays
    # effective in the well-configured FRS.
    assert _hr(rows[("eta_i = 1e-2", "NoAttack")]) < _hr(rows[(consistent, "NoAttack")])
    assert _er(rows[(consistent, "PIECK-UEA")]) > _er(rows[(consistent, "NoAttack")])
