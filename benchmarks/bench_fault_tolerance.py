"""Fault-tolerance layer: zero-fault overhead floor + degradation curve.

Two questions, answered with numbers and asserted in CI:

* **What does tolerance cost when nothing fails?**  Three runs are
  timed pairwise-interleaved (per-repeat ratios, median taken — this
  cancels machine drift that would swamp a 5 % bound):

  - *stripped* — the same code with the server gate monkeypatched to
    the identity: the pre-fault-tolerance baseline, reconstructed;
  - *default* — what every run pays now unconditionally: the one-pass
    non-finite screen.  Asserted ``<= OVERHEAD_CEILING`` (5 % full
    scale) over stripped;
  - *armed* — opt-in ``min_quorum`` + ``max_upload_norm`` thresholds
    that never fire; the norm gate inherently re-reads every gradient,
    so this carries a looser regression ceiling.

  All three must also be **bit-identical**: tolerance that never
  triggers must be invisible in the results, not just cheap.

* **How does the attack's reach degrade as the federation gets less
  reliable?**  A dropout-rate sweep under PIECK-UEA records the
  ER@K / HR@K curve plus the full fault accounting per rate into
  ``BENCH_fault_tolerance.json`` — the machine-readable record of how
  gracefully an unreliable federation degrades.

Run with::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py           # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke   # CI
"""

from __future__ import annotations

import dataclasses
import statistics
import sys
import time

import numpy as np

from _harness import emit_bench_json
from repro.config import (
    AttackConfig,
    DatasetConfig,
    ExperimentConfig,
    FaultConfig,
    ModelConfig,
    TrainConfig,
)
from repro.federated.simulation import FederatedSimulation

SEED = 3

#: (dataset scale, rounds, users_per_round, timing repeats, ceiling)
#: Smoke relaxes the ceiling: at tiny scale the gate's fixed per-round
#: cost weighs against much smaller round bodies.
FULL = (0.6, 40, 256, 7, 1.05)
SMOKE = (0.15, 15, 64, 5, 1.20)

#: The armed norm gate re-reads every gradient element each round —
#: an inherent extra pass, bounded here against regression rather
#: than held to the always-on budget.
ARMED_CEILING = 1.6

DROPOUT_GRID = (0.0, 0.1, 0.2, 0.4)

ARMED_NEVER_FIRING = FaultConfig(min_quorum=1, max_upload_norm=1e12)


def _config(scale: float, rounds: int, users_per_round: int, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=scale, seed=5),
        model=ModelConfig(kind="mf", embedding_dim=16, seed=SEED),
        train=TrainConfig(rounds=rounds, users_per_round=users_per_round, lr=1.0),
        seed=SEED,
        **kwargs,
    )


def _one_run(config: ExperimentConfig, stripped: bool) -> tuple[float, object, np.ndarray]:
    """Seconds-per-round of one full run (optionally with the gate off)."""
    from repro.federated.server import Server

    original = Server._gate_batch
    if stripped:
        Server._gate_batch = lambda self, batch: batch
    try:
        sim = FederatedSimulation(config, engine="batch")
        started = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - started
    finally:
        Server._gate_batch = original
    return elapsed / config.train.rounds, result, sim.model.item_embeddings.copy()


def overhead_floor(scale, rounds, users_per_round, repeats, ceiling) -> dict:
    base_cfg = _config(scale, rounds, users_per_round)
    armed_cfg = dataclasses.replace(base_cfg, faults=ARMED_NEVER_FIRING)

    # Interleaved repeats; per-repeat ratios against the stripped run
    # of the same repeat cancel slow machine drift.
    default_ratios, armed_ratios = [], []
    stripped_spr, default_spr, armed_spr = [], [], []
    for _ in range(repeats):
        spr_stripped, _, items_stripped = _one_run(base_cfg, stripped=True)
        spr_default, result_default, items_default = _one_run(base_cfg, stripped=False)
        spr_armed, result_armed, items_armed = _one_run(armed_cfg, stripped=False)
        stripped_spr.append(spr_stripped)
        default_spr.append(spr_default)
        armed_spr.append(spr_armed)
        default_ratios.append(spr_default / spr_stripped)
        armed_ratios.append(spr_armed / spr_stripped)

    default_ratio = statistics.median(default_ratios)
    armed_ratio = statistics.median(armed_ratios)
    print(
        f"zero-fault overhead: stripped {statistics.median(stripped_spr) * 1e3:.2f} "
        f"ms/round, default gate {default_ratio:.3f}x (ceiling {ceiling:.2f}x), "
        f"armed norm gate {armed_ratio:.3f}x (ceiling {ARMED_CEILING:.2f}x)"
    )
    assert items_default.tobytes() == items_stripped.tobytes(), (
        "the always-on gate changed a clean trajectory; the zero-fault "
        "path must stay bit-identical"
    )
    assert items_armed.tobytes() == items_stripped.tobytes(), (
        "armed-but-idle tolerance changed the trajectory"
    )
    assert not result_default.fault_stats.any_fault
    assert not result_armed.fault_stats.any_fault
    assert default_ratio <= ceiling, (
        f"always-on gate costs {default_ratio:.3f}x per round, "
        f"over the {ceiling:.2f}x ceiling"
    )
    assert armed_ratio <= ARMED_CEILING, (
        f"armed norm gate costs {armed_ratio:.3f}x per round, "
        f"over the {ARMED_CEILING:.2f}x regression ceiling"
    )
    return {
        "stripped_sec_per_round": statistics.median(stripped_spr),
        "default_sec_per_round": statistics.median(default_spr),
        "armed_sec_per_round": statistics.median(armed_spr),
        "default_overhead_ratio": default_ratio,
        "armed_overhead_ratio": armed_ratio,
        "ceiling": ceiling,
        "armed_ceiling": ARMED_CEILING,
    }


def dropout_degradation(scale, rounds, users_per_round) -> list[dict]:
    """ER@K / HR@K versus dropout rate under PIECK-UEA."""
    curve = []
    for rate in DROPOUT_GRID:
        cfg = _config(
            scale,
            rounds,
            users_per_round,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1, mining_rounds=2),
            faults=FaultConfig(dropout_rate=rate),
        )
        sim = FederatedSimulation(cfg, engine="batch")
        result = sim.run()
        assert np.isfinite(sim.model.item_embeddings).all()
        if rate > 0:
            assert result.fault_stats.dropped_uploads > 0
        point = {
            "dropout_rate": rate,
            "er_at_k": result.exposure,
            "hr_at_k": result.hit_ratio,
            "fault_stats": result.fault_stats.to_dict(),
        }
        curve.append(point)
        print(
            f"dropout={rate:.1f}: ER@K={result.exposure:.4f} "
            f"HR@K={result.hit_ratio:.4f} "
            f"(dropped {result.fault_stats.dropped_uploads})"
        )
    return curve


def main() -> None:
    smoke = "--smoke" in sys.argv
    scale, rounds, users_per_round, repeats, ceiling = SMOKE if smoke else FULL
    overhead = overhead_floor(scale, rounds, users_per_round, repeats, ceiling)
    curve = dropout_degradation(scale, rounds, users_per_round)
    path = emit_bench_json(
        "fault_tolerance",
        {
            "mode": "smoke" if smoke else "full",
            "config": {
                "dataset_scale": scale,
                "rounds": rounds,
                "users_per_round": users_per_round,
                "timing_repeats": repeats,
            },
            "zero_fault_overhead": overhead,
            "dropout_degradation": curve,
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
