"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure (scaled presets),
prints it, and archives it under ``benchmarks/results/`` so the
regenerated rows survive pytest's output capturing.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture()
def archive():
    """Print a regenerated table and persist it to benchmarks/results/.

    ``fig_id`` additionally archives the ASCII rendering of the figure
    (see :func:`repro.experiments.plotting.render_figure`) next to the
    table, so the archived artifact shows the curve, not only the rows.
    """

    def _archive(name: str, table, fig_id: str | None = None) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = str(table)
        if fig_id is not None:
            from repro.experiments.plotting import render_figure

            rendering = render_figure(fig_id, table)
            if rendering is not None:
                text = f"{text}\n\n{rendering}"
        print("\n" + text)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")

    return _archive


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
