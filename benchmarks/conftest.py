"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure (scaled presets),
prints it, and archives it under ``benchmarks/results/`` so the
regenerated rows survive pytest's output capturing.  Every bench test
additionally leaves a machine-readable ``BENCH_<name>.json`` (wall
time plus whatever numbers the bench contributes) via the autouse
``bench_json`` fixture — see ``benchmarks/_harness.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import RESULTS_DIR, emit_bench_json


@pytest.fixture()
def archive():
    """Print a regenerated table and persist it to benchmarks/results/.

    ``fig_id`` additionally archives the ASCII rendering of the figure
    (see :func:`repro.experiments.plotting.render_figure`) next to the
    table, so the archived artifact shows the curve, not only the rows.
    """

    def _archive(name: str, table, fig_id: str | None = None) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = str(table)
        if fig_id is not None:
            from repro.experiments.plotting import render_figure

            rendering = render_figure(fig_id, table)
            if rendering is not None:
                text = f"{text}\n\n{rendering}"
        print("\n" + text)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")

    return _archive


@pytest.fixture(autouse=True)
def bench_json(request):
    """Emit ``BENCH_<name>.json`` with the wall time of every bench test.

    Autouse, so the perf trajectory of *every* ``bench_*.py`` is
    tracked across PRs without per-file wiring.  A bench wanting to
    record more than wall time requests the fixture and fills the
    yielded dict (throughput numbers, measured config, speedups);
    the payload lands in the JSON on teardown.
    """
    payload: dict = {}
    started = time.perf_counter()
    yield payload
    name = request.node.name
    if name.startswith("test_"):
        name = name[len("test_") :]
    emit_bench_json(
        name, {"wall_time_s": round(time.perf_counter() - started, 3), **payload}
    )


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
