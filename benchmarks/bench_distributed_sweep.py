"""Distributed sweep backend: multi-worker throughput, chaos, integrity.

Not a paper table — this benchmarks the crash-tolerant distributed
execution layer (``repro.experiments.backend``) and its integrity
guarantees:

* **Chaos drill.** Two independent ``SharedCacheBackend`` worker
  processes drain a reduced Table IV grid against one cache directory;
  one of them is SIGKILLed mid-cell.  Acceptance: the survivor (plus a
  relaunched worker) finishes the grid, at least one stale lease is
  reclaimed, the cache is byte-identical to the sequential reference,
  and ``repro fsck`` reports zero corruption.
* **2-worker throughput.** Wall-clock of two cooperating shared-cache
  workers vs a single worker on the same grid.  Acceptance on a
  >= 4-core machine: ``>= 1.8x`` speedup; on smaller machines the
  ratio is recorded but not enforced (two processes cannot beat the
  physics of one core).
* **Coordination overhead.** Single shared-cache worker vs
  ``LocalBackend`` inline on the same grid — the lease/heartbeat cost
  per cell is recorded (never enforced; it is information, not a
  contract).
* **Warm-cache floor.** A re-run over the populated cache must be
  served >= 90% from cache, same floor as the local sweep bench.

``--smoke`` (the CI job) shrinks the grid and rounds but keeps every
assertion except the speedup floor.

Run with::

    PYTHONPATH=src python benchmarks/bench_distributed_sweep.py          # full
    PYTHONPATH=src python benchmarks/bench_distributed_sweep.py --smoke  # CI
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time

from _harness import emit_bench_json
from repro.experiments.backend import SharedCacheBackend
from repro.experiments.presets import dataset_config, experiment
from repro.experiments.sweep import CellSpec, SweepRunner
from repro.persistence import fsck_paths

FULL_ATTACKS = ("a_hum", "pieck_ipe", "pieck_uea")
FULL_DEFENSES = ("none", "norm_bound", "krum", "regularization")
FULL_ROUNDS = 120

SMOKE_ATTACKS = ("pieck_ipe", "pieck_uea")
SMOKE_DEFENSES = ("none", "norm_bound")
SMOKE_ROUNDS = 15

SPEEDUP_FLOOR = 1.8  # 2 workers vs 1, when the machine has >= 4 cores
CACHE_HIT_FLOOR = 0.9
LEASE_TTL = 3.0


def _grid(attacks, defenses, rounds):
    dataset = "ml-100k"
    specs = [
        CellSpec(
            config=experiment(
                dataset, "mf", attack=attack, defense=defense, seed=0,
                rounds=rounds,
            ),
            dataset_key=dataset,
        )
        for defense in defenses
        for attack in attacks
    ]
    return specs, {dataset: dataset_config(dataset, seed=0)}


def _worker_main(attacks, defenses, rounds, cache_dir, owner, stats_path):
    """One shared-cache worker process draining the benchmark grid."""
    specs, datasets = _grid(attacks, defenses, rounds)
    backend = SharedCacheBackend(
        owner=owner, lease_ttl=LEASE_TTL, poll_interval=0.05, wait_timeout=600.0
    )
    runner = SweepRunner(cache_dir=cache_dir, backend=backend)
    runner.run(specs, datasets)
    stats = runner.last_stats
    with open(stats_path, "w") as handle:
        json.dump(
            {
                "executed": stats.executed,
                "peer_served": stats.peer_served,
                "reclaimed": stats.reclaimed,
                "cache_hits": stats.cache_hits,
                "quarantined": stats.quarantined,
            },
            handle,
        )


def _spawn(ctx, attacks, defenses, rounds, cache_dir, owner, stats_path):
    proc = ctx.Process(
        target=_worker_main,
        args=(attacks, defenses, rounds, cache_dir, owner, stats_path),
    )
    proc.start()
    return proc


def _drain_with_workers(attacks, defenses, rounds, cache_dir, count, tag):
    """Run ``count`` cooperating workers to completion; returns seconds."""
    ctx = multiprocessing.get_context("fork")
    stats_dir = tempfile.mkdtemp(prefix="dist-stats-")
    started = time.perf_counter()
    procs = [
        _spawn(
            ctx, attacks, defenses, rounds, cache_dir,
            f"{tag}-{i}", os.path.join(stats_dir, f"{tag}-{i}.json"),
        )
        for i in range(count)
    ]
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0, f"worker exited with {proc.exitcode}"
    elapsed = time.perf_counter() - started
    stats = [
        json.load(open(os.path.join(stats_dir, f"{tag}-{i}.json")))
        for i in range(count)
    ]
    return elapsed, stats


def _cache_bytes(cache_dir):
    return {
        name: open(os.path.join(cache_dir, name), "rb").read()
        for name in sorted(os.listdir(cache_dir))
        if name.endswith(".json")
    }


def _chaos_drill(attacks, defenses, rounds, seq_bytes):
    """SIGKILL one of two workers mid-cell; assert full recovery."""
    ctx = multiprocessing.get_context("fork")
    cache_dir = tempfile.mkdtemp(prefix="dist-chaos-")
    stats_dir = tempfile.mkdtemp(prefix="dist-chaos-stats-")
    victim = _spawn(
        ctx, attacks, defenses, rounds, cache_dir,
        "victim", os.path.join(stats_dir, "victim.json"),
    )
    # Let the victim claim its first lease, then kill it dead mid-cell.
    deadline = time.time() + 300
    while not any(
        name.endswith(".lease") for name in os.listdir(cache_dir)
    ) and victim.is_alive():
        assert time.time() < deadline, "victim never claimed a lease"
        time.sleep(0.05)
    os.kill(victim.pid, signal.SIGKILL)
    victim.join()

    survivor_stats_path = os.path.join(stats_dir, "survivor.json")
    survivor = _spawn(
        ctx, attacks, defenses, rounds, cache_dir, "survivor",
        survivor_stats_path,
    )
    survivor.join()
    assert survivor.exitcode == 0, "survivor failed to finish the grid"
    stats = json.load(open(survivor_stats_path))

    leases = [n for n in os.listdir(cache_dir) if n.endswith(".lease")]
    assert leases == [], f"leases left after recovery: {leases}"
    assert stats["reclaimed"] >= 1, (
        "the survivor reclaimed no lease — the SIGKILL landed between "
        "cells; rerun the drill"
    )
    assert _cache_bytes(cache_dir) == seq_bytes, (
        "post-chaos cache differs from the sequential reference"
    )
    report = fsck_paths(cache_dir)
    assert report.clean, f"fsck found corruption after chaos: {report.summary()}"
    print(
        f"  chaos: survivor executed {stats['executed']} cells, "
        f"reclaimed {stats['reclaimed']} lease(s); fsck: {report.summary()}"
    )
    return stats


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    attacks = SMOKE_ATTACKS if smoke else FULL_ATTACKS
    defenses = SMOKE_DEFENSES if smoke else FULL_DEFENSES
    rounds = SMOKE_ROUNDS if smoke else FULL_ROUNDS
    cores = os.cpu_count() or 1

    specs, datasets = _grid(attacks, defenses, rounds)
    print(
        f"distributed sweep ({'smoke' if smoke else 'full'}): "
        f"{len(specs)} cells, {rounds} rounds, {cores} cores"
    )

    # -- sequential reference (also the byte-identity oracle) ----------
    seq_dir = tempfile.mkdtemp(prefix="dist-seq-")
    started = time.perf_counter()
    seq_runner = SweepRunner(workers=0, cache_dir=seq_dir)
    seq_results = seq_runner.run(specs, datasets)
    local_seconds = time.perf_counter() - started
    seq_bytes = _cache_bytes(seq_dir)
    print(f"  LocalBackend inline: {local_seconds:.2f}s")

    # -- single shared-cache worker: coordination overhead -------------
    one_dir = tempfile.mkdtemp(prefix="dist-one-")
    one_seconds, _ = _drain_with_workers(
        attacks, defenses, rounds, one_dir, 1, "solo"
    )
    assert _cache_bytes(one_dir) == seq_bytes, (
        "single shared-cache worker cache differs from sequential"
    )
    overhead = one_seconds / max(local_seconds, 1e-9)
    print(
        f"  SharedCacheBackend x1: {one_seconds:.2f}s "
        f"(coordination overhead {overhead:.2f}x vs LocalBackend)"
    )

    # -- two cooperating workers: throughput ---------------------------
    two_dir = tempfile.mkdtemp(prefix="dist-two-")
    two_seconds, two_stats = _drain_with_workers(
        attacks, defenses, rounds, two_dir, 2, "duo"
    )
    assert _cache_bytes(two_dir) == seq_bytes, (
        "2-worker shared cache differs from the sequential reference"
    )
    executed = sum(s["executed"] for s in two_stats)
    assert executed >= len(specs), "workers under-account executed cells"
    speedup = one_seconds / max(two_seconds, 1e-9)
    print(
        f"  SharedCacheBackend x2: {two_seconds:.2f}s "
        f"(speedup {speedup:.2f}x vs one worker; "
        f"split {[s['executed'] for s in two_stats]})"
    )

    # -- warm re-run over the populated cache --------------------------
    warm_runner = SweepRunner(
        cache_dir=two_dir,
        backend=SharedCacheBackend(owner="warm", lease_ttl=LEASE_TTL),
    )
    started = time.perf_counter()
    warm_results = warm_runner.run(specs, datasets)
    warm_seconds = time.perf_counter() - started
    warm_stats = warm_runner.last_stats
    assert warm_results == seq_results, "cache round-trip changed results"
    print(
        f"  warm re-run {warm_seconds:.2f}s "
        f"({warm_stats.cache_hits}/{warm_stats.total} from cache)"
    )

    # -- chaos drill ---------------------------------------------------
    chaos_stats = _chaos_drill(attacks, defenses, rounds, seq_bytes)

    emit_bench_json(
        "distributed_sweep",
        {
            "mode": "smoke" if smoke else "full",
            "cells": len(specs),
            "rounds": rounds,
            "cpu_cores": cores,
            "local_inline_s": round(local_seconds, 3),
            "shared_one_worker_s": round(one_seconds, 3),
            "shared_two_workers_s": round(two_seconds, 3),
            "coordination_overhead": round(overhead, 3),
            "two_worker_speedup": round(speedup, 3),
            "cache_warm_s": round(warm_seconds, 3),
            "cache_hit_ratio": round(warm_stats.hit_ratio, 3),
            "chaos_reclaimed": chaos_stats["reclaimed"],
            "chaos_survivor_executed": chaos_stats["executed"],
            "speedup_floor_enforced": (not smoke) and cores >= 4,
        },
    )

    # -- acceptance ----------------------------------------------------
    assert warm_stats.hit_ratio >= CACHE_HIT_FLOOR, (
        f"warm re-run served only {100 * warm_stats.hit_ratio:.0f}% from "
        f"cache (floor {100 * CACHE_HIT_FLOOR:.0f}%)"
    )
    if not smoke:
        if cores >= 4:
            assert speedup >= SPEEDUP_FLOOR, (
                f"2-worker speedup {speedup:.2f}x on {cores} cores is "
                f"below the {SPEEDUP_FLOOR}x floor"
            )
        else:
            print(
                f"  (only {cores} cores: {SPEEDUP_FLOOR}x floor not "
                "enforced, recorded only)"
            )
    print("distributed sweep: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
