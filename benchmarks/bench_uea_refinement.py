"""Ablation: PIECK-UEA pseudo-user source — raw populars vs refined.

The paper's Eq. 10 substitutes *raw* mined popular-item embeddings for
the inaccessible user embeddings. This ablation compares that against
the refined source (:mod:`repro.attacks.refinement`), which locally
trains fake user profiles anchored on the same mined set, across the
two regimes that matter:

* **q = 1** (the paper's default): Property 3 holds, both sources are
  equally effective — the refinement costs nothing.
* **q = 10** (supplementary B): heavy negative sampling displaces item
  geometry away from user geometry (see
  :func:`repro.analysis.geometry.property3_report`), the raw source
  collapses to ER ~= 0 while the refined source restores the paper's
  reported UEA robustness.

It also records the adaptive-attack finding (EXPERIMENTS.md): at q = 1
the refined variant partially evades the client-side regularization
defense, because the defense separates users from *popular item
embeddings* while the refined pseudo-users approximate users through
local training dynamics instead.
"""

from repro.datasets.loaders import load_dataset
from repro.experiments import attack_config, experiment, run_cell
from repro.experiments.reporting import TableResult

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def _build() -> TableResult:
    table = TableResult(
        "Ablation: UEA pseudo-user source (raw populars vs refined)",
        ["Source", "Defense", "q=1", "q=10"],
    )
    shared = load_dataset(experiment("ml-100k", "mf", seed=0).dataset)
    for source in ("popular", "refined"):
        for defense in ("none", "regularization"):
            attack = attack_config("pieck_uea", uea_pseudo_source=source)
            cells = []
            for q in (1, 10):
                config = experiment(
                    "ml-100k", "mf", attack=attack, defense=defense,
                    seed=0, negative_ratio=q,
                )
                cells.append(str(run_cell(config, dataset=shared)))
            table.add_row(source, defense, *cells)
    return table


def test_uea_refinement_ablation(benchmark, archive):
    table = run_once(benchmark, _build)
    archive("uea_refinement", table)
    rows = {(row[0], row[1]): row[2:] for row in table.rows}
    raw_q1 = _er(rows[("popular", "none")][0])
    raw_q10 = _er(rows[("popular", "none")][1])
    ref_q1 = _er(rows[("refined", "none")][0])
    ref_q10 = _er(rows[("refined", "none")][1])
    # Both sources are effective in the paper's default regime.
    assert raw_q1 > 50.0 and ref_q1 > 50.0
    # The raw Eq. 10 source collapses under heavy negative sampling;
    # the refined source restores the paper's reported robustness.
    assert raw_q10 < 10.0
    assert ref_q10 > 50.0
    # Adaptive-attack finding: at q=1 the refined variant retains more
    # ER against the regularization defense than the raw variant does.
    assert _er(rows[("refined", "regularization")][0]) > _er(
        rows[("popular", "regularization")][0]
    )
