"""Fig. 6a: ER@10 trend over communication rounds (IPE vs UEA)."""

from repro.experiments import fig6a_trend

from benchmarks.conftest import run_once


def test_fig6a_trend(benchmark, archive):
    table = run_once(
        benchmark, lambda: fig6a_trend(rounds=300, eval_every=50)
    )
    archive("fig6a_trend", table, fig_id="6a")
    series = {row[0]: [float(x) for x in row[1:]] for row in table.rows}
    # Reproduction check (Fig. 6a shape): UEA sustains exposure at least
    # as well as IPE in the later training stages.
    late = slice(2, None)
    assert sum(series["pieck_uea"][late]) >= 0.8 * sum(series["pieck_ipe"][late])
