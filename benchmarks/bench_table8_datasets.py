"""Table VIII (supplementary): dataset statistics.

The paper characterises its three evaluation datasets by user / item /
interaction counts, the per-user interaction rate, and sparsity. This
bench regenerates the same table for the calibrated synthetic datasets
at the experiment presets and asserts that the *density-determining*
statistics — rate and sparsity, the quantities that drive Eq. 11-13 —
match the paper's full-size values despite the linear scale-down.
"""

from repro.datasets.loaders import DATASET_STATS, load_dataset
from repro.experiments import experiment
from repro.experiments.reporting import TableResult

from benchmarks.conftest import run_once

#: Paper Table VIII: (rate = interactions / users, sparsity %).
PAPER_DENSITY = {
    "ml-100k": (106.0, 93.70),
    "ml-1m": (166.0, 95.53),
    "az": (10.0, 99.91),
}


def _build() -> TableResult:
    table = TableResult(
        "Table VIII: dataset statistics at the experiment presets",
        ["Dataset", "#Users", "#Items", "#Inter.", "Rate", "Sparsity (%)"],
    )
    for name in ("ml-100k", "ml-1m", "az"):
        data = load_dataset(experiment(name, "mf", seed=0).dataset)
        interactions = int(data.popularity().sum())
        rate = interactions / data.num_users
        sparsity = 100.0 * (
            1.0 - interactions / (data.num_users * data.num_items)
        )
        table.add_row(
            name,
            str(data.num_users),
            str(data.num_items),
            str(interactions),
            f"{rate:.1f}",
            f"{sparsity:.2f}",
        )
    return table


def test_table8_dataset_stats(benchmark, archive):
    table = run_once(benchmark, _build)
    archive("table8_datasets", table)
    rows = {row[0]: row[1:] for row in table.rows}
    for name, (_, paper_sparsity) in PAPER_DENSITY.items():
        users, items, inter, rate, sparsity = rows[name]
        # Full-size counts shrink by the preset scale ...
        assert int(users) < DATASET_STATS[name].num_users
        # ... while the sparsity — the density invariant that drives
        # Eq. 11-13 — matches the paper's full-size value closely.
        # (The per-user *rate* necessarily shrinks linearly with the
        # scale: users and items shrink by s, interactions by s^2.)
        assert abs(float(sparsity) - paper_sparsity) < 1.5
    # The relative sparsity ordering of the paper's datasets is
    # preserved: AZ is by far the sparsest, ML-100K the densest.
    assert float(rows["az"][4]) > float(rows["ml-1m"][4])
    assert float(rows["ml-1m"][4]) > float(rows["ml-100k"][4])
    # Within any one dataset the rate stays proportional to the paper's
    # full-size rate under the preset scale (AZ's rate is the lowest of
    # the three at equal scale; at preset scales it remains below
    # ML-100K's, whose scale is the largest).
    assert float(rows["az"][3]) < float(rows["ml-100k"][3])
