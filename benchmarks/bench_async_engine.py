"""Asynchronous engine: sync-parity overhead floor + staleness curve.

Two questions, answered with numbers and asserted in CI:

* **What does the event loop cost at matched work?**  The degenerate
  asynchronous configuration performs exactly the synchronous batch
  engine's math — same cohorts, same gradients, same aggregation —
  plus the event-queue machinery: virtual clock, per-upload arrival
  events, the staleness buffer round-trip.  Sync and degenerate-async
  runs are timed pairwise-interleaved (per-repeat ratios, median —
  this cancels machine drift) and the median ratio is asserted
  ``<= OVERHEAD_CEILING``.  Both trajectories must also be
  **bit-identical** — the overhead being measured is pure plumbing.

* **How does the attack's reach degrade as the federation gets more
  asynchronous?**  A network-latency sweep under PIECK-IPE with
  client churn records the ER@K / HR@K curve plus full asynchrony
  accounting per point into ``BENCH_async_engine.json`` — the
  machine-readable record of how staleness erodes (or fails to erode)
  a popularity-mining attack.

Run with::

    PYTHONPATH=src python benchmarks/bench_async_engine.py           # full
    PYTHONPATH=src python benchmarks/bench_async_engine.py --smoke   # CI
"""

from __future__ import annotations

import dataclasses
import statistics
import sys
import time

import numpy as np

from _harness import emit_bench_json
from repro.config import (
    AsyncConfig,
    AttackConfig,
    DatasetConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.federated.simulation import FederatedSimulation

SEED = 3

#: (dataset scale, rounds, users_per_round, timing repeats)
FULL = (0.6, 40, 256, 7)
SMOKE = (0.15, 15, 64, 5)

#: Acceptance ceiling on the median async/sync ratio at matched work.
OVERHEAD_CEILING = 1.5

#: Network-latency grid for the staleness curve (mean delay in units
#: of the round interval) with churn held fixed.
NETWORK_GRID = (0.0, 0.5, 1.5, 3.0)
CURVE_CHURN = 0.2


def _config(scale, rounds, users_per_round, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=scale, seed=5),
        model=ModelConfig(kind="mf", embedding_dim=16, seed=SEED),
        train=TrainConfig(rounds=rounds, users_per_round=users_per_round, lr=1.0),
        seed=SEED,
        **kwargs,
    )


def _one_run(config: ExperimentConfig) -> tuple[float, object, np.ndarray]:
    """Seconds-per-round plus the final item table of one run."""
    sim = FederatedSimulation(config, engine="batch")
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    return elapsed / config.train.rounds, result, sim.model.item_embeddings.copy()


def overhead_floor(scale, rounds, users_per_round, repeats) -> dict:
    sync_cfg = _config(scale, rounds, users_per_round)
    async_cfg = dataclasses.replace(
        sync_cfg, asynchrony=AsyncConfig(enabled=True)
    )

    ratios, sync_spr, async_spr = [], [], []
    for _ in range(repeats):
        spr_sync, _, items_sync = _one_run(sync_cfg)
        spr_async, result_async, items_async = _one_run(async_cfg)
        sync_spr.append(spr_sync)
        async_spr.append(spr_async)
        ratios.append(spr_async / spr_sync)

    ratio = statistics.median(ratios)
    print(
        f"matched-work overhead: sync {statistics.median(sync_spr) * 1e3:.2f} "
        f"ms/round, degenerate async {ratio:.3f}x "
        f"(ceiling {OVERHEAD_CEILING:.2f}x)"
    )
    assert items_async.tobytes() == items_sync.tobytes(), (
        "degenerate async diverged from the synchronous engine; the "
        "overhead being measured is not matched work"
    )
    stats = result_async.async_stats
    assert stats.uploads_applied == stats.clients_dispatched > 0
    assert ratio <= OVERHEAD_CEILING, (
        f"event loop costs {ratio:.3f}x per round at matched work, "
        f"over the {OVERHEAD_CEILING:.2f}x ceiling"
    )
    return {
        "sync_sec_per_round": statistics.median(sync_spr),
        "async_sec_per_round": statistics.median(async_spr),
        "overhead_ratio": ratio,
        "ceiling": OVERHEAD_CEILING,
    }


def staleness_degradation(scale, rounds, users_per_round) -> list[dict]:
    """ER@K / HR@K versus mean network latency under PIECK-IPE + churn."""
    curve = []
    for network_mean in NETWORK_GRID:
        cfg = _config(
            scale,
            rounds,
            users_per_round,
            attack=AttackConfig(
                name="pieck_ipe", malicious_ratio=0.1, mining_rounds=2
            ),
            asynchrony=AsyncConfig(
                enabled=True,
                traffic="poisson",
                arrival_rate=8.0,
                network_mean=network_mean,
                churn_rate=CURVE_CHURN,
                round_deadline=1.5,
                staleness_discount=0.6,
                max_staleness=6,
            ),
        )
        _, result, items = _one_run(cfg)
        assert np.isfinite(items).all()
        stats = result.async_stats
        assert stats.uploads_cancelled > 0  # churn fired
        if network_mean > 0:
            assert stats.stale_applied > 0  # latency actually made staleness
        point = {
            "network_mean": network_mean,
            "churn_rate": CURVE_CHURN,
            "er_at_k": result.exposure,
            "hr_at_k": result.hit_ratio,
            "async_stats": stats.to_dict(),
        }
        curve.append(point)
        print(
            f"network={network_mean:.1f}: ER@K={result.exposure:.4f} "
            f"HR@K={result.hit_ratio:.4f} "
            f"(stale {stats.stale_applied}, dropped {stats.stale_dropped}, "
            f"max delay {stats.max_staleness_applied})"
        )
    return curve


def main() -> None:
    smoke = "--smoke" in sys.argv
    scale, rounds, users_per_round, repeats = SMOKE if smoke else FULL
    overhead = overhead_floor(scale, rounds, users_per_round, repeats)
    curve = staleness_degradation(scale, rounds, users_per_round)
    path = emit_bench_json(
        "async_engine",
        {
            "mode": "smoke" if smoke else "full",
            "config": {
                "dataset_scale": scale,
                "rounds": rounds,
                "users_per_round": users_per_round,
                "timing_repeats": repeats,
            },
            "matched_work_overhead": overhead,
            "staleness_degradation": curve,
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
