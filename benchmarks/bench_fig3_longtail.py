"""Fig. 3: long-tail item popularity distribution."""

from repro.experiments import fig3_longtail

from benchmarks.conftest import run_once


def test_fig3_longtail(benchmark, archive):
    table = run_once(benchmark, lambda: fig3_longtail(datasets=("ml-100k", "az")))
    archive("fig3_longtail", table)
    # Reproduction check: the popular head is strongly over-represented.
    for row in table.rows:
        share = float(row[3].rstrip("%"))
        assert share > 30.0
