"""Fig. 7 (supplementary): HR@10 vs negative sampling ratio q."""

from repro.experiments import fig7_sample_ratio

from benchmarks.conftest import run_once


def test_fig7_sample_ratio(benchmark, archive):
    table = run_once(
        benchmark, lambda: fig7_sample_ratio(ratios=(1, 2, 4, 8, 14, 20))
    )
    archive("fig7_sample_ratio", table, fig_id="7")
    hrs = [float(row[1]) for row in table.rows]
    # Reproduction check (Fig. 7, rising segment): intermediate q beats
    # the q=1 baseline.
    assert max(hrs[1:4]) > hrs[0]
    # Known divergence (see EXPERIMENTS.md): the paper's high-q
    # collapse cannot manifest at the scaled presets because the
    # negative draw exhausts the catalogue near q~14 — beyond that the
    # extra ratio is inert, so the curve saturates instead.
    assert abs(hrs[-1] - hrs[-2]) < 3.0
