"""Client-state scaling: struct-of-arrays store vs object-per-user.

Not a paper table — this benchmarks the *state layer* behind every
simulation at production user counts:

* **Construction.** Building the benign population as a
  :class:`~repro.federated.state.ClientStateStore` (one vectorised
  embedding-matrix init + one CSR pack) versus the original
  object-per-user path (one ``BenignClient`` with its own RNG spawn
  and embedding draw per user).  Acceptance: ``>= 5x`` faster at the
  full scale of 100k users (``>= 2x`` at smoke scale, where fixed
  overheads weigh more), with bit-identical state.
* **Round hand-off.** The batch engine's store path (fancy-indexed
  gather/scatter on the store arrays) versus its object fallback
  running on *standalone* clients (owned attribute arrays — the true
  pre-store layout).  The state layer itself must never be slower
  than object stacking (typically ~1.2-1.7x faster at 100k users);
  the full round — dominated by negative sampling and the local step,
  identical on both paths — must not regress (``>= 0.9x`` within
  measurement noise).
* **Evaluation memory.** The chunked streaming evaluation must stay
  well under the dense ``num_users x num_items`` score matrix it
  replaces (asserted via ``tracemalloc``): peak traced memory below
  half (smoke) / a quarter (full) of the dense-scores footprint, i.e.
  no ``U x I`` array is ever materialised.
* **Anti-fallback guard** (the CI smoke's reason to exist, mirroring
  the PR 2 defended-path guard): the store-backed engine must report
  ``stacked_rounds == 0`` and the server ``materialized_rounds == 0``
  after real training rounds — the store path never silently degrades
  to per-object stacking.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_state_scale.py -s
    PYTHONPATH=src python benchmarks/bench_state_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_state_scale.py --smoke   # CI
"""

from __future__ import annotations

import sys
import time
import tracemalloc

import numpy as np

from _harness import emit_bench_json
from repro.config import DatasetConfig, ExperimentConfig, ModelConfig, TrainConfig
from repro.datasets.synthetic import generate_longtail_dataset
from repro.federated.batch_engine import BatchClientEngine
from repro.federated.client import BenignClient
from repro.federated.simulation import FederatedSimulation
from repro.federated.state import ClientStateStore

EMBEDDING_DIM = 16
SEED = 3

#: (num_users, num_items, num_interactions, users_per_round,
#:  eval_chunk_users, construction floor, dense-scores peak divisor)
FULL_SCALE = (100_000, 5_000, 800_000, 1_000, 1_024, 5.0, 4)
SMOKE_SCALE = (4_000, 1_200, 40_000, 500, 256, 2.0, 2)

ROUND_FLOOR = 0.9  # full-round: no regression (noise margin)
GATHER_FLOOR = 1.0  # state layer alone: never slower than object stacking


def _config(users_per_round: int, eval_chunk_users: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom"),
        model=ModelConfig(kind="mf", embedding_dim=EMBEDDING_DIM),
        train=TrainConfig(
            rounds=8,
            users_per_round=users_per_round,
            lr=1.0,
            eval_chunk_users=eval_chunk_users,
        ),
        seed=SEED,
    )


def _measure_construction(dataset) -> tuple[float, float, list[BenignClient]]:
    """(object seconds, store seconds, standalone clients), best-of.

    The returned standalone clients (owned arrays, the pre-store
    layout) are the baseline population the round and gather
    measurements below run against.
    """
    started = time.perf_counter()
    clients = [
        BenignClient(
            user,
            dataset.train_pos[user],
            dataset.num_items,
            EMBEDDING_DIM,
            seed=SEED,
        )
        for user in range(dataset.num_users)
    ]
    object_seconds = time.perf_counter() - started

    store_seconds = np.inf
    for _ in range(3):
        started = time.perf_counter()
        store = ClientStateStore.build(
            dataset.train_pos, dataset.num_items, EMBEDDING_DIM, seed=SEED
        )
        store_seconds = min(store_seconds, time.perf_counter() - started)

    # The layouts must hold identical state, not merely be fast.
    stride = max(1, dataset.num_users // 97)
    for user in range(0, dataset.num_users, stride):
        assert np.array_equal(
            store.user_embeddings[user], clients[user].user_embedding
        )
        assert np.array_equal(store.positives(user), clients[user].positive_items)
    return object_seconds, store_seconds, clients


def _measure_rounds(
    sim: FederatedSimulation, clients: list[BenignClient], rounds: int
) -> tuple[float, float]:
    """Interleaved (store s/round, object-fallback s/round) medians.

    The fallback engine runs on *standalone* clients — owned
    attribute arrays, exactly the pre-store layout — so the ratio
    measures the store against the real object-per-user baseline, not
    against store-backed views.
    """
    object_engine = BatchClientEngine(
        sim.model,
        sim.server,
        clients,
        sim.malicious_clients,
        sim.config.train,
        sim.config.seed,
    )
    store_times: list[float] = []
    object_times: list[float] = []
    for round_idx in range(rounds + 2):
        sampled = sim.server.sample_users(
            sim.total_users, sim.config.train.users_per_round, round_idx
        )
        for engine, times in (
            (sim._batch_engine, store_times),
            (object_engine, object_times),
        ):
            started = time.perf_counter()
            engine.run_round(round_idx, sampled)
            times.append(time.perf_counter() - started)
    assert sim._batch_engine.stacked_rounds == 0, (
        "store-backed engine silently fell back to per-object stacking"
    )
    assert object_engine.stacked_rounds == rounds + 2
    assert sim.server.materialized_rounds == 0
    return (
        float(np.median(store_times[2:])),
        float(np.median(object_times[2:])),
    )


def _measure_gather(
    sim: FederatedSimulation, all_clients: list[BenignClient], users_per_round: int
) -> tuple[float, float]:
    """State-layer cost alone: store gather+slices vs object stacking.

    The object side stacks *standalone* clients (owned arrays), the
    true pre-store baseline.
    """
    store = sim.state
    rng = np.random.default_rng(0)
    benign_ids = np.sort(
        rng.choice(store.num_users, size=users_per_round, replace=False)
    ).astype(np.int64)
    clients = [all_clients[int(user)] for user in benign_ids]
    repeats = 30

    store_seconds = object_seconds = np.inf
    for _ in range(3):  # best-of-3 per side to damp cache/noise effects
        started = time.perf_counter()
        for _ in range(repeats):
            store.user_embeddings[benign_ids]
            store.positives_list(benign_ids)
        store_seconds = min(
            store_seconds, (time.perf_counter() - started) / repeats
        )

        started = time.perf_counter()
        for _ in range(repeats):
            np.stack([client.user_embedding for client in clients])
            [client.positive_items for client in clients]
        object_seconds = min(
            object_seconds, (time.perf_counter() - started) / repeats
        )
    return store_seconds, object_seconds


def _measure_eval_memory(sim: FederatedSimulation) -> tuple[float, int]:
    """(evaluate seconds, tracemalloc peak bytes) of one streaming pass."""
    tracemalloc.start()
    started = time.perf_counter()
    sim.evaluate()
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, int(peak)


def run_state_scale(smoke: bool = False) -> tuple[str, dict, dict]:
    """Benchmark the state layer at one scale.

    Returns ``(report, checks, json_payload)``; ``checks`` carries the
    numbers the acceptance assertions read.
    """
    (
        num_users,
        num_items,
        num_interactions,
        users_per_round,
        eval_chunk,
        construction_floor,
        peak_divisor,
    ) = SMOKE_SCALE if smoke else FULL_SCALE
    dataset = generate_longtail_dataset(
        num_users, num_items, num_interactions, seed=0, name="state-scale"
    )
    object_seconds, store_seconds, clients = _measure_construction(dataset)
    construction_speedup = object_seconds / store_seconds

    sim = FederatedSimulation(
        _config(users_per_round, eval_chunk), dataset=dataset, engine="batch"
    )
    store_spr, object_spr = _measure_rounds(sim, clients, rounds=8)
    round_ratio = object_spr / store_spr
    gather_store, gather_object = _measure_gather(sim, clients, users_per_round)
    gather_speedup = gather_object / gather_store

    eval_seconds, eval_peak = _measure_eval_memory(sim)
    dense_scores_bytes = num_users * num_items * 8

    lines = [
        f"Client-state scaling at {num_users} users x {num_items} items "
        f"(MF dim={EMBEDDING_DIM}{', smoke' if smoke else ''})",
        f"{'metric':<34} {'object':>12} {'store':>12} {'ratio':>8}",
        f"{'construction (s)':<34} {object_seconds:>12.3f} {store_seconds:>12.3f} "
        f"{construction_speedup:>7.2f}x",
        f"{'round (ms, ' + str(users_per_round) + ' clients)':<34} "
        f"{object_spr * 1e3:>12.2f} {store_spr * 1e3:>12.2f} {round_ratio:>7.2f}x",
        f"{'state gather/stack (ms)':<34} {gather_object * 1e3:>12.3f} "
        f"{gather_store * 1e3:>12.3f} {gather_speedup:>7.2f}x",
        f"streaming evaluation: {eval_seconds:.2f}s, peak {eval_peak / 2**20:.0f} MiB "
        f"(dense scores alone would be {dense_scores_bytes / 2**20:.0f} MiB)",
        f"acceptance: construction >= {construction_floor:.1f}x, round >= "
        f"{ROUND_FLOOR:.1f}x, gather >= {GATHER_FLOOR:.1f}x, eval peak < dense/"
        f"{peak_divisor}, zero stacked/materialised rounds",
    ]
    checks = {
        "construction_speedup": construction_speedup,
        "construction_floor": construction_floor,
        "round_ratio": round_ratio,
        "gather_speedup": gather_speedup,
        "eval_peak_bytes": eval_peak,
        "peak_bound_bytes": dense_scores_bytes // peak_divisor,
    }
    payload = {
        "config": {
            "smoke": smoke,
            "num_users": num_users,
            "num_items": num_items,
            "num_interactions": num_interactions,
            "users_per_round": users_per_round,
            "eval_chunk_users": eval_chunk,
            "embedding_dim": EMBEDDING_DIM,
        },
        "construction": {
            "object_seconds": object_seconds,
            "store_seconds": store_seconds,
            "speedup": construction_speedup,
        },
        "round": {
            "object_seconds_per_round": object_spr,
            "store_seconds_per_round": store_spr,
            "speedup": round_ratio,
        },
        "state_gather": {
            "object_seconds": gather_object,
            "store_seconds": gather_store,
            "speedup": gather_speedup,
        },
        "evaluation": {
            "seconds": eval_seconds,
            "peak_bytes": eval_peak,
            "dense_scores_bytes": dense_scores_bytes,
        },
        "stacked_rounds_on_store_path": 0,
        "materialized_rounds_on_store_path": 0,
    }
    return "\n".join(lines), checks, payload


def _assert_acceptance(checks: dict, report: str) -> None:
    assert checks["construction_speedup"] >= checks["construction_floor"], report
    assert checks["round_ratio"] >= ROUND_FLOOR, report
    assert checks["gather_speedup"] >= GATHER_FLOOR, report
    assert checks["eval_peak_bytes"] < checks["peak_bound_bytes"], report


def test_state_scale(archive, bench_json):
    report, checks, payload = run_state_scale(smoke=False)
    archive("state_scale", report)
    bench_json.update(payload)
    _assert_acceptance(checks, report)


if __name__ == "__main__":
    smoke_mode = "--smoke" in sys.argv[1:]
    report, checks, payload = run_state_scale(smoke=smoke_mode)
    print(report)
    emit_bench_json("state_scale", payload)
    _assert_acceptance(checks, report)
