"""Table VI: ablations of the L_IPE attack loss and L_def defense loss."""

from repro.experiments import table6_ablation

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table6_ablation(benchmark, archive):
    table = run_once(benchmark, table6_ablation)
    archive("table6_ablation", table)
    rows = {(row[0], row[1]): row[3] for row in table.rows}
    # Reproduction check: the combined defense collapses both variants.
    assert _er(rows[("L_def: Re1 + Re2", "PIECK-IPE")]) < 15.0
    assert _er(rows[("L_def: Re1 + Re2", "PIECK-UEA")]) < 15.0
