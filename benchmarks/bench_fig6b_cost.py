"""Fig. 6b: per-round wall-clock cost of attacks and defense."""

from repro.experiments import fig6b_cost

from benchmarks.conftest import run_once


def test_fig6b_cost(benchmark, archive):
    table = run_once(benchmark, lambda: fig6b_cost(rounds=15))
    archive("fig6b_cost", table, fig_id="6b")
    for row in table.rows:
        clean, ipe, uea, defense = (float(x) for x in row[1:])
        # Reproduction checks: attack overhead is small; the defense
        # costs more than the attacks but stays the same order.
        assert ipe < 3.0 * clean + 0.05
        assert uea < 3.0 * clean + 0.05
        assert defense < 20.0 * clean + 0.5
