"""Extension bench: seed stability of the headline claims.

The paper's Tables III/IV report single runs. This bench re-checks the
three headline claims across independent seeds (each reseeding dataset
synthesis, initialisation, sampling and attacker randomness):

1. PIECK-UEA raises the target's exposure far above the clean run;
2. the paper's client-side regularization defense collapses it;
3. the attack leaves HR essentially untouched (stealth).

The assertions require the claims to hold for *every* seed — sign
stability — not merely on average.
"""

from repro.experiments import sweep_seeds
from repro.experiments.reporting import TableResult

from benchmarks.conftest import run_once

SEEDS = (0, 1, 2)


def _build() -> dict[str, object]:
    return {
        "clean": sweep_seeds("ml-100k", "mf", seeds=SEEDS),
        "attacked": sweep_seeds(
            "ml-100k", "mf", attack="pieck_uea", seeds=SEEDS
        ),
        "defended": sweep_seeds(
            "ml-100k", "mf", attack="pieck_uea", defense="regularization",
            seeds=SEEDS,
        ),
    }


def test_seed_stability(benchmark, archive):
    sweeps = run_once(benchmark, _build)
    table = TableResult(
        f"Extension: seed stability over seeds {SEEDS}",
        ["Scenario", "ER@10 mean ± std [min, max] / HR@10 mean ± std"],
    )
    for name, sweep in sweeps.items():
        table.add_row(name, str(sweep))
    archive("seed_stability", table)

    clean, attacked, defended = (
        sweeps["clean"], sweeps["attacked"], sweeps["defended"]
    )
    # 1. The attack works at every seed, with a wide margin.
    assert attacked.er_min > clean.er_max + 30.0
    # 2. The defense holds at every seed.
    assert defended.er_max < 25.0
    # 3. Stealth: the attacked HR stays within a few points of clean.
    assert abs(attacked.hr_mean - clean.hr_mean) < 5.0
