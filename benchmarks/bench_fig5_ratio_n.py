"""Fig. 5: effect of the malicious ratio and mined popular set size."""

from repro.experiments import fig5_ratio_and_n

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_fig5_ratio_and_n(benchmark, archive):
    table = run_once(
        benchmark,
        lambda: fig5_ratio_and_n(
            ratios=(0.01, 0.05, 0.10), popular_sizes=(5, 10, 50)
        ),
    )
    archive("fig5_ratio_n", table)
    ratio_rows = [row for row in table.rows if row[0] == "ratio"]
    # Reproduction check: the defense keeps ER collapsed at every ratio.
    for row in ratio_rows:
        assert _er(row[4]) < 15.0 and _er(row[5]) < 15.0
    # Larger attacker share never hurts the undefended UEA badly.
    assert _er(ratio_rows[-1][3]) >= 0.5 * _er(ratio_rows[0][3])
