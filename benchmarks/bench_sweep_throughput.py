"""Sweep orchestrator throughput: process-pool cells vs sequential.

Not a paper table — this benchmarks the *experiment orchestration
layer* (``repro.experiments.sweep``) that every ``table*`` generator
now routes through:

* **Cold parallel speedup.** A reduced Table IV grid (MF-FRS on the
  ML-100K preset, 3 attacks x 4 defenses) executed by a
  :class:`~repro.experiments.sweep.SweepRunner` at 4 workers versus
  the sequential reference path.  Acceptance on a >= 4-core machine:
  ``>= 2x`` wall-clock speedup; on smaller machines the speedup is
  recorded but only sanity-bounded (a process pool cannot beat the
  physics of one core).
* **Bit-identical results.** The pooled run must return exactly the
  sequential results — per-cell determinism means execution order and
  placement cannot leak into any table cell.
* **Cache-warm re-run.** The same grid executed again against a
  populated content-addressed cache must be served almost entirely
  from cache (``>= 90%`` hit ratio) and take a small fraction of the
  cold sequential time; the warm wall-clock is recorded.

``--smoke`` (the CI job) shrinks the grid, runs it twice at
``--workers 2``, and asserts the second run is served >= 90% from the
cache — guarding the cache keys against silent invalidation drift —
while skipping the speedup floor (CI runners have too few cores to
promise one).

Run with::

    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py --smoke  # CI
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from _harness import emit_bench_json
from repro.experiments.presets import dataset_config, experiment
from repro.experiments.sweep import CellSpec, SweepRunner

#: Reduced Table IV axes: every attack the defenses are measured
#: against in the paper's Table IV, on MF-FRS only.
FULL_ATTACKS = ("a_hum", "pieck_ipe", "pieck_uea")
FULL_DEFENSES = ("none", "norm_bound", "krum", "regularization")
FULL_ROUNDS = 120
FULL_WORKERS = 4

SMOKE_ATTACKS = ("pieck_ipe", "pieck_uea")
SMOKE_DEFENSES = ("none", "norm_bound", "regularization")
SMOKE_ROUNDS = 20
SMOKE_WORKERS = 2

SPEEDUP_FLOOR = 2.0  # at FULL_WORKERS, when the machine has the cores
CACHE_HIT_FLOOR = 0.9


def _grid(attacks: tuple[str, ...], defenses: tuple[str, ...], rounds: int):
    """A reduced Table IV grid as cell specs + its shared dataset."""
    dataset = "ml-100k"
    specs = [
        CellSpec(
            config=experiment(
                dataset, "mf", attack=attack, defense=defense, seed=0,
                rounds=rounds,
            ),
            dataset_key=dataset,
        )
        for defense in defenses
        for attack in attacks
    ]
    return specs, {dataset: dataset_config(dataset, seed=0)}


def _timed_run(runner: SweepRunner, specs, datasets) -> tuple[float, list]:
    started = time.perf_counter()
    results = runner.run(specs, datasets)
    return time.perf_counter() - started, results


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    attacks = SMOKE_ATTACKS if smoke else FULL_ATTACKS
    defenses = SMOKE_DEFENSES if smoke else FULL_DEFENSES
    rounds = SMOKE_ROUNDS if smoke else FULL_ROUNDS
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    cores = os.cpu_count() or 1

    specs, datasets = _grid(attacks, defenses, rounds)
    print(
        f"sweep throughput ({'smoke' if smoke else 'full'}): "
        f"{len(specs)} cells, {rounds} rounds, {workers} workers, "
        f"{cores} cores"
    )

    # -- cold: sequential reference vs process pool --------------------
    seq_seconds, seq_results = _timed_run(SweepRunner(workers=0), specs, datasets)
    par_seconds, par_results = _timed_run(
        SweepRunner(workers=workers), specs, datasets
    )
    assert par_results == seq_results, (
        "pooled sweep results differ from sequential — ordering leaked "
        "into cell results"
    )
    speedup = seq_seconds / max(par_seconds, 1e-9)
    print(
        f"  sequential {seq_seconds:.2f}s | {workers} workers "
        f"{par_seconds:.2f}s | speedup {speedup:.2f}x"
    )

    # -- warm: content-addressed cache ---------------------------------
    with tempfile.TemporaryDirectory(prefix="sweep-cache-") as cache_dir:
        cached = SweepRunner(workers=workers, cache_dir=cache_dir)
        fill_seconds, fill_results = _timed_run(cached, specs, datasets)
        warm_seconds, warm_results = _timed_run(cached, specs, datasets)
        warm_stats = cached.last_stats
    assert warm_results == fill_results == seq_results, (
        "cache round-trip changed cell results"
    )
    print(
        f"  cache fill {fill_seconds:.2f}s | warm re-run {warm_seconds:.2f}s "
        f"({warm_stats.cache_hits}/{warm_stats.total} cells from cache)"
    )

    emit_bench_json(
        "sweep_throughput",
        {
            "mode": "smoke" if smoke else "full",
            "cells": len(specs),
            "rounds": rounds,
            "workers": workers,
            "cpu_cores": cores,
            "sequential_s": round(seq_seconds, 3),
            "parallel_s": round(par_seconds, 3),
            "speedup": round(speedup, 3),
            "cache_fill_s": round(fill_seconds, 3),
            "cache_warm_s": round(warm_seconds, 3),
            "cache_hit_ratio": round(warm_stats.hit_ratio, 3),
            "speedup_floor_enforced": (not smoke) and cores >= FULL_WORKERS,
        },
    )

    # -- acceptance ----------------------------------------------------
    assert warm_stats.hit_ratio >= CACHE_HIT_FLOOR, (
        f"warm re-run served only {100 * warm_stats.hit_ratio:.0f}% from "
        f"cache (floor {100 * CACHE_HIT_FLOOR:.0f}%) — cache keys are "
        "unstable across runs"
    )
    if not smoke:
        if cores >= FULL_WORKERS:
            assert speedup >= SPEEDUP_FLOOR, (
                f"sweep speedup {speedup:.2f}x at {workers} workers on "
                f"{cores} cores is below the {SPEEDUP_FLOOR}x floor"
            )
        else:
            print(
                f"  (only {cores} cores: {SPEEDUP_FLOOR}x floor not "
                "enforced, recorded only)"
            )
    print("sweep throughput: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
