"""Ablation: Algorithm 1's Δ-Norm accumulation window R-tilde.

DESIGN.md calls out the accumulation window as a design choice: the
paper fixes R-tilde = 2 ("a relatively small yet practically useful
value"). This ablation mines the popular set with windows 1/2/4/8 on
the same clean run and measures the popular share of the mined top-N —
confirming the paper's choice: even a single accumulated Δ-Norm ranks
the head items far above their base rate, and the tiny default window
already captures most of the achievable precision while letting the
attacker start poisoning after just three sampled rounds.
"""

from repro.analysis import mining_window_study
from repro.experiments import experiment
from repro.experiments.reporting import TableResult

from benchmarks.conftest import run_once

WINDOWS = (1, 2, 4, 8)


def _build() -> dict[int, float]:
    return mining_window_study(
        experiment("ml-100k", "mf", seed=0), windows=WINDOWS
    )


def test_mining_window_ablation(benchmark, archive):
    shares = run_once(benchmark, _build)
    table = TableResult(
        "Ablation: mined popular share vs accumulation window R-tilde",
        ["R-tilde", "popular share of mined top-10"],
    )
    for window in WINDOWS:
        table.add_row(str(window), f"{100 * shares[window]:.0f}%")
    archive("mining_window", table)

    # Every window beats the 15% head base rate by a wide margin.
    assert all(share > 0.45 for share in shares.values())
    # The paper's default R-tilde = 2 is already close to saturation.
    assert shares[2] >= 0.6
    # Longer accumulation never hurts materially (monotone up to noise).
    assert shares[8] >= shares[1] - 0.1
