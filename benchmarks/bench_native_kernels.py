"""Native kernel backend round throughput: ``kernels="native"`` vs numpy.

Not a paper table — this benchmarks the compiled kernel backend
(:mod:`repro.kernels`, ROADMAP item 1) on
``bench_engine_throughput``-style rounds: 1000 sampled clients per
round against a 4k-user / 6k-item long-tail catalogue.  Both variants
run the *same* batch engine; they differ only in the backend the six
dispatched hot kernels resolve to.

Three scenarios are measured:

* **defended** — MultiKrum aggregation at ``dim=64``: kernel-dominated
  rounds (pairwise distances, segment sums, scatter) with the most
  machine-stable numpy/native ratio.  This is the floor-enforced
  scenario.
* **defended+attacked** — Krum under an active PIECK-UEA attack at
  ``dim=64``: the paper's headline attack-vs-defense configuration
  class, additionally exercising the stacked attack gradients and
  mining-ledger norms.
* **undefended** — plain ``dim=16`` rounds, recorded for context: the
  undefended round is dominated by RNG sampling and negative-sample
  generation, which are *not* dispatched kernels (they stay on shared
  NumPy code in both backends), so its ratio is structurally ~1x.

Acceptance: the native backend must be >= 2x faster in the
floor-enforced scenario, bit-identical (spot-checked over the first rounds before
timing), and must not have fallen back to numpy silently — zero
``kernel_fallback_rounds`` on every engine and zero counted
``fallback_calls`` on the backend (the same anti-fallback contract as
``stacked_rounds`` / ``materialized_rounds``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_native_kernels.py -s
    PYTHONPATH=src python benchmarks/bench_native_kernels.py   # standalone
"""

from __future__ import annotations

import time

import numpy as np

from _harness import emit_bench_json
from repro import kernels
from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.datasets.synthetic import generate_longtail_dataset
from repro.federated.simulation import FederatedSimulation

USERS_PER_ROUND = 1000
NUM_USERS, NUM_ITEMS, NUM_INTERACTIONS = 4_000, 6_000, 48_000
SPEEDUP_FLOOR = 2.0

#: (name, defense, attack, dim, floor-enforced) measurement scenarios.
#: The floor is enforced on the pure defended round (its ratio is the
#: most stable across machines); the attacked round also clears 2x but
#: carries the attacker's engine-independent inner-optimisation cost on
#: both backends, so it is recorded without gating CI on its variance.
SCENARIOS = (
    ("defended", "multi_krum", None, 64, True),
    ("defended+attacked", "krum", "pieck_uea", 64, False),
    ("undefended", "none", None, 16, False),
)


def _config(backend: str, defense: str, attack: str | None, dim: int):
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom"),
        model=ModelConfig(kind="mf", embedding_dim=dim),
        train=TrainConfig(
            rounds=12, users_per_round=USERS_PER_ROUND, lr=1.0, kernels=backend
        ),
        attack=(
            AttackConfig(name=attack, malicious_ratio=0.05) if attack else None
        ),
        defense=DefenseConfig(name=defense),
    )


def _build(dataset, backend: str, defense: str, attack, dim) -> FederatedSimulation:
    return FederatedSimulation(
        _config(backend, defense, attack, dim), dataset=dataset, engine="batch"
    )


def _measure(sim: FederatedSimulation, rounds: int) -> float:
    """Median seconds/round over ``rounds`` measured rounds (one warm-up)."""
    samples = []
    for round_idx in range(rounds + 1):
        started = time.perf_counter()
        sim.run_round(round_idx)
        samples.append(time.perf_counter() - started)
    return float(np.median(samples[1:]))


def _assert_no_fallbacks(sim: FederatedSimulation) -> None:
    engine = sim._batch_engine
    if engine is not None and engine.kernel_fallback_rounds:
        raise AssertionError(
            "native backend silently fell back to numpy in "
            f"{engine.kernel_fallback_rounds} rounds"
        )


def _parity_check(dataset) -> None:
    """Both backends must agree bit for bit before being timed.

    Spot-checked on the attacked+defended scenario — the only one that
    exercises every dispatched kernel (pairwise distances, segment
    sums/divs, scatter, stacked attack gradients, mining norms) in a
    single round.
    """
    name, defense, attack, dim, _ = next(
        s for s in SCENARIOS if s[2] is not None
    )
    sims = {
        backend: _build(dataset, backend, defense, attack, dim)
        for backend in ("numpy", "native")
    }
    for round_idx in range(3):
        for sim in sims.values():
            sim.run_round(round_idx)
    assert np.array_equal(
        sims["native"].model.item_embeddings,
        sims["numpy"].model.item_embeddings,
    ), f"backend parity broken on {name}"
    _assert_no_fallbacks(sims["native"])


def run_native_kernels() -> tuple[str, dict[str, float], dict]:
    """Benchmark both kernel backends in every scenario.

    Returns ``(report, speedups, json_payload)``.
    """
    dataset = generate_longtail_dataset(
        NUM_USERS, NUM_ITEMS, NUM_INTERACTIONS, seed=0, name="kernels-sparse"
    )
    native = kernels.resolve("native")  # raises if the toolchain is missing
    _parity_check(dataset)
    fallback_calls_before = native.fallback_calls
    lines = [
        f"Kernel-backend round throughput at {USERS_PER_ROUND} sampled "
        "clients/round (MF, batch engine)",
        f"{'scenario':<19} {'backend':<8} {'ms/round':>9} {'rounds/sec':>11} "
        f"{'speedup':>8}",
    ]
    speedups: dict[str, float] = {}
    scenarios_payload: dict[str, dict] = {}
    for name, defense, attack, dim, _ in SCENARIOS:
        timings: dict[str, float] = {}
        for backend in ("numpy", "native"):
            sim = _build(dataset, backend, defense, attack, dim)
            timings[backend] = _measure(sim, rounds=10)
            if backend == "native":
                _assert_no_fallbacks(sim)
        speedups[name] = timings["numpy"] / timings["native"]
        scenarios_payload[name] = {
            "defense": defense,
            "attack": f"{attack}@0.05" if attack else "none",
            "embedding_dim": dim,
            "numpy_seconds_per_round": timings["numpy"],
            "native_seconds_per_round": timings["native"],
            "native_rounds_per_sec": 1.0 / timings["native"],
            "speedup": speedups[name],
        }
        for backend in ("numpy", "native"):
            spr = timings[backend]
            lines.append(
                f"{name:<19} {backend:<8} {spr * 1e3:>9.1f} "
                f"{1.0 / spr:>11.2f} {timings['numpy'] / spr:>7.2f}x"
            )
    if native.fallback_calls != fallback_calls_before:
        raise AssertionError(
            "native backend served "
            f"{native.fallback_calls - fallback_calls_before} dispatched "
            "calls through counted numpy fallbacks during timing"
        )
    enforced = [name for name, _, _, _, gate in SCENARIOS if gate]
    lines.append(
        "acceptance: "
        + ", ".join(f"{n} speedup {speedups[n]:.2f}x" for n in enforced)
        + f" (floor {SPEEDUP_FLOOR:.1f}x), bit-identical, zero fallbacks"
    )
    payload = {
        "config": {
            "model": "mf",
            "users_per_round": USERS_PER_ROUND,
            "num_users": NUM_USERS,
            "num_items": NUM_ITEMS,
            "num_interactions": NUM_INTERACTIONS,
        },
        "scenarios": scenarios_payload,
        "kernel_fallback_rounds": 0,
        "native_fallback_calls": 0,
    }
    return "\n".join(lines), speedups, payload


def test_native_kernels(archive, bench_json):
    report, speedups, payload = run_native_kernels()
    archive("native_kernels", report)
    bench_json.update(payload)
    for name, _, _, _, gate in SCENARIOS:
        if gate:
            assert speedups[name] >= SPEEDUP_FLOOR, report


if __name__ == "__main__":
    report, speedups, payload = run_native_kernels()
    print(report)
    emit_bench_json("native_kernels", payload)
    for scenario_name, _, _, _, gate in SCENARIOS:
        if gate:
            assert speedups[scenario_name] >= SPEEDUP_FLOOR, (
                f"native speedup {speedups[scenario_name]:.2f}x below floor"
            )
