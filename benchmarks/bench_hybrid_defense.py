"""Extension bench: the paper's future-work hybrid defense.

Section VII proposes combining server-side and client-side strategies;
this ablation compares NormBound alone, regularization alone, and the
hybrid of both against PIECK-UEA on MF-FRS.

Measured finding (recorded in EXPERIMENTS.md): the naive composition is
*worse* than the client-side defense alone — NormBound clips the benign
clients' regularization gradients along with everything else, blunting
exactly the signal that contains the attack. Composing defenses needs
coordination, which is presumably why the paper leaves it as future
work. The assertions below encode this negative result.
"""

from repro.experiments import experiment, run_cell
from repro.experiments.reporting import TableResult
from repro.datasets.loaders import load_dataset

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def _build() -> TableResult:
    table = TableResult(
        "Extension: hybrid (client + server) defense vs PIECK-UEA",
        ["Defense", "ER@10 / HR@10"],
    )
    shared = load_dataset(experiment("ml-100k", "mf", seed=0).dataset)
    for defense in ("none", "norm_bound", "regularization", "hybrid"):
        config = experiment(
            "ml-100k", "mf", attack="pieck_uea", defense=defense, seed=0
        )
        table.add_row(defense, str(run_cell(config, dataset=shared)))
    return table


def test_hybrid_defense(benchmark, archive):
    table = run_once(benchmark, _build)
    archive("hybrid_defense", table)
    rows = {row[0]: row[1] for row in table.rows}
    # The hybrid still protects relative to no defense at all ...
    assert _er(rows["hybrid"]) < _er(rows["none"])
    # ... but naive composition is NOT better than the client-side
    # defense alone: NormBound clips the defenders' gradients too.
    assert _er(rows["regularization"]) <= _er(rows["hybrid"]) + 5.0
