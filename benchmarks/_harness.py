"""Machine-readable benchmark artifacts shared by every bench script.

Each benchmark run leaves two artifacts under ``benchmarks/results/``:
the human-readable table/report text (via the ``archive`` fixture) and
a ``BENCH_<name>.json`` emitted through :func:`emit_bench_json` — the
machine-readable record (wall time, throughput numbers, the measured
configuration) that lets the performance trajectory be tracked across
PRs by diffing or plotting the JSON files instead of parsing report
text.

Coverage is automatic: the autouse ``bench_json`` fixture in
``benchmarks/conftest.py`` times every bench test and emits its JSON on
teardown; benches with richer numbers (throughput, speedups, configs)
fill the fixture's payload dict, and standalone ``__main__`` entry
points call :func:`emit_bench_json` directly.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.persistence import save_json_digested

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["RESULTS_DIR", "emit_bench_json", "peak_rss_bytes"]


def peak_rss_bytes() -> int | None:
    """This process's peak resident set size in bytes, if measurable.

    Reads ``VmHWM`` from ``/proc/self/status`` (Linux), falling back to
    ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux, bytes on
    macOS).  Returns ``None`` on platforms exposing neither — callers
    record it as "unmeasured" rather than guessing.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except Exception:  # pragma: no cover - platform-dependent
        return None


def emit_bench_json(name: str, payload: dict[str, Any]) -> str:
    """Write ``benchmarks/results/BENCH_<name>.json`` and return its path.

    ``payload`` must be JSON-serialisable; the harness adds the bench
    name, a wall-clock timestamp (so runs are orderable across PRs)
    and the process's peak RSS so far (so memory regressions are as
    diffable as throughput ones).  The file goes through the same
    atomic write-temp + ``os.replace`` + sha256-digest path as result
    JSONs, so a bencher killed mid-write can't leave a torn trajectory
    file, and ``repro fsck`` verifies it.
    """
    record = {
        "bench": name,
        "recorded_unix": round(time.time(), 3),
        "peak_rss_bytes": peak_rss_bytes(),
        **payload,
    }
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    save_json_digested(path, record, indent=2)
    return path
