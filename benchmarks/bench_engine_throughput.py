"""Round-throughput comparison: loop vs batch federated engine.

Not a paper table — this benchmarks the execution engines themselves
on synthetic datasets at production round size (1000 sampled clients
per round, the default embedding dim).  Two density regimes bracket
the paper's datasets (Table VIII): an Amazon-like sparse regime
(~10 interactions/user, the primary acceptance config) and a
MovieLens-100K-like dense regime (~40 interactions/user).

Acceptance: the vectorised batch engine must process >= 5x the
clients/sec of the reference per-client loop in the primary regime —
while producing bit-identical trajectories (asserted here on the
measured simulations and exhaustively in tests/test_batch_engine.py).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -s
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py   # standalone
"""

from __future__ import annotations

import time

import numpy as np

from _harness import emit_bench_json
from repro.config import DatasetConfig, ExperimentConfig, ModelConfig, TrainConfig
from repro.datasets.synthetic import generate_longtail_dataset
from repro.federated.simulation import FederatedSimulation

USERS_PER_ROUND = 1000

#: (name, num_users, num_items, num_interactions) per density regime.
REGIMES = (
    ("az-like sparse", 4_000, 6_000, 48_000),
    ("ml100k-like dense", 2_000, 3_000, 80_000),
)


def _measure(config, dataset, engine: str, rounds: int) -> float:
    """Median seconds/round over ``rounds`` measured rounds (one warm-up)."""
    sim = FederatedSimulation(config, dataset=dataset, engine=engine)
    samples = []
    for round_idx in range(rounds + 1):
        started = time.perf_counter()
        sim.run_round(round_idx)
        samples.append(time.perf_counter() - started)
    return float(np.median(samples[1:]))


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom"),
        model=ModelConfig(kind="mf", embedding_dim=16),
        train=TrainConfig(rounds=8, users_per_round=USERS_PER_ROUND, lr=1.0),
    )


def run_throughput() -> tuple[str, dict[str, float], dict]:
    """Benchmark both engines in every regime.

    Returns ``(report, speedups, json_payload)`` — the payload feeds
    the machine-readable ``BENCH_engine_throughput.json`` record.
    """
    config = _config()
    lines = [
        f"Engine throughput at {USERS_PER_ROUND} sampled clients/round "
        f"(MF, dim={config.model.embedding_dim})",
        f"{'regime':<20} {'engine':<6} {'ms/round':>9} {'clients/sec':>12} {'speedup':>8}",
    ]
    speedups: dict[str, float] = {}
    regimes_payload: dict[str, dict] = {}
    for name, num_users, num_items, num_interactions in REGIMES:
        dataset = generate_longtail_dataset(
            num_users, num_items, num_interactions, seed=0, name=name
        )
        loop_spr = _measure(config, dataset, "loop", rounds=6)
        batch_spr = _measure(config, dataset, "batch", rounds=16)
        speedups[name] = loop_spr / batch_spr
        regimes_payload[name] = {
            "num_users": num_users,
            "num_items": num_items,
            "num_interactions": num_interactions,
            "loop_seconds_per_round": loop_spr,
            "batch_seconds_per_round": batch_spr,
            "batch_rounds_per_sec": 1.0 / batch_spr,
            "speedup": speedups[name],
        }
        for engine, spr in (("loop", loop_spr), ("batch", batch_spr)):
            lines.append(
                f"{name:<20} {engine:<6} {spr * 1e3:>9.1f} "
                f"{USERS_PER_ROUND / spr:>12.0f} "
                f"{(loop_spr / spr):>7.2f}x"
            )
    payload = {
        "config": {
            "model": "mf",
            "embedding_dim": config.model.embedding_dim,
            "users_per_round": USERS_PER_ROUND,
        },
        "regimes": regimes_payload,
    }
    return "\n".join(lines), speedups, payload


def _parity_spot_check() -> None:
    """The engines being compared must agree bit for bit."""
    config = _config()
    dataset = generate_longtail_dataset(1_000, 2_000, 12_000, seed=1)
    sims = {
        engine: FederatedSimulation(config, dataset=dataset, engine=engine)
        for engine in ("loop", "batch")
    }
    for round_idx in range(3):
        for sim in sims.values():
            sim.run_round(round_idx)
    assert np.array_equal(
        sims["loop"].model.item_embeddings, sims["batch"].model.item_embeddings
    )


def test_engine_throughput(archive, bench_json):
    _parity_spot_check()
    report, speedups, payload = run_throughput()
    archive("engine_throughput", report)
    bench_json.update(payload)
    # Acceptance: >= 5x in the primary (sparse) regime.
    assert speedups["az-like sparse"] >= 5.0, report


if __name__ == "__main__":
    _parity_spot_check()
    report, speedups, payload = run_throughput()
    print(report)
    emit_bench_json("engine_throughput", payload)
