"""Table VII: large sampling ratio q and multiple target items."""

from repro.experiments import table7_system_settings

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table7_system_settings(benchmark, archive):
    table = run_once(benchmark, table7_system_settings)
    archive("table7_q_multitarget", table)
    rows = {(row[0], row[1]): row[2:] for row in table.rows}
    for column in (0, 1):  # q=10 column, |T|=3 column
        assert _er(rows[("PIECK-UEA", "NoDefense")][column]) > _er(
            rows[("NoAttack", "NoDefense")][column]
        )
        assert _er(rows[("PIECK-UEA", "ours")][column]) < 15.0
