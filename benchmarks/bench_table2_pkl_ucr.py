"""Table II: PKL / UCR closeness of popular items and users."""

from repro.experiments import table2_pkl_ucr

from benchmarks.conftest import run_once


def test_table2_pkl_ucr(benchmark, archive):
    table = run_once(
        benchmark,
        lambda: table2_pkl_ucr(popular_sizes=(1, 10, 50)),
    )
    archive("table2_pkl_ucr", table)
    # Reproduction check: UCR rises quickly with N (paper: 0.98 at N=10).
    ucr_row = [r for r in table.rows if r[0] == "UCR"][0]
    assert float(ucr_row[3]) > 0.8
