"""Million-user scale: sharded shared-memory store + process executor.

Not a paper table — this benchmarks the million-user execution layer
(``repro.federated.shards`` + ``ProcessRoundExecutor``) and pins its
contracts:

* **Scale + memory.** Real attacked-and-defended federated rounds over
  >= 1M benign users (full mode), with an *asserted* peak-RSS bound:
  client state is O(users x dim) in shared segments, never
  O(users x items), and never N per-worker copies.
* **Bit-identity.** The multi-process executor's trajectory (item
  embeddings + a streamed hash of every user embedding) must equal the
  single-process sharded run, which itself is pinned to the dense
  reference by the executor parity suite.
* **Throughput.** Multi-worker rounds vs single-process rounds on the
  same store. Acceptance on a >= 4-core machine (full mode):
  ``>= 2x`` speedup; on smaller machines the ratio is recorded but not
  enforced.
* **Chaos.** One round worker is SIGKILLed between rounds; the
  executor must respawn it and the trajectory must stay bit-identical.
* **Zero silent fallbacks.** Every round must go through the worker
  pool (``process_rounds == rounds``), the store must be on the shm
  backend, and the sweep pool's dataset transport must be
  shared-memory, not pickle.

``--smoke`` (the CI job) shrinks the cohort but keeps every assertion
except the speedup floor.

Run with::

    PYTHONPATH=src python benchmarks/bench_million_users.py          # full
    PYTHONPATH=src python benchmarks/bench_million_users.py --smoke  # CI
"""

from __future__ import annotations

import hashlib
import os
import signal
import sys
import tempfile
import time

import numpy as np

from _harness import emit_bench_json, peak_rss_bytes
from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    ShardingConfig,
    TrainConfig,
)
from repro.datasets.base import InteractionDataset
from repro.experiments.backend import LocalBackend
from repro.experiments.presets import dataset_config, experiment
from repro.experiments.sweep import CellSpec, SweepRunner
from repro.federated.simulation import FederatedSimulation

FULL = dict(
    users=1_000_000,
    items=2_000,
    per_user=8,
    dim=16,
    rounds=4,
    users_per_round=2_000,
    shards=16,
    rss_bound_bytes=int(1.5 * 2**30),
)
SMOKE = dict(
    users=60_000,
    items=400,
    per_user=6,
    dim=8,
    rounds=3,
    users_per_round=800,
    shards=8,
    rss_bound_bytes=int(0.75 * 2**30),
)

SPEEDUP_FLOOR = 2.0  # multi-process vs single-process, >= 4 cores, full
HASH_BLOCK_ROWS = 100_000


def build_dataset(users: int, items: int, per_user: int, seed: int):
    """A valid leave-one-out dataset in O(users) vectorised time.

    The calibrated long-tail generator draws per user in Python — fine
    at sweep scale, hours at 1M users — so the bench builds its cohort
    arithmetically: user ``u`` gets ``per_user + 1`` *distinct* items
    ``(offset_u + j * step) mod items`` (distinct because ``step`` is
    coprime with ``items``), the last one held out as the test item.
    Offsets are drawn per user, so item popularity is near-uniform —
    this bench measures throughput and memory, not ranking quality.
    """
    step = 7919  # prime > any bench item count => coprime with `items`
    assert np.gcd(step, items) == 1
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, items, size=users, dtype=np.int64)
    draws = (
        offsets[:, None] + np.arange(per_user + 1, dtype=np.int64) * step
    ) % items
    train = np.sort(draws[:, :per_user], axis=1)
    indptr = np.arange(users + 1, dtype=np.int64) * per_user
    return InteractionDataset.from_csr(
        name="million-bench",
        num_users=users,
        num_items=items,
        indptr=indptr,
        indices=np.ascontiguousarray(train.reshape(-1)),
        test_items=np.ascontiguousarray(draws[:, per_user]),
    )


def bench_config(p: dict, *, shards: int, workers: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="million-bench"),
        model=ModelConfig(kind="mf", embedding_dim=p["dim"]),
        train=TrainConfig(
            rounds=p["rounds"],
            users_per_round=p["users_per_round"],
            eval_every=0,
            eval_num_negatives=0,
        ),
        attack=AttackConfig(name="a_hum", malicious_ratio=0.001, num_targets=3),
        defense=DefenseConfig(name="norm_bound"),
        sharding=ShardingConfig(num_shards=shards, round_workers=workers),
        seed=0,
    )


def embedding_hash(sim: FederatedSimulation) -> str:
    """Streamed sha256 over every user embedding row (no dense copy)."""
    digest = hashlib.sha256()
    num_users = sim.dataset.num_users
    for lo in range(0, num_users, HASH_BLOCK_ROWS):
        hi = min(lo + HASH_BLOCK_ROWS, num_users)
        block = sim.state.embedding_block(lo, hi)
        digest.update(np.ascontiguousarray(block).tobytes())
    return digest.hexdigest()


def run_rounds(sim: FederatedSimulation, rounds: int, *, kill_worker_at=None):
    """Execute ``rounds`` rounds; optionally SIGKILL a worker mid-run."""
    started = time.perf_counter()
    for round_idx in range(rounds):
        if round_idx == kill_worker_at:
            victim = sim.executor._pool[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
        sim.run_round(round_idx)
    return time.perf_counter() - started


def sweep_transport_leg() -> tuple[int, int]:
    """Tiny pooled sweep proving datasets ship via shared memory."""
    dataset = "ml-100k"
    specs = [
        CellSpec(
            config=experiment(
                dataset, "mf", attack="none", defense=defense, seed=0, rounds=3
            ),
            dataset_key=dataset,
        )
        for defense in ("none", "norm_bound")
    ]
    backend = LocalBackend(workers=2)
    with tempfile.TemporaryDirectory(prefix="million-sweep-") as cache_dir:
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        runner.run(specs, {dataset: dataset_config(dataset, seed=0)})
    return backend.last_shm_datasets, backend.last_pickled_datasets


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    p = SMOKE if smoke else FULL
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))

    print(
        f"million users ({'smoke' if smoke else 'full'}): "
        f"{p['users']:,} users, {p['items']} items, {p['rounds']} rounds, "
        f"{p['shards']} shards, {workers} workers, {cores} cores"
    )
    started = time.perf_counter()
    dataset = build_dataset(p["users"], p["items"], p["per_user"], seed=1)
    build_seconds = time.perf_counter() - started
    print(f"  dataset built in {build_seconds:.2f}s "
          f"({dataset.num_train_interactions:,} interactions)")

    # -- single-process sharded reference ------------------------------
    single_cfg = bench_config(p, shards=p["shards"], workers=0)
    with FederatedSimulation(single_cfg, dataset) as single:
        assert single.state.backend == "shm", "store not on the shm backend"
        single_seconds = run_rounds(single, p["rounds"])
        single_items = single.model.item_embeddings.copy()
        single_hash = embedding_hash(single)
    print(f"  single-process: {single_seconds:.2f}s "
          f"({p['rounds'] / single_seconds:.2f} rounds/s)")

    # -- multi-process executor ----------------------------------------
    multi_cfg = bench_config(p, shards=p["shards"], workers=workers)
    with FederatedSimulation(multi_cfg, dataset) as multi:
        multi_seconds = run_rounds(multi, p["rounds"])
        engine = multi._batch_engine
        assert engine.process_rounds == p["rounds"], (
            f"only {engine.process_rounds}/{p['rounds']} rounds went "
            "through the worker pool — a silent in-process fallback"
        )
        assert multi.executor.respawns == 0, "workers died in the clean run"
        assert np.array_equal(multi.model.item_embeddings, single_items), (
            "multi-process item embeddings diverge from single-process"
        )
        multi_hash = embedding_hash(multi)
        assert multi_hash == single_hash, (
            "multi-process user embeddings diverge from single-process"
        )
    speedup = single_seconds / max(multi_seconds, 1e-9)
    print(f"  {workers}-worker executor: {multi_seconds:.2f}s "
          f"(speedup {speedup:.2f}x, bit-identical)")

    # -- chaos: SIGKILL one round worker, trajectory must not change ---
    chaos_cfg = bench_config(p, shards=p["shards"], workers=workers)
    with FederatedSimulation(chaos_cfg, dataset) as chaos:
        run_rounds(chaos, p["rounds"], kill_worker_at=p["rounds"] // 2)
        assert chaos.executor.respawns >= 1, "SIGKILL was absorbed silently?"
        assert np.array_equal(chaos.model.item_embeddings, single_items), (
            "post-chaos item embeddings diverge"
        )
        assert embedding_hash(chaos) == single_hash, (
            "post-chaos user embeddings diverge"
        )
        chaos_respawns = chaos.executor.respawns
    print(f"  chaos: worker SIGKILLed, {chaos_respawns} respawn(s), "
          "trajectory bit-identical")

    # -- sweep pool dataset transport ----------------------------------
    shm_datasets, pickled_datasets = sweep_transport_leg()
    assert pickled_datasets == 0, (
        f"{pickled_datasets} dataset(s) fell back to pickle transport "
        "with /dev/shm available"
    )
    assert shm_datasets >= 1, "pooled sweep shipped no dataset via shm"
    print(f"  sweep pool: {shm_datasets} dataset(s) via shared memory, "
          "0 pickled")

    # -- memory ---------------------------------------------------------
    peak = peak_rss_bytes()
    assert peak is not None, "peak RSS unmeasurable on this platform"
    print(f"  peak RSS {peak / 2**30:.2f} GiB "
          f"(bound {p['rss_bound_bytes'] / 2**30:.2f} GiB)")
    assert peak <= p["rss_bound_bytes"], (
        f"peak RSS {peak / 2**30:.2f} GiB exceeds the "
        f"{p['rss_bound_bytes'] / 2**30:.2f} GiB bound — client state "
        "is no longer O(users x dim)"
    )

    emit_bench_json(
        "million_users",
        {
            "mode": "smoke" if smoke else "full",
            "users": p["users"],
            "items": p["items"],
            "rounds": p["rounds"],
            "shards": p["shards"],
            "workers": workers,
            "cpu_cores": cores,
            "dataset_build_s": round(build_seconds, 3),
            "single_process_s": round(single_seconds, 3),
            "multi_process_s": round(multi_seconds, 3),
            "speedup": round(speedup, 3),
            "rounds_per_s_multi": round(p["rounds"] / max(multi_seconds, 1e-9), 3),
            "chaos_respawns": chaos_respawns,
            "sweep_shm_datasets": shm_datasets,
            "sweep_pickled_datasets": pickled_datasets,
            "rss_bound_bytes": p["rss_bound_bytes"],
            "speedup_floor_enforced": (not smoke) and cores >= 4,
        },
    )

    # -- acceptance ----------------------------------------------------
    if not smoke:
        if cores >= 4:
            assert speedup >= SPEEDUP_FLOOR, (
                f"{workers}-worker speedup {speedup:.2f}x on {cores} "
                f"cores is below the {SPEEDUP_FLOOR}x floor"
            )
        else:
            print(
                f"  (only {cores} cores: {SPEEDUP_FLOOR}x floor not "
                "enforced, recorded only)"
            )
    print("million users: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
