"""Async smoke: an attack x defense grid under churn, latency and deadlines.

The CI gate for the asynchronous engine as a *system*, in two parts:

**Churn grid** — every cell of a small attack x defense grid runs the
event-driven engine under bursty Poisson traffic, compute/network
latency, client churn and a tight round deadline, and must

* finish without crashing, with a finite model;
* actually exercise the asynchronous machinery (waves dispatched,
  uploads cancelled, stale uploads applied — an async run where
  nothing was ever late tests nothing);
* conserve every upload (dispatched == cancelled + arrived + still in
  flight; nothing vanishes silently);
* reproduce bit-identically when re-run with the same seed.

**Sync parity** — the degenerate configuration (instant traffic, zero
latency, no churn, buffer = cohort) must reproduce the synchronous
batch engine *bit for bit* across the same grid and both model kinds.
This is the contract that pins the event loop's ordering semantics;
it honours ``REPRO_KERNELS`` so the native CI leg runs it too.

Run with::

    PYTHONPATH=src python benchmarks/async_smoke.py            # both parts
    PYTHONPATH=src python benchmarks/async_smoke.py --parity   # parity only
"""

from __future__ import annotations

import sys

import numpy as np

from repro.config import (
    AsyncConfig,
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.federated.simulation import FederatedSimulation

ATTACKS = ("pieck_uea", "pieck_ipe")
DEFENSES = ("none", "median", "regularization")

CHURNY = AsyncConfig(
    enabled=True,
    traffic="poisson",
    arrival_rate=6.0,
    compute_mean=0.2,
    network_mean=0.5,
    churn_rate=0.15,
    buffer_size=12,
    round_deadline=1.5,
    staleness_discount=0.6,
    max_staleness=4,
)


def _config(attack: str, defense: str, model_kind: str = "mf", **kwargs) -> ExperimentConfig:
    if model_kind == "mf":
        model = ModelConfig(kind="mf", embedding_dim=8, seed=3)
        train = TrainConfig(rounds=10, users_per_round=24, lr=1.0)
    else:
        model = ModelConfig(kind="ncf", embedding_dim=8, mlp_layers=(16, 8), seed=3)
        train = TrainConfig(rounds=10, users_per_round=24, lr=0.05)
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.1, seed=5),
        model=model,
        train=train,
        attack=AttackConfig(name=attack, malicious_ratio=0.1, mining_rounds=2),
        defense=DefenseConfig(name=defense),
        seed=3,
        **kwargs,
    )


def _run(config: ExperimentConfig):
    sim = FederatedSimulation(config, engine="batch")
    result = sim.run()
    return result, sim.model.item_embeddings.copy()


def churn_grid() -> None:
    for attack in ATTACKS:
        for defense in DEFENSES:
            config = _config(attack, defense, asynchrony=CHURNY)
            result, items = _run(config)
            stats = result.async_stats
            label = f"{attack} x {defense}"
            assert np.isfinite(items).all(), f"{label}: non-finite model"
            assert stats.waves_dispatched > 0, f"{label}: no waves dispatched"
            assert stats.uploads_cancelled > 0, f"{label}: churn never fired"
            assert stats.stale_applied > 0, f"{label}: no stale upload landed"
            assert stats.uploads_applied > 0, f"{label}: nothing aggregated"
            assert stats.clients_dispatched == (
                stats.uploads_cancelled
                + stats.uploads_arrived
                + stats.uploads_in_flight
            ), f"{label}: upload conservation violated"
            rerun_result, rerun_items = _run(config)
            assert rerun_items.tobytes() == items.tobytes(), (
                f"{label}: async run is not reproducible"
            )
            assert rerun_result.async_stats == stats
            print(
                f"{label}: ER@K={result.exposure:.4f} HR@K={result.hit_ratio:.4f} "
                f"cancelled={stats.uploads_cancelled} stale={stats.stale_applied} "
                f"dropped={stats.stale_dropped} "
                f"deadline_closes={stats.rounds_closed_by_deadline} [ok]"
            )
    print("async smoke: all churn cells survived, counted, and reproduced")


def sync_parity() -> None:
    degenerate = AsyncConfig(enabled=True)
    for model_kind in ("mf", "ncf"):
        for attack in ATTACKS:
            for defense in DEFENSES:
                label = f"{model_kind}: {attack} x {defense}"
                _, sync_items = _run(_config(attack, defense, model_kind))
                _, async_items = _run(
                    _config(attack, defense, model_kind, asynchrony=degenerate)
                )
                assert async_items.tobytes() == sync_items.tobytes(), (
                    f"{label}: degenerate async diverged from the "
                    "synchronous engine"
                )
                print(f"{label}: degenerate async == sync, bit for bit [ok]")
    print("async smoke: sync-equivalence held on every cell")


def main() -> None:
    parity_only = "--parity" in sys.argv
    if not parity_only:
        churn_grid()
    sync_parity()


if __name__ == "__main__":
    main()
