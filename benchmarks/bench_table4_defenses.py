"""Table IV: defense comparison against the top-3 attacks."""

from repro.experiments import table4_defenses

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table4_defenses_mf(benchmark, archive):
    table = run_once(
        benchmark,
        lambda: table4_defenses(model_kinds=("mf",)),
    )
    archive("table4_defenses_mf", table)
    rows = {row[0]: row[1:] for row in table.rows}
    # Reproduction checks: robust aggregation fails to stop PIECK-UEA
    # (column 2) while the paper's defense collapses it.
    undefended = _er(rows["NoDefense"][2])
    assert _er(rows["ours"][2]) < 0.2 * max(undefended, 1.0)
    failed = [
        name
        for name in ("Median", "TrimmedMean", "Krum", "MultiKrum", "Bulyan", "NormBound")
        if _er(rows[name][2]) > 0.5 * undefended
    ]
    assert len(failed) >= 2, f"expected several robust defenses to fail, got {failed}"


def test_table4_defenses_ncf(benchmark, archive):
    table = run_once(
        benchmark,
        lambda: table4_defenses(
            model_kinds=("ncf",),
            attacks=("pieck_ipe", "pieck_uea"),
            defenses=("none", "median", "krum", "regularization"),
            seed=1,
        ),
    )
    archive("table4_defenses_ncf", table)
    rows = {row[0]: row[1:] for row in table.rows}
    assert _er(rows["NoDefense"][0]) > 80.0  # PIECK-IPE undefended
    assert _er(rows["NoDefense"][1]) > 80.0  # PIECK-UEA undefended
    # Robust aggregation leaves PIECK untouched on DL-FRS (paper: 100).
    assert _er(rows["Median"][1]) > 80.0
    # Our defense contains UEA; see EXPERIMENTS.md for the DL-side
    # caveat (the reproduction's attack is stronger than the paper's,
    # and the embedding-level defense is only partially effective
    # against IPE here).
    assert _er(rows["ours"][1]) < 0.2 * _er(rows["NoDefense"][1])
