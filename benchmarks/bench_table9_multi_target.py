"""Table IX: multi-target strategies (supplementary C)."""

from repro.experiments import table9_multi_target

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table9_multi_target(benchmark, archive):
    table = run_once(
        benchmark, lambda: table9_multi_target(target_counts=(2, 3, 5))
    )
    archive("table9_multi_target", table)
    rows = {(row[0], row[1]): [_er(c) for c in row[2:]] for row in table.rows}
    # Reproduction check: Train-One-Then-Copy stays effective as |T|
    # grows (the paper's preferred strategy).
    copy_uea = rows[("PIECK-UEA", "OneThenCopy")]
    assert copy_uea[-1] > 10.0
