"""Extension bench: the coordinated (client + server) defense.

The naive future-work hybrid (client regularization + server NormBound)
is a measured negative result (``bench_hybrid_defense.py``). This bench
evaluates the *coordinated* design of ``repro.defenses.coordinated``:
a per-row gradient scale clip on the server (calibrated from the
round's median row norm — a statistic benign rows dominate even when
poison dominates a cold item's rows, sidestepping Eq. 11) composed
with the paper's client-side regularization.

The matrix pits both PIECK-UEA variants (raw Eq. 10 and the refined
adaptive attack) against the single-sided defenses and the coordinated
composition. The headline is the worst case per defense: the
regularization alone is evaded by the refined attack, the scale clip
alone and the coordinated defense contain both variants, and the
coordinated defense keeps the clean-run HR.
"""

from repro.datasets.loaders import load_dataset
from repro.experiments import attack_config, experiment, run_cell
from repro.experiments.reporting import TableResult

from benchmarks.conftest import run_once

DEFENSES = ("none", "regularization", "scale_clip", "coordinated")


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def _hr(cell: str) -> float:
    return float(cell.split("/")[1])


def _build() -> TableResult:
    table = TableResult(
        "Extension: coordinated defense vs both PIECK-UEA variants",
        ["Model", "Attack", *DEFENSES],
    )
    shared = load_dataset(experiment("ml-100k", "mf", seed=0).dataset)
    attacks = [
        ("UEA-raw", attack_config("pieck_uea")),
        ("UEA-refined", attack_config("pieck_uea", uea_pseudo_source="refined")),
        ("NoAttack", None),
    ]
    for label, attack in attacks:
        cells = []
        for defense in DEFENSES:
            config = experiment(
                "ml-100k", "mf", attack=attack, defense=defense, seed=0
            )
            cells.append(str(run_cell(config, dataset=shared)))
        table.add_row("MF", label, *cells)
    # Model-agnostic check on DL-FRS, including the interaction-function
    # attack A-hum: its effective promotion also flows through item
    # gradients, so the per-row clip contains it too.
    shared_ncf = load_dataset(experiment("ml-100k", "ncf", seed=0).dataset)
    for label, attack in (("UEA-raw", "pieck_uea"), ("A-hum", "a_hum")):
        cells = []
        for defense in DEFENSES:
            config = experiment(
                "ml-100k", "ncf", attack=attack, defense=defense, seed=0
            )
            cells.append(str(run_cell(config, dataset=shared_ncf)))
        table.add_row("NCF", label, *cells)
    return table


def test_coordinated_defense(benchmark, archive):
    table = run_once(benchmark, _build)
    archive("coordinated_defense", table)
    rows = {
        (row[0], row[1]): dict(zip(DEFENSES, row[2:])) for row in table.rows
    }

    # Regularization alone is evaded by the refined adaptive attack ...
    assert _er(rows[("MF", "UEA-refined")]["regularization"]) > 30.0
    # ... while the coordinated defense contains both variants.
    worst_coordinated = max(
        _er(rows[("MF", a)]["coordinated"]) for a in ("UEA-raw", "UEA-refined")
    )
    worst_regularization = max(
        _er(rows[("MF", a)]["regularization"]) for a in ("UEA-raw", "UEA-refined")
    )
    assert worst_coordinated < 25.0
    assert worst_coordinated < worst_regularization
    # The server-side scale clip alone already contains both variants
    # (it clips poison rows at the benign scale regardless of source).
    assert max(
        _er(rows[("MF", a)]["scale_clip"]) for a in ("UEA-raw", "UEA-refined")
    ) < 25.0
    # Performance preservation: the coordinated clean run keeps HR
    # within a few points of the undefended clean run.
    assert _hr(rows[("MF", "NoAttack")]["coordinated"]) > _hr(
        rows[("MF", "NoAttack")]["none"]
    ) - 5.0
    # Model-agnostic: on DL-FRS both PIECK-UEA and the interaction-
    # function attack A-hum go from total takeover to contained by the
    # server-side scale clip alone, at full recommendation quality.
    for attack in ("UEA-raw", "A-hum"):
        assert _er(rows[("NCF", attack)]["none"]) > 90.0
        assert _er(rows[("NCF", attack)]["scale_clip"]) < 15.0
        assert _hr(rows[("NCF", attack)]["scale_clip"]) > 40.0
        # The coordinated composition also contains the exposure on
        # NCF, but its HR degrades over long horizons (clip +
        # regularization over-constrain the tower — a measured
        # negative interaction, see EXPERIMENTS.md); no HR assertion.
        assert _er(rows[("NCF", attack)]["coordinated"]) < 15.0
