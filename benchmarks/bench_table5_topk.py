"""Table V: effect of the recommendation cutoff K."""

from repro.experiments import table5_top_k

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table5_topk(benchmark, archive):
    table = run_once(benchmark, lambda: table5_top_k(ks=(5, 20)))
    archive("table5_topk", table)
    rows = {(row[0], row[1]): row[2:] for row in table.rows}
    for k_col in (0, 1):
        # Attacks effective without defense, collapsed with it, at each K.
        assert _er(rows[("PIECK-UEA", "NoDefense")][k_col]) > _er(
            rows[("NoAttack", "NoDefense")][k_col]
        )
        assert _er(rows[("PIECK-UEA", "ours")][k_col]) < 15.0
