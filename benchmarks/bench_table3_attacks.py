"""Table III: attack comparison across models and datasets."""

from repro.experiments import table3_attacks

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table3_attacks(benchmark, archive):
    table = run_once(
        benchmark,
        lambda: table3_attacks(
            datasets=("ml-100k", "ml-1m"), model_kinds=("mf", "ncf")
        ),
    )
    archive("table3_attacks", table)
    rows = {row[0]: row[1:] for row in table.rows}
    # Reproduction checks (shape, not absolute numbers):
    # 1. PIECK beats every baseline on MF-FRS.
    for column in (0, 1):
        best_pieck = max(_er(rows["PIECK-IPE"][column]), _er(rows["PIECK-UEA"][column]))
        for baseline in ("NoAttack", "FedRecA", "A-ra"):
            assert best_pieck > _er(rows[baseline][column])
    # 2. Interaction-function attacks are ineffective on MF-FRS.
    assert _er(rows["A-ra"][0]) < 5.0
    # 3. PIECK reaches (near-)total exposure on DL-FRS.
    assert _er(rows["PIECK-IPE"][2]) > 80.0
    assert _er(rows["PIECK-UEA"][2]) > 80.0


def test_table3_attacks_az_mf(benchmark, archive):
    """The sparse Amazon dataset, MF-FRS side of Table III."""
    table = run_once(
        benchmark,
        lambda: table3_attacks(
            datasets=("az",),
            model_kinds=("mf",),
            attacks=("none", "pieck_ipe", "pieck_uea"),
        ),
    )
    archive("table3_attacks_az_mf", table)
    rows = {row[0]: row[1:] for row in table.rows}
    assert _er(rows["PIECK-UEA"][0]) > _er(rows["NoAttack"][0])
