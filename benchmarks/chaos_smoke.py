"""Chaos smoke: a reduced attack x defense grid under an aggressive fault plan.

The CI gate for the fault-tolerance layer as a *system*: every cell of
a small attack x defense grid trains under simultaneous dropout,
stragglers and payload corruption, and must

* finish without crashing, with a finite model;
* actually exercise every fault kind (all injection counters > 0 —
  a chaos run where nothing went wrong tests nothing);
* reject every corrupted upload at the server gate (corruption mode
  ``nan``: injected == rejected, nothing poisons the table silently);
* reproduce bit-identically when re-run with the same seed — chaos is
  deterministic here, or no failure under it is debuggable.

Run with::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    FaultConfig,
    ModelConfig,
    TrainConfig,
)
from repro.federated.simulation import FederatedSimulation

ATTACKS = ("pieck_uea", "pieck_ipe")
DEFENSES = ("none", "median", "regularization")

CHAOS = FaultConfig(
    dropout_rate=0.2,
    straggler_rate=0.15,
    straggler_max_delay=2,
    corruption_rate=0.1,
    corruption_mode="nan",
    min_quorum=2,
)


def _config(attack: str, defense: str) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.1, seed=5),
        model=ModelConfig(kind="mf", embedding_dim=8, seed=3),
        train=TrainConfig(rounds=10, users_per_round=24, lr=1.0),
        attack=AttackConfig(name=attack, malicious_ratio=0.1, mining_rounds=2),
        defense=DefenseConfig(name=defense),
        faults=CHAOS,
        seed=3,
    )


def _run(config: ExperimentConfig):
    sim = FederatedSimulation(config, engine="batch")
    result = sim.run()
    return result, sim.model.item_embeddings.copy()


def main() -> None:
    for attack in ATTACKS:
        for defense in DEFENSES:
            config = _config(attack, defense)
            result, items = _run(config)
            stats = result.fault_stats
            label = f"{attack} x {defense}"
            assert np.isfinite(items).all(), f"{label}: non-finite model"
            assert stats.dropped_uploads > 0, f"{label}: no dropouts fired"
            assert stats.deferred_uploads > 0, f"{label}: no stragglers fired"
            assert stats.stale_applied > 0, f"{label}: no stale upload landed"
            assert stats.corrupted_uploads > 0, f"{label}: no corruption fired"
            assert stats.rejected_nonfinite == stats.corrupted_uploads, (
                f"{label}: {stats.corrupted_uploads} corrupted but "
                f"{stats.rejected_nonfinite} rejected — the gate leaked"
            )
            rerun_result, rerun_items = _run(config)
            assert rerun_items.tobytes() == items.tobytes(), (
                f"{label}: chaos run is not reproducible"
            )
            assert rerun_result.fault_stats == stats
            print(
                f"{label}: ER@K={result.exposure:.4f} HR@K={result.hit_ratio:.4f} "
                f"dropped={stats.dropped_uploads} deferred={stats.deferred_uploads} "
                f"corrupted={stats.corrupted_uploads} "
                f"quorum_failed={stats.quorum_failed_rounds} [ok]"
            )
    print("chaos smoke: all cells survived, counted, and reproduced")


if __name__ == "__main__":
    main()
