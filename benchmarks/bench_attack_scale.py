"""Adversary scaling: MaliciousCohort vs object-per-client attacks.

Not a paper table — this benchmarks the *adversary layer* at
production team sizes (the ROADMAP's 1% of a million users is ~10k
malicious clients; the full scale here runs 2k):

* **Round throughput.** The batch engine with its
  :class:`~repro.attacks.cohort.MaliciousCohort` (struct-of-arrays
  counters, shared Δ-Norm observation ledger, per-distinct-mined-set
  PIECK-IPE payloads, stacked uploads) versus the identical engine
  with the cohort detached (per-object ``participate`` calls — the
  pre-cohort path).  Acceptance: ``>= 3x`` faster per round at the
  full scale of 2k malicious clients (``>= 2x`` at smoke scale, where
  the benign half of the round weighs more), with **bit-identical**
  final model state.
* **O(1) item-matrix copies.** The shared observation ledger must
  snapshot each round's item matrix at most once regardless of team
  size: the ``snapshot_copies`` counter is asserted equal for a small
  and a large team over the same schedule, and a ``tracemalloc``
  bound on a mining-phase round proves the cohort allocates a small
  constant number of item matrices — not the one-copy-per-sampled-
  client retention the per-object trackers used to pay.
* **Anti-fallback guard** (the CI smoke's reason to exist, mirroring
  the defended-path and state-scale guards): the cohort-backed engine
  must report ``object_malicious_rounds == 0`` (and the benign side
  ``stacked_rounds == 0`` / ``materialized_rounds == 0``) after real
  training rounds — the batched adversary never silently degrades to
  the per-object loop.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_attack_scale.py -s
    PYTHONPATH=src python benchmarks/bench_attack_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_attack_scale.py --smoke   # CI
"""

from __future__ import annotations

import sys
import time
import tracemalloc

import numpy as np

from _harness import emit_bench_json
from repro.attacks.mining import CohortMiner
from repro.config import (
    AttackConfig,
    DatasetConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.datasets.synthetic import generate_longtail_dataset
from repro.federated.simulation import FederatedSimulation

EMBEDDING_DIM = 16
SEED = 5
ATTACK = "pieck_ipe"  # the paper's attack; heaviest per-object adversary

#: (benign users, items, interactions, malicious clients,
#:  users_per_round, measured rounds, round-speedup floor)
FULL_SCALE = (1_000, 2_500, 40_000, 2_000, 1_050, 10, 3.0)
SMOKE_SCALE = (400, 1_000, 16_000, 800, 420, 8, 2.0)

#: Zipf exponent of the synthetic catalogue.  A realistic long-tail
#: skew concentrates the Δ-Norm ranking, so distinct sampling
#: histories converge to fewer distinct mined sets — the regime the
#: paper's datasets live in and the one the IPE payload dedup serves.
POPULARITY_EXPONENT = 1.3

#: tracemalloc bound: the adversary layer's mining-phase pass must
#: stay under a quarter of what one item-matrix copy per sampled
#: malicious client would retain (the pre-ledger per-object
#: behaviour).
PEAK_DIVISOR = 4


def _config(num_benign: int, num_malicious: int, users_per_round: int) -> ExperimentConfig:
    # malicious_ratio is measured against the *total* population
    # (registry converts back), so m/(benign+m) reproduces the count.
    ratio = num_malicious / (num_benign + num_malicious)
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom"),
        model=ModelConfig(kind="mf", embedding_dim=EMBEDDING_DIM),
        train=TrainConfig(rounds=12, users_per_round=users_per_round, lr=1.0),
        attack=AttackConfig(name=ATTACK, malicious_ratio=ratio),
        seed=SEED,
    )


def _build_sims(dataset, config) -> tuple[FederatedSimulation, FederatedSimulation]:
    """Two identical batch-engine sims; the second drops its cohort.

    Both run the store-backed benign path, so the measured difference
    is exactly the adversary layer: cohort ``compute_uploads`` versus
    the per-object ``participate`` loop.
    """
    cohort_sim = FederatedSimulation(config, dataset=dataset, engine="batch")
    object_sim = FederatedSimulation(config, dataset=dataset, engine="batch")
    assert cohort_sim.malicious_cohort is not None
    object_sim._batch_engine.cohort = None
    return cohort_sim, object_sim


def _measure_rounds(
    cohort_sim: FederatedSimulation,
    object_sim: FederatedSimulation,
    rounds: int,
) -> tuple[float, float, int]:
    """Interleaved (cohort s/round, object s/round, sampled malicious)."""
    cohort_times: list[float] = []
    object_times: list[float] = []
    num_benign = cohort_sim.dataset.num_users
    sampled_malicious = 0
    for round_idx in range(rounds + 2):
        sampled = cohort_sim.server.sample_users(
            cohort_sim.total_users,
            cohort_sim.config.train.users_per_round,
            round_idx,
        )
        sampled_malicious = max(
            sampled_malicious, int(np.count_nonzero(sampled >= num_benign))
        )
        for sim, times in (
            (cohort_sim, cohort_times),
            (object_sim, object_times),
        ):
            started = time.perf_counter()
            sim._batch_engine.run_round(round_idx, sampled)
            times.append(time.perf_counter() - started)

    # Same rounds, same samples -> the two adversary paths must leave
    # bit-identical global models (the cohort's core contract).
    assert np.array_equal(
        cohort_sim.model.item_embeddings, object_sim.model.item_embeddings
    ), "cohort path diverged from the per-object reference"
    # Anti-fallback guards.
    engine = cohort_sim._batch_engine
    assert engine.object_malicious_rounds == 0, (
        "cohort-backed engine silently ran the per-object malicious loop"
    )
    assert engine.stacked_rounds == 0
    assert cohort_sim.server.materialized_rounds == 0
    assert object_sim._batch_engine.object_malicious_rounds == rounds + 2
    return (
        float(np.median(cohort_times[2:])),
        float(np.median(object_times[2:])),
        sampled_malicious,
    )


def _measure_copy_independence(num_items: int, rounds: int = 6) -> tuple[int, int]:
    """Ledger snapshot copies for a small and a large team, same schedule."""
    rng = np.random.default_rng(0)
    matrices = [
        rng.normal(size=(num_items, EMBEDDING_DIM)) for _ in range(rounds)
    ]
    copies = []
    for team in (50, 2_000):
        miner = CohortMiner(num_items, 2, 10, team)
        for round_idx, matrix in enumerate(matrices):
            miner.observe(np.arange(team), matrix, round_idx)
        copies.append(miner.snapshot_copies)
    return copies[0], copies[1]


def _measure_mining_peak(dataset, config) -> tuple[int, int]:
    """(tracemalloc peak, per-object retention bound) of mining passes.

    Measures the adversary layer alone — ``compute_uploads`` over the
    first rounds, covering baseline snapshots, Δ-Norm accumulation and
    the freezing argsort.  The pre-ledger per-object path retained one
    ``(num_items, dim)`` copy per sampled client per round; the
    cohort's ledger must stay far below that.
    """
    sim = FederatedSimulation(config, dataset=dataset, engine="batch")
    cohort = sim.malicious_cohort
    num_benign = dataset.num_users
    item_bytes = dataset.num_items * EMBEDDING_DIM * 8
    peak = 0
    min_sampled = dataset.num_users
    for round_idx in range(config.attack.mining_rounds + 2):
        sampled = sim.server.sample_users(
            sim.total_users, config.train.users_per_round, round_idx
        )
        rows = sampled[sampled >= num_benign] - num_benign
        min_sampled = min(min_sampled, len(rows))
        tracemalloc.start()
        cohort.compute_uploads(sim.model, config.train, round_idx, rows)
        _, round_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak = max(peak, int(round_peak))
    return peak, min_sampled * item_bytes // PEAK_DIVISOR


def run_attack_scale(smoke: bool = False) -> tuple[str, dict, dict]:
    """Benchmark the adversary layer at one scale.

    Returns ``(report, checks, json_payload)``; ``checks`` carries the
    numbers the acceptance assertions read.
    """
    (
        num_benign,
        num_items,
        num_interactions,
        num_malicious,
        users_per_round,
        rounds,
        speedup_floor,
    ) = SMOKE_SCALE if smoke else FULL_SCALE
    dataset = generate_longtail_dataset(
        num_benign,
        num_items,
        num_interactions,
        popularity_exponent=POPULARITY_EXPONENT,
        seed=0,
        name="attack-scale",
    )
    config = _config(num_benign, num_malicious, users_per_round)

    cohort_sim, object_sim = _build_sims(dataset, config)
    assert cohort_sim.malicious_cohort.num_clients == num_malicious
    cohort_spr, object_spr, sampled_malicious = _measure_rounds(
        cohort_sim, object_sim, rounds
    )
    speedup = object_spr / cohort_spr
    payload_dedup = cohort_sim.malicious_cohort.last_round_payloads

    small_copies, large_copies = _measure_copy_independence(num_items)
    mining_peak, peak_bound = _measure_mining_peak(dataset, config)

    lines = [
        f"Adversary scaling: {ATTACK} with {num_malicious} malicious clients "
        f"over {num_benign} benign users x {num_items} items "
        f"(MF dim={EMBEDDING_DIM}{', smoke' if smoke else ''})",
        f"{'metric':<38} {'object':>12} {'cohort':>12} {'ratio':>8}",
        f"{'round (ms, ~' + str(sampled_malicious) + ' malicious sampled)':<38} "
        f"{object_spr * 1e3:>12.2f} {cohort_spr * 1e3:>12.2f} {speedup:>7.2f}x",
        f"ledger item-matrix copies over one schedule: team of 50 -> "
        f"{small_copies}, team of 2000 -> {large_copies} (independent of team size)",
        f"mining-round peak: {mining_peak / 2**20:.1f} MiB "
        f"(per-object retention bound: {peak_bound / 2**20:.1f} MiB)",
        f"IPE payload dedup (last round): {payload_dedup} distinct mined sets "
        f"optimised for {sampled_malicious} sampled clients",
        f"acceptance: round >= {speedup_floor:.1f}x, copies independent of team "
        f"size, peak < bound, bit-identical models, zero fallback rounds",
    ]
    checks = {
        "speedup": speedup,
        "speedup_floor": speedup_floor,
        "small_copies": small_copies,
        "large_copies": large_copies,
        "mining_peak_bytes": mining_peak,
        "peak_bound_bytes": peak_bound,
    }
    payload = {
        "config": {
            "smoke": smoke,
            "attack": ATTACK,
            "num_benign": num_benign,
            "num_items": num_items,
            "num_interactions": num_interactions,
            "num_malicious": num_malicious,
            "users_per_round": users_per_round,
            "measured_rounds": rounds,
            "embedding_dim": EMBEDDING_DIM,
        },
        "round": {
            "object_seconds_per_round": object_spr,
            "cohort_seconds_per_round": cohort_spr,
            "speedup": speedup,
            "sampled_malicious": sampled_malicious,
        },
        "ledger": {
            "copies_team_50": small_copies,
            "copies_team_2000": large_copies,
            "mining_round_peak_bytes": mining_peak,
            "per_object_retention_bound_bytes": peak_bound,
        },
        "ipe_payloads_last_round": payload_dedup,
        "object_malicious_rounds_on_cohort_path": 0,
    }
    return "\n".join(lines), checks, payload


def _assert_acceptance(checks: dict, report: str) -> None:
    assert checks["speedup"] >= checks["speedup_floor"], report
    assert checks["small_copies"] == checks["large_copies"], report
    assert checks["mining_peak_bytes"] < checks["peak_bound_bytes"], report


def test_attack_scale(archive, bench_json):
    report, checks, payload = run_attack_scale(smoke=False)
    archive("attack_scale", report)
    bench_json.update(payload)
    _assert_acceptance(checks, report)


if __name__ == "__main__":
    smoke_mode = "--smoke" in sys.argv[1:]
    report, checks, payload = run_attack_scale(smoke=smoke_mode)
    print(report)
    emit_bench_json("attack_scale", payload)
    _assert_acceptance(checks, report)
