"""Defended-round throughput: batched UpdateBatch path vs materialised.

Not a paper table — this benchmarks the *defended* server fast path at
production round size (1000 sampled clients, Krum aggregation plus a
NormBound update filter): the configuration class behind the paper's
headline attack-vs-defense experiments (Tables 3-4), and the one that
used to force the batch engine to materialise per-client
``ClientUpdate`` lists.

Both measured variants run the batched *training* half identically;
they differ only in the server hand-off:

* **batched** — the shipping path: the round stays an
  :class:`~repro.federated.UpdateBatch`; the filter runs via
  ``filter_batch`` and Krum via grouped ``aggregate_stacks`` kernels.
* **materialised** — the reference fallback, forced by wrapping the
  filter in a plain function (no ``filter_batch``): per-client
  updates are rebuilt, the filter walks them one by one, and the
  server groups gradients per item in Python dicts.

The headline scenario is the pure defended round (the ``>= 3x``
acceptance floor); a second scenario adds an active PIECK-UEA attack
and is recorded alongside — its full-round ratio is structurally
smaller because the attacker's own (engine-independent) mining and
inner-optimisation cost rides on both variants.

Acceptance: the batched defended path must be >= 3x faster in the
headline scenario, produce bit-identical results, and must not have
fallen back to materialisation silently
(``Server.materialized_rounds == 0``) — the regression this CI smoke
exists to catch.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_defended_throughput.py -s
    PYTHONPATH=src python benchmarks/bench_defended_throughput.py   # standalone
"""

from __future__ import annotations

import time

import numpy as np

from _harness import emit_bench_json
from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.datasets.synthetic import generate_longtail_dataset
from repro.defenses.robust import NormBoundFilter
from repro.federated.simulation import FederatedSimulation

USERS_PER_ROUND = 1000
NUM_USERS, NUM_ITEMS, NUM_INTERACTIONS = 4_000, 6_000, 48_000
SPEEDUP_FLOOR = 3.0

#: (name, attacked, floor-enforced) measurement scenarios.
SCENARIOS = (("defended", False, True), ("defended+attacked", True, False))


def _config(attacked: bool) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom"),
        model=ModelConfig(kind="mf", embedding_dim=16),
        train=TrainConfig(rounds=8, users_per_round=USERS_PER_ROUND, lr=1.0),
        attack=(
            AttackConfig(name="pieck_uea", malicious_ratio=0.05)
            if attacked
            else None
        ),
        defense=DefenseConfig(name="krum"),
    )


def _build(dataset, *, attacked: bool, materialised: bool) -> FederatedSimulation:
    sim = FederatedSimulation(_config(attacked), dataset=dataset, engine="batch")
    norm_filter = NormBoundFilter(0.0)
    if materialised:
        # A bare function exposes no ``filter_batch``, forcing the
        # server's materialised reference path for the whole round.
        sim.server.update_filter = lambda updates: norm_filter(updates)
    else:
        sim.server.update_filter = norm_filter
    return sim


def _measure(sim: FederatedSimulation, rounds: int) -> float:
    """Median seconds/round over ``rounds`` measured rounds (one warm-up)."""
    samples = []
    for round_idx in range(rounds + 1):
        started = time.perf_counter()
        sim.run_round(round_idx)
        samples.append(time.perf_counter() - started)
    return float(np.median(samples[1:]))


def _parity_check(dataset) -> None:
    """Both hand-off paths must agree bit for bit before being timed."""
    batched = _build(dataset, attacked=True, materialised=False)
    reference = _build(dataset, attacked=True, materialised=True)
    for round_idx in range(3):
        batched.run_round(round_idx)
        reference.run_round(round_idx)
    assert np.array_equal(
        batched.model.item_embeddings, reference.model.item_embeddings
    )
    assert batched.server.materialized_rounds == 0
    assert reference.server.materialized_rounds == 3


def run_defended_throughput() -> tuple[str, dict[str, float], dict]:
    """Benchmark both defended hand-off paths in every scenario.

    Returns ``(report, speedups, json_payload)``.
    """
    dataset = generate_longtail_dataset(
        NUM_USERS, NUM_ITEMS, NUM_INTERACTIONS, seed=0, name="defended-sparse"
    )
    _parity_check(dataset)
    lines = [
        f"Defended-round throughput at {USERS_PER_ROUND} sampled clients/round "
        "(MF dim=16, Krum + NormBound)",
        f"{'scenario':<19} {'path':<13} {'ms/round':>9} {'rounds/sec':>11} {'speedup':>8}",
    ]
    speedups: dict[str, float] = {}
    scenarios_payload: dict[str, dict] = {}
    for name, attacked, _ in SCENARIOS:
        materialised_spr = _measure(
            _build(dataset, attacked=attacked, materialised=True), rounds=5
        )
        batched_sim = _build(dataset, attacked=attacked, materialised=False)
        batched_spr = _measure(batched_sim, rounds=12)
        if batched_sim.server.materialized_rounds:
            raise AssertionError(
                "batched defended round silently fell back to materialised "
                f"updates ({batched_sim.server.materialized_rounds} rounds)"
            )
        speedups[name] = materialised_spr / batched_spr
        scenarios_payload[name] = {
            "attack": "pieck_uea@0.05" if attacked else "none",
            "materialised_seconds_per_round": materialised_spr,
            "batched_seconds_per_round": batched_spr,
            "batched_rounds_per_sec": 1.0 / batched_spr,
            "speedup": speedups[name],
        }
        for path, spr in (
            ("materialised", materialised_spr),
            ("batched", batched_spr),
        ):
            lines.append(
                f"{name:<19} {path:<13} {spr * 1e3:>9.1f} {1.0 / spr:>11.2f} "
                f"{materialised_spr / spr:>7.2f}x"
            )
    lines.append(
        f"acceptance: defended speedup {speedups['defended']:.2f}x "
        f"(floor {SPEEDUP_FLOOR:.1f}x), no silent materialisation"
    )
    payload = {
        "config": {
            "model": "mf",
            "embedding_dim": 16,
            "users_per_round": USERS_PER_ROUND,
            "num_users": NUM_USERS,
            "num_items": NUM_ITEMS,
            "num_interactions": NUM_INTERACTIONS,
            "defense": "krum + norm_bound filter",
        },
        "scenarios": scenarios_payload,
        "materialized_rounds_on_batched_path": 0,
    }
    return "\n".join(lines), speedups, payload


def test_defended_throughput(archive, bench_json):
    report, speedups, payload = run_defended_throughput()
    archive("defended_throughput", report)
    bench_json.update(payload)
    assert speedups["defended"] >= SPEEDUP_FLOOR, report


if __name__ == "__main__":
    report, speedups, payload = run_defended_throughput()
    print(report)
    emit_bench_json("defended_throughput", payload)
    assert speedups["defended"] >= SPEEDUP_FLOOR, (
        f"defended speedup {speedups['defended']:.2f}x below floor"
    )
