"""Table XI: BPR training loss (supplementary E)."""

from repro.experiments import table11_bpr_loss

from benchmarks.conftest import run_once


def _er(cell: str) -> float:
    return float(cell.split("/")[0])


def test_table11_bpr_loss(benchmark, archive):
    table = run_once(benchmark, table11_bpr_loss)
    archive("table11_bpr", table)
    rows = {(row[0], row[1]): row[2:] for row in table.rows}
    # Reproduction checks: attacks transfer to BPR; the defense holds.
    assert _er(rows[("PIECK-UEA", "NoDefense")][1]) > _er(
        rows[("NoAttack", "NoDefense")][1]
    )
    assert _er(rows[("PIECK-UEA", "ours")][1]) < 20.0
