"""Fig. 4: popularity ranks of top Δ-Norm items across rounds."""

from repro.experiments import fig4_delta_norm

from benchmarks.conftest import run_once


def test_fig4_delta_norm(benchmark, archive):
    table = run_once(
        benchmark,
        lambda: fig4_delta_norm(probe_rounds=(4, 8, 20, 80), top_k=50),
    )
    archive("fig4_delta_norm", table)
    # Reproduction check: by round 80 the Δ-Norm top-50 is dominated by
    # popular items far beyond their 15% share of the catalogue.
    for row in table.rows:
        late_share = float(row[-1].rstrip("%"))
        assert late_share > 30.0
