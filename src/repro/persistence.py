"""Persistence: save and load experiment results and model state.

A reproduction harness lives or dies by being able to archive runs:
``save_result`` / ``load_result`` serialise a
:class:`repro.federated.SimulationResult` (metrics + history) as JSON,
``save_model`` / ``load_model`` checkpoint a global model's item
embeddings and interaction parameters as a NumPy archive,
``save_checkpoint`` / ``load_checkpoint`` store a *running*
simulation's full mutable state (see
:meth:`repro.federated.simulation.FederatedSimulation.run`'s
``checkpoint_dir``), and ``save_sweep_entry`` / ``load_sweep_entry``
store the sweep orchestrator's content-addressed per-cell cache
entries (see :mod:`repro.experiments.sweep`).

Every writer here is crash-safe: payloads land in a temp file in the
target directory and reach their final name through one atomic
``os.replace``, so a process killed mid-save leaves either the
previous complete file or no file — never a truncated one.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any

import numpy as np

from repro.federated.async_engine import AsyncStats
from repro.federated.faults import FaultStats
from repro.federated.simulation import EvalRecord, SimulationResult
from repro.models.base import RecommenderModel

__all__ = [
    "save_result",
    "load_result",
    "save_model",
    "load_model",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_path",
    "list_checkpoints",
    "latest_checkpoint",
    "prune_checkpoints",
    "save_sweep_entry",
    "load_sweep_entry",
    "CHECKPOINT_VERSION",
]

#: Version tag baked into every simulation checkpoint.  Bump whenever
#: the checkpoint payload layout changes; loading a mismatched version
#: raises instead of silently resuming from incompatible state.
#: v2: the payload gained an ``async_state`` key (the asynchronous
#: engine's virtual clock, event heap and aggregation buffer).
CHECKPOINT_VERSION = "ckpt-v2"

#: Versioned checkpoint filenames: ``checkpoint-r<next_round>.pkl``.
_CHECKPOINT_PREFIX = "checkpoint-r"
#: Pre-retention rolling checkpoint name, honoured on resume only.
_LEGACY_CHECKPOINT = "checkpoint.pkl"


def _replace_into(path: str, write) -> None:
    """Run ``write(tmp_path)`` then atomically rename onto ``path``.

    The temp file lives in the destination directory (same filesystem,
    so the final ``os.replace`` is atomic) and is pid-suffixed so
    concurrent writers never collide on it.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    try:
        write(tmp_path)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def save_result(result: SimulationResult, path: str) -> None:
    """Serialise a simulation result (without item history) to JSON."""
    payload = {
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "targets": result.targets.tolist(),
        "rounds_run": result.rounds_run,
        "seconds_per_round": result.seconds_per_round,
        "history": [
            {
                "round_idx": rec.round_idx,
                "exposure": rec.exposure,
                "hit_ratio": rec.hit_ratio,
            }
            for rec in result.history
        ],
        "fault_stats": result.fault_stats.to_dict(),
        "async_stats": result.async_stats.to_dict(),
    }

    def write(tmp_path: str) -> None:
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2)

    _replace_into(path, write)


def load_result(path: str) -> SimulationResult:
    """Load a simulation result saved by :func:`save_result`."""
    with open(path) as handle:
        payload = json.load(handle)
    return SimulationResult(
        exposure=payload["exposure"],
        hit_ratio=payload["hit_ratio"],
        targets=np.asarray(payload["targets"], dtype=np.int64),
        rounds_run=payload["rounds_run"],
        seconds_per_round=payload.get("seconds_per_round", 0.0),
        history=[
            EvalRecord(rec["round_idx"], rec["exposure"], rec["hit_ratio"])
            for rec in payload["history"]
        ],
        fault_stats=FaultStats.from_dict(payload.get("fault_stats", {})),
        async_stats=AsyncStats.from_dict(payload.get("async_stats", {})),
    )


def save_checkpoint(path: str, payload: dict[str, Any]) -> None:
    """Write one simulation checkpoint atomically (pickle, versioned).

    ``payload`` is the opaque state dict assembled by
    :meth:`FederatedSimulation.checkpoint_payload`; this layer only
    adds the version envelope and the crash-safe write.  A run killed
    mid-checkpoint resumes from the previous complete checkpoint.
    """
    envelope = {"version": CHECKPOINT_VERSION, "payload": payload}

    def write(tmp_path: str) -> None:
        with open(tmp_path, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)

    _replace_into(path, write)


def load_checkpoint(path: str) -> dict[str, Any]:
    """Load a checkpoint saved by :func:`save_checkpoint`.

    Raises ``ValueError`` on a version mismatch or a malformed file —
    resuming from incompatible state must fail loudly, never produce a
    silently divergent run.
    """
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise ValueError(f"{path} is not a simulation checkpoint")
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {version!r} does not match "
            f"{CHECKPOINT_VERSION!r}; re-run from scratch"
        )
    return envelope["payload"]


def checkpoint_path(directory: str, next_round: int) -> str:
    """The versioned checkpoint filename for a round boundary."""
    return os.path.join(directory, f"{_CHECKPOINT_PREFIX}{next_round:06d}.pkl")


def list_checkpoints(directory: str) -> list[tuple[int, str]]:
    """All versioned checkpoints in ``directory``, oldest first.

    Returns ``(next_round, path)`` pairs sorted by round.  Filenames
    that merely look similar (temp files, foreign pickles) are
    ignored rather than misparsed.
    """
    found: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return found
    for name in names:
        if not (name.startswith(_CHECKPOINT_PREFIX) and name.endswith(".pkl")):
            continue
        stem = name[len(_CHECKPOINT_PREFIX) : -len(".pkl")]
        if stem.isdigit():
            found.append((int(stem), os.path.join(directory, name)))
    found.sort()
    return found


def latest_checkpoint(directory: str) -> str | None:
    """Newest resumable checkpoint in ``directory``, or ``None``.

    Versioned checkpoints win (the highest round); a legacy rolling
    ``checkpoint.pkl`` written before retention existed is honoured
    when no versioned file is present.
    """
    versioned = list_checkpoints(directory)
    if versioned:
        return versioned[-1][1]
    legacy = os.path.join(directory, _LEGACY_CHECKPOINT)
    return legacy if os.path.exists(legacy) else None


def prune_checkpoints(directory: str, keep: int) -> list[str]:
    """Delete all but the newest ``keep`` versioned checkpoints.

    Each removal is a single atomic ``os.unlink`` of an older file, so
    the newest checkpoint is never at risk: a crash mid-prune leaves
    extra old files (harmless — resume picks the newest), never fewer
    than ``keep``.  Returns the removed paths.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    removed = []
    for _, path in list_checkpoints(directory)[:-keep]:
        try:
            os.unlink(path)
        except FileNotFoundError:
            continue
        removed.append(path)
    return removed


def save_sweep_entry(path: str, *, key: str, kind: str, values: Any) -> None:
    """Write one sweep-cache entry atomically (write-temp + rename).

    ``values`` must be JSON-serialisable; finite floats round-trip
    bit-exactly through JSON, which is what lets cached table cells be
    byte-identical to freshly computed ones.  The atomic rename means a
    killed sweep never leaves a half-written entry behind — interrupted
    runs resume from whole entries only.
    """
    payload = {"key": key, "kind": kind, "values": values}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)


def load_sweep_entry(path: str) -> dict[str, Any] | None:
    """Load a sweep-cache entry; ``None`` when missing or unreadable.

    Corrupt or truncated entries are treated as cache misses (the cell
    simply recomputes and overwrites them), never as errors.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        # ValueError covers both JSONDecodeError and the
        # UnicodeDecodeError a binary-corrupt entry raises.
        return None
    if not isinstance(payload, dict) or "key" not in payload or "values" not in payload:
        return None
    return payload


def save_model(model: RecommenderModel, path: str) -> None:
    """Checkpoint a global model (item embeddings + interaction params)."""
    arrays = {"item_embeddings": model.item_embeddings}
    for index, param in enumerate(model.interaction_params()):
        arrays[f"param_{index}"] = param
    final_path = path if path.endswith(".npz") else path + ".npz"

    def write(tmp_path: str) -> None:
        # np.savez appends ".npz" unless the name already carries it;
        # the temp name from _replace_into never does, so add it and
        # move the actual output into place under the temp name.
        np.savez(tmp_path + ".npz", **arrays)
        os.replace(tmp_path + ".npz", tmp_path)

    _replace_into(final_path, write)


def load_model(model: RecommenderModel, path: str) -> RecommenderModel:
    """Restore a checkpoint into a structurally matching model in place."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        items = data["item_embeddings"]
        if items.shape != model.item_embeddings.shape:
            raise ValueError(
                f"checkpoint item table {items.shape} does not match model "
                f"{model.item_embeddings.shape}"
            )
        model.item_embeddings[...] = items
        params = model.interaction_params()
        stored = sorted(k for k in data.files if k.startswith("param_"))
        if len(stored) != len(params):
            raise ValueError(
                f"checkpoint has {len(stored)} interaction parameters, "
                f"model expects {len(params)}"
            )
        for key, param in zip(stored, params):
            value = data[key]
            if value.shape != param.shape:
                raise ValueError(f"parameter {key} shape mismatch")
            param[...] = value
    return model
