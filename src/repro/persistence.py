"""Persistence: save and load experiment results and model state.

A reproduction harness lives or dies by being able to archive runs:
``save_result`` / ``load_result`` serialise a
:class:`repro.federated.SimulationResult` (metrics + history) as JSON,
``save_model`` / ``load_model`` checkpoint a global model's item
embeddings and interaction parameters as a NumPy archive, and
``save_sweep_entry`` / ``load_sweep_entry`` store the sweep
orchestrator's content-addressed per-cell cache entries (see
:mod:`repro.experiments.sweep`).
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.federated.simulation import EvalRecord, SimulationResult
from repro.models.base import RecommenderModel

__all__ = [
    "save_result",
    "load_result",
    "save_model",
    "load_model",
    "save_sweep_entry",
    "load_sweep_entry",
]


def save_result(result: SimulationResult, path: str) -> None:
    """Serialise a simulation result (without item history) to JSON."""
    payload = {
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "targets": result.targets.tolist(),
        "rounds_run": result.rounds_run,
        "seconds_per_round": result.seconds_per_round,
        "history": [
            {
                "round_idx": rec.round_idx,
                "exposure": rec.exposure,
                "hit_ratio": rec.hit_ratio,
            }
            for rec in result.history
        ],
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_result(path: str) -> SimulationResult:
    """Load a simulation result saved by :func:`save_result`."""
    with open(path) as handle:
        payload = json.load(handle)
    return SimulationResult(
        exposure=payload["exposure"],
        hit_ratio=payload["hit_ratio"],
        targets=np.asarray(payload["targets"], dtype=np.int64),
        rounds_run=payload["rounds_run"],
        seconds_per_round=payload.get("seconds_per_round", 0.0),
        history=[
            EvalRecord(rec["round_idx"], rec["exposure"], rec["hit_ratio"])
            for rec in payload["history"]
        ],
    )


def save_sweep_entry(path: str, *, key: str, kind: str, values: Any) -> None:
    """Write one sweep-cache entry atomically (write-temp + rename).

    ``values`` must be JSON-serialisable; finite floats round-trip
    bit-exactly through JSON, which is what lets cached table cells be
    byte-identical to freshly computed ones.  The atomic rename means a
    killed sweep never leaves a half-written entry behind — interrupted
    runs resume from whole entries only.
    """
    payload = {"key": key, "kind": kind, "values": values}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)


def load_sweep_entry(path: str) -> dict[str, Any] | None:
    """Load a sweep-cache entry; ``None`` when missing or unreadable.

    Corrupt or truncated entries are treated as cache misses (the cell
    simply recomputes and overwrites them), never as errors.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        # ValueError covers both JSONDecodeError and the
        # UnicodeDecodeError a binary-corrupt entry raises.
        return None
    if not isinstance(payload, dict) or "key" not in payload or "values" not in payload:
        return None
    return payload


def save_model(model: RecommenderModel, path: str) -> None:
    """Checkpoint a global model (item embeddings + interaction params)."""
    arrays = {"item_embeddings": model.item_embeddings}
    for index, param in enumerate(model.interaction_params()):
        arrays[f"param_{index}"] = param
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **arrays)


def load_model(model: RecommenderModel, path: str) -> RecommenderModel:
    """Restore a checkpoint into a structurally matching model in place."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        items = data["item_embeddings"]
        if items.shape != model.item_embeddings.shape:
            raise ValueError(
                f"checkpoint item table {items.shape} does not match model "
                f"{model.item_embeddings.shape}"
            )
        model.item_embeddings[...] = items
        params = model.interaction_params()
        stored = sorted(k for k in data.files if k.startswith("param_"))
        if len(stored) != len(params):
            raise ValueError(
                f"checkpoint has {len(stored)} interaction parameters, "
                f"model expects {len(params)}"
            )
        for key, param in zip(stored, params):
            value = data[key]
            if value.shape != param.shape:
                raise ValueError(f"parameter {key} shape mismatch")
            param[...] = value
    return model
