"""Persistence: save and load experiment results and model state.

A reproduction harness lives or dies by being able to archive runs:
``save_result`` / ``load_result`` serialise a
:class:`repro.federated.SimulationResult` (metrics + history) as JSON,
and ``save_model`` / ``load_model`` checkpoint a global model's item
embeddings and interaction parameters as a NumPy archive.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.federated.simulation import EvalRecord, SimulationResult
from repro.models.base import RecommenderModel

__all__ = ["save_result", "load_result", "save_model", "load_model"]


def save_result(result: SimulationResult, path: str) -> None:
    """Serialise a simulation result (without item history) to JSON."""
    payload = {
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "targets": result.targets.tolist(),
        "rounds_run": result.rounds_run,
        "seconds_per_round": result.seconds_per_round,
        "history": [
            {
                "round_idx": rec.round_idx,
                "exposure": rec.exposure,
                "hit_ratio": rec.hit_ratio,
            }
            for rec in result.history
        ],
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_result(path: str) -> SimulationResult:
    """Load a simulation result saved by :func:`save_result`."""
    with open(path) as handle:
        payload = json.load(handle)
    return SimulationResult(
        exposure=payload["exposure"],
        hit_ratio=payload["hit_ratio"],
        targets=np.asarray(payload["targets"], dtype=np.int64),
        rounds_run=payload["rounds_run"],
        seconds_per_round=payload.get("seconds_per_round", 0.0),
        history=[
            EvalRecord(rec["round_idx"], rec["exposure"], rec["hit_ratio"])
            for rec in payload["history"]
        ],
    )


def save_model(model: RecommenderModel, path: str) -> None:
    """Checkpoint a global model (item embeddings + interaction params)."""
    arrays = {"item_embeddings": model.item_embeddings}
    for index, param in enumerate(model.interaction_params()):
        arrays[f"param_{index}"] = param
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **arrays)


def load_model(model: RecommenderModel, path: str) -> RecommenderModel:
    """Restore a checkpoint into a structurally matching model in place."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        items = data["item_embeddings"]
        if items.shape != model.item_embeddings.shape:
            raise ValueError(
                f"checkpoint item table {items.shape} does not match model "
                f"{model.item_embeddings.shape}"
            )
        model.item_embeddings[...] = items
        params = model.interaction_params()
        stored = sorted(k for k in data.files if k.startswith("param_"))
        if len(stored) != len(params):
            raise ValueError(
                f"checkpoint has {len(stored)} interaction parameters, "
                f"model expects {len(params)}"
            )
        for key, param in zip(stored, params):
            value = data[key]
            if value.shape != param.shape:
                raise ValueError(f"parameter {key} shape mismatch")
            param[...] = value
    return model
