"""Persistence: save and load experiment results and model state.

A reproduction harness lives or dies by being able to archive runs:
``save_result`` / ``load_result`` serialise a
:class:`repro.federated.SimulationResult` (metrics + history) as JSON,
``save_model`` / ``load_model`` checkpoint a global model's item
embeddings and interaction parameters as a NumPy archive,
``save_checkpoint`` / ``load_checkpoint`` store a *running*
simulation's full mutable state (see
:meth:`repro.federated.simulation.FederatedSimulation.run`'s
``checkpoint_dir``), and ``save_sweep_entry`` / ``load_sweep_entry``
store the sweep orchestrator's content-addressed per-cell cache
entries (see :mod:`repro.experiments.sweep`).

Every writer here is crash-safe: payloads land in a temp file in the
target directory and reach their final name through one atomic
``os.replace``, so a process killed mid-save leaves either the
previous complete file or no file — never a truncated one.

On top of crash-safe *writes*, this module provides end-to-end
*read* integrity: every sweep entry, checkpoint and result JSON
carries a sha256 digest of its own payload, written atomically with
the data.  Loaders verify the digest on read and **quarantine** files
that fail it (atomically moved aside to ``<name>.quarantined``, so the
corruption specimen survives for inspection while the loader reports a
miss or a structured :class:`IntegrityError` instead of silently
trusting flipped bits).  Files written before the digest existed are
still readable ("legacy") — integrity is additive, never a forced
cache invalidation.  ``fsck_paths`` (surfaced as ``repro fsck``) walks
a tree and reports the verified / legacy / corrupt split.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.federated.async_engine import AsyncStats
from repro.federated.faults import FaultStats
from repro.federated.simulation import EvalRecord, SimulationResult
from repro.models.base import RecommenderModel

__all__ = [
    "IntegrityError",
    "FsckReport",
    "fsck_paths",
    "json_digest",
    "verify_json_digest",
    "save_json_digested",
    "quarantine_file",
    "save_result",
    "load_result",
    "save_model",
    "load_model",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_path",
    "list_checkpoints",
    "latest_checkpoint",
    "resumable_checkpoints",
    "prune_checkpoints",
    "save_sweep_entry",
    "load_sweep_entry",
    "read_sweep_entry",
    "CHECKPOINT_VERSION",
    "QUARANTINE_SUFFIX",
]

#: Version tag baked into every simulation checkpoint.  Bump whenever
#: the checkpoint payload layout changes; loading a mismatched version
#: raises instead of silently resuming from incompatible state.
#: v2: the payload gained an ``async_state`` key (the asynchronous
#: engine's virtual clock, event heap and aggregation buffer).
#: v3: the envelope stores the payload as pre-pickled *bytes* plus a
#: sha256 digest of exactly those bytes, so torn or bit-flipped
#: checkpoints are detected (and quarantined) instead of resumed from.
CHECKPOINT_VERSION = "ckpt-v3"

#: Checkpoint versions :func:`load_checkpoint` still understands.
#: ``ckpt-v2`` predates the digest: its payload is stored as a live
#: object and loads without verification ("legacy digestless").
_COMPAT_CHECKPOINT_VERSIONS = frozenset({"ckpt-v2", CHECKPOINT_VERSION})

#: Suffix appended (atomically, via ``os.replace``) to files that fail
#: their integrity check.  A quarantined file is out of every loader's
#: path — the cell re-executes, the resume falls back one checkpoint —
#: but the corrupt bytes survive for inspection.
QUARANTINE_SUFFIX = ".quarantined"


class IntegrityError(ValueError):
    """A persisted payload failed its digest or is torn.

    Distinct from the plain ``ValueError`` raised for *foreign* files
    (wrong structure, incompatible version): an ``IntegrityError``
    means the file is ours but its bytes are no longer the bytes that
    were written.  ``quarantined_to`` carries the path the specimen
    was moved to, or ``None`` when quarantining was disabled or lost a
    race with another process.
    """

    def __init__(self, message: str, *, quarantined_to: str | None = None):
        super().__init__(message)
        self.quarantined_to = quarantined_to


def quarantine_file(path: str) -> str | None:
    """Atomically move a corrupt file aside; return its new path.

    The move is a single ``os.replace`` to ``<path>.quarantined`` —
    crash-safe, and idempotent under concurrency: when two workers
    detect the same corrupt entry, one wins the rename and the other
    gets ``None`` (the file is already gone from the hot path, which
    is all either of them needs).
    """
    target = path + QUARANTINE_SUFFIX
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


# ----------------------------------------------------------------------
# Digested JSON: the shared integrity format for every JSON artifact
# ----------------------------------------------------------------------

def json_digest(record: Mapping[str, Any]) -> str:
    """sha256 of a JSON object's canonical form, minus its own digest.

    The digest covers the *semantic* content — the canonical compact
    ``sort_keys`` serialisation of every field except ``sha256``
    itself — so whitespace or key order on disk never matter, while
    any change to any value does.  Finite floats serialise via
    ``repr`` and round-trip bit-exactly, so recomputing the digest
    from a parsed file reproduces the writer's digest.
    """
    body = {key: value for key, value in record.items() if key != "sha256"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def verify_json_digest(record: Mapping[str, Any]) -> bool:
    """True when ``record["sha256"]`` matches its recomputed digest."""
    return record.get("sha256") == json_digest(record)


def save_json_digested(
    path: str, record: dict[str, Any], *, indent: int | None = None
) -> None:
    """Write a JSON object with its sha256 digest, atomically.

    The digest field and the data land in one ``os.replace``, so no
    observer ever sees data without its digest (or a torn mix of old
    and new).  ``record`` must not already carry a ``sha256`` key.
    """
    payload = dict(record)
    payload["sha256"] = json_digest(payload)

    def write(tmp_path: str) -> None:
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=indent is not None)
            if indent is not None:
                handle.write("\n")

    _replace_into(path, write)

#: Versioned checkpoint filenames: ``checkpoint-r<next_round>.pkl``.
_CHECKPOINT_PREFIX = "checkpoint-r"
#: Pre-retention rolling checkpoint name, honoured on resume only.
_LEGACY_CHECKPOINT = "checkpoint.pkl"


def _replace_into(path: str, write) -> None:
    """Run ``write(tmp_path)`` then atomically rename onto ``path``.

    The temp file lives in the destination directory (same filesystem,
    so the final ``os.replace`` is atomic) and is pid-suffixed so
    concurrent writers never collide on it.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    try:
        write(tmp_path)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def save_result(result: SimulationResult, path: str) -> None:
    """Serialise a simulation result (without item history) to JSON.

    The payload carries its own sha256 digest (see
    :func:`save_json_digested`) so :func:`load_result` can prove the
    file still holds the bytes that were written.
    """
    payload = {
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "targets": result.targets.tolist(),
        "rounds_run": result.rounds_run,
        "seconds_per_round": result.seconds_per_round,
        "history": [
            {
                "round_idx": rec.round_idx,
                "exposure": rec.exposure,
                "hit_ratio": rec.hit_ratio,
            }
            for rec in result.history
        ],
        "fault_stats": result.fault_stats.to_dict(),
        "async_stats": result.async_stats.to_dict(),
    }
    save_json_digested(path, payload, indent=2)


def load_result(path: str, *, quarantine: bool = True) -> SimulationResult:
    """Load a simulation result saved by :func:`save_result`.

    Verify-on-read: a torn file or a digest mismatch raises
    :class:`IntegrityError` (after quarantining the specimen unless
    ``quarantine`` is false) — corrupt metrics must never load as if
    they were measurements.  Digestless files from before the
    integrity layer still load.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, ValueError):
        moved = quarantine_file(path) if quarantine else None
        raise IntegrityError(
            f"{path} is torn or undecodable", quarantined_to=moved
        ) from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a simulation result")
    if "sha256" in payload and not verify_json_digest(payload):
        moved = quarantine_file(path) if quarantine else None
        raise IntegrityError(
            f"{path} failed its sha256 digest check", quarantined_to=moved
        )
    return SimulationResult(
        exposure=payload["exposure"],
        hit_ratio=payload["hit_ratio"],
        targets=np.asarray(payload["targets"], dtype=np.int64),
        rounds_run=payload["rounds_run"],
        seconds_per_round=payload.get("seconds_per_round", 0.0),
        history=[
            EvalRecord(rec["round_idx"], rec["exposure"], rec["hit_ratio"])
            for rec in payload["history"]
        ],
        fault_stats=FaultStats.from_dict(payload.get("fault_stats", {})),
        async_stats=AsyncStats.from_dict(payload.get("async_stats", {})),
    )


def save_checkpoint(path: str, payload: dict[str, Any]) -> None:
    """Write one simulation checkpoint atomically (pickle, versioned).

    ``payload`` is the opaque state dict assembled by
    :meth:`FederatedSimulation.checkpoint_payload`; this layer adds
    the version envelope, a sha256 digest of the exact payload bytes,
    and the crash-safe write.  A run killed mid-checkpoint resumes
    from the previous complete checkpoint; a checkpoint whose bytes
    rot after the write fails its digest on load instead of silently
    resuming a divergent run.
    """
    payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "version": CHECKPOINT_VERSION,
        "sha256": hashlib.sha256(payload_bytes).hexdigest(),
        "payload": payload_bytes,
    }

    def write(tmp_path: str) -> None:
        with open(tmp_path, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)

    _replace_into(path, write)


def load_checkpoint(path: str, *, quarantine: bool = True) -> dict[str, Any]:
    """Load a checkpoint saved by :func:`save_checkpoint`.

    Verify-on-read: torn pickles and digest mismatches raise
    :class:`IntegrityError` after moving the specimen aside (unless
    ``quarantine`` is false), so the resume path can fall back to the
    previous checkpoint (see
    :meth:`~repro.federated.simulation.FederatedSimulation.run`)
    instead of crashing or resuming from flipped bits.  Foreign files
    and incompatible versions raise a plain ``ValueError`` and are
    left untouched — an unreadable-by-design file is not corruption.
    Legacy ``ckpt-v2`` checkpoints (digestless) still load.
    """
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except FileNotFoundError:
        raise
    except Exception:  # noqa: BLE001 — a torn/bit-flipped pickle can
        # raise nearly anything (EOFError, UnpicklingError, Attribute-
        # Error from a corrupted global reference, ...).
        moved = quarantine_file(path) if quarantine else None
        raise IntegrityError(
            f"{path} is a torn or undecodable checkpoint",
            quarantined_to=moved,
        ) from None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise ValueError(f"{path} is not a simulation checkpoint")
    version = envelope.get("version")
    if version not in _COMPAT_CHECKPOINT_VERSIONS:
        raise ValueError(
            f"checkpoint version {version!r} does not match "
            f"{CHECKPOINT_VERSION!r}; re-run from scratch"
        )
    if version == CHECKPOINT_VERSION:
        payload_bytes = envelope["payload"]
        digest = envelope.get("sha256")
        if not isinstance(payload_bytes, bytes) or (
            digest != hashlib.sha256(payload_bytes).hexdigest()
        ):
            moved = quarantine_file(path) if quarantine else None
            raise IntegrityError(
                f"{path} failed its sha256 digest check",
                quarantined_to=moved,
            )
        return pickle.loads(payload_bytes)
    # Legacy digestless envelope: the payload is a live object.
    return envelope["payload"]


def checkpoint_path(directory: str, next_round: int) -> str:
    """The versioned checkpoint filename for a round boundary."""
    return os.path.join(directory, f"{_CHECKPOINT_PREFIX}{next_round:06d}.pkl")


def list_checkpoints(directory: str) -> list[tuple[int, str]]:
    """All versioned checkpoints in ``directory``, oldest first.

    Returns ``(next_round, path)`` pairs sorted by round.  Filenames
    that merely look similar (temp files, foreign pickles) are
    ignored rather than misparsed.
    """
    found: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return found
    for name in names:
        if not (name.startswith(_CHECKPOINT_PREFIX) and name.endswith(".pkl")):
            continue
        stem = name[len(_CHECKPOINT_PREFIX) : -len(".pkl")]
        if stem.isdigit():
            found.append((int(stem), os.path.join(directory, name)))
    found.sort()
    return found


def latest_checkpoint(directory: str) -> str | None:
    """Newest resumable checkpoint in ``directory``, or ``None``.

    Versioned checkpoints win (the highest round); a legacy rolling
    ``checkpoint.pkl`` written before retention existed is honoured
    when no versioned file is present.
    """
    versioned = list_checkpoints(directory)
    if versioned:
        return versioned[-1][1]
    legacy = os.path.join(directory, _LEGACY_CHECKPOINT)
    return legacy if os.path.exists(legacy) else None


def resumable_checkpoints(directory: str) -> list[str]:
    """Every resume candidate in ``directory``, best first.

    Versioned checkpoints newest-first, then the legacy rolling
    ``checkpoint.pkl`` when present.  The resume path walks this list
    so a quarantined (corrupt) newest checkpoint degrades to the
    previous survivor instead of aborting the run.
    """
    candidates = [path for _, path in reversed(list_checkpoints(directory))]
    legacy = os.path.join(directory, _LEGACY_CHECKPOINT)
    if os.path.exists(legacy):
        candidates.append(legacy)
    return candidates


def prune_checkpoints(directory: str, keep: int) -> list[str]:
    """Delete all but the newest ``keep`` versioned checkpoints.

    Each removal is a single atomic ``os.unlink`` of an older file, so
    the newest checkpoint is never at risk: a crash mid-prune leaves
    extra old files (harmless — resume picks the newest), never fewer
    than ``keep``.  Returns the removed paths.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    removed = []
    for _, path in list_checkpoints(directory)[:-keep]:
        try:
            os.unlink(path)
        except FileNotFoundError:
            continue
        removed.append(path)
    return removed


def save_sweep_entry(path: str, *, key: str, kind: str, values: Any) -> None:
    """Write one sweep-cache entry atomically (write-temp + rename).

    ``values`` must be JSON-serialisable; finite floats round-trip
    bit-exactly through JSON, which is what lets cached table cells be
    byte-identical to freshly computed ones.  The atomic rename means a
    killed sweep never leaves a half-written entry behind — interrupted
    runs resume from whole entries only.  The entry carries a sha256
    digest of its own payload, so bit rot *after* the write is caught
    on the next read (see :func:`read_sweep_entry`).
    """
    save_json_digested(path, {"key": key, "kind": kind, "values": values})


def read_sweep_entry(
    path: str, *, quarantine: bool = True
) -> tuple[dict[str, Any] | None, str]:
    """Load and verify one sweep-cache entry; returns ``(entry, status)``.

    ``status`` is one of:

    ``"verified"``
        Digest present and matching; ``entry`` is trustworthy.
    ``"legacy"``
        Structurally valid entry from before the digest existed;
        loaded, but unverifiable.
    ``"missing"``
        No file; ``entry`` is ``None``.
    ``"foreign"``
        Valid JSON that is not a sweep entry (wrong structure) —
        treated as a miss but never quarantined: this loader does not
        move files it cannot positively identify as its own rot.
    ``"quarantined"``
        Torn/undecodable JSON, or a digest mismatch: the file was
        atomically moved aside (unless ``quarantine`` is false) and
        ``entry`` is ``None``, so the caller re-executes the cell.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None, "missing"
    except (OSError, ValueError):
        # ValueError covers both JSONDecodeError and the
        # UnicodeDecodeError a binary-corrupt entry raises.  Our
        # writer is atomic, so an unparseable entry means external
        # corruption — quarantine the specimen.
        if quarantine:
            quarantine_file(path)
        return None, "quarantined"
    if not isinstance(payload, dict) or "key" not in payload or "values" not in payload:
        return None, "foreign"
    if "sha256" not in payload:
        return payload, "legacy"
    if not verify_json_digest(payload):
        if quarantine:
            quarantine_file(path)
        return None, "quarantined"
    return payload, "verified"


def load_sweep_entry(path: str) -> dict[str, Any] | None:
    """Load a sweep-cache entry; ``None`` when missing or unreadable.

    Corrupt or truncated entries are quarantined and treated as cache
    misses (the cell simply recomputes and rewrites them), never as
    errors.  The returned dict is the semantic entry (``key`` /
    ``kind`` / ``values``) without the on-disk digest field.
    """
    entry, _ = read_sweep_entry(path)
    if entry is not None:
        entry = {k: v for k, v in entry.items() if k != "sha256"}
    return entry


def save_model(model: RecommenderModel, path: str) -> None:
    """Checkpoint a global model (item embeddings + interaction params)."""
    arrays = {"item_embeddings": model.item_embeddings}
    for index, param in enumerate(model.interaction_params()):
        arrays[f"param_{index}"] = param
    final_path = path if path.endswith(".npz") else path + ".npz"

    def write(tmp_path: str) -> None:
        # np.savez appends ".npz" unless the name already carries it;
        # the temp name from _replace_into never does, so add it and
        # move the actual output into place under the temp name.
        np.savez(tmp_path + ".npz", **arrays)
        os.replace(tmp_path + ".npz", tmp_path)

    _replace_into(final_path, write)


def load_model(model: RecommenderModel, path: str) -> RecommenderModel:
    """Restore a checkpoint into a structurally matching model in place."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        items = data["item_embeddings"]
        if items.shape != model.item_embeddings.shape:
            raise ValueError(
                f"checkpoint item table {items.shape} does not match model "
                f"{model.item_embeddings.shape}"
            )
        model.item_embeddings[...] = items
        params = model.interaction_params()
        stored = sorted(k for k in data.files if k.startswith("param_"))
        if len(stored) != len(params):
            raise ValueError(
                f"checkpoint has {len(stored)} interaction parameters, "
                f"model expects {len(params)}"
            )
        for key, param in zip(stored, params):
            value = data[key]
            if value.shape != param.shape:
                raise ValueError(f"parameter {key} shape mismatch")
            param[...] = value
    return model


# ----------------------------------------------------------------------
# fsck: offline integrity audit of a cache / checkpoint / results tree
# ----------------------------------------------------------------------

@dataclass
class FsckReport:
    """Counts from one :func:`fsck_paths` walk.

    ``corrupt`` drives the exit code of ``repro fsck``: a tree is
    *clean* iff nothing failed verification.  ``repaired`` counts the
    corrupt files moved aside under ``repair=True`` (a subset of
    ``corrupt``); ``quarantined_found`` counts pre-existing
    ``.quarantined`` specimens from earlier verify-on-read hits.
    """

    scanned: int = 0
    verified: int = 0
    legacy: int = 0
    corrupt: int = 0
    repaired: int = 0
    quarantined_found: int = 0
    leases: int = 0
    skipped: int = 0
    corrupt_paths: list[str] = field(default_factory=list)
    #: Shared-memory segments whose creating process is dead (left
    #: behind by a SIGKILLed worker); they hold tmpfs pages until
    #: unlinked.  Only ``repro_shm_*`` names are ever considered.
    shm_orphans: int = 0
    #: Orphans unlinked under ``repair=True`` (subset of ``shm_orphans``).
    shm_unlinked: int = 0
    shm_orphan_names: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.corrupt == 0 and self.shm_orphans == self.shm_unlinked

    def summary(self) -> str:
        line = (
            f"{self.scanned} files: {self.verified} verified, "
            f"{self.legacy} legacy (digestless), {self.corrupt} corrupt"
        )
        if self.repaired:
            line += f" ({self.repaired} moved to *{QUARANTINE_SUFFIX})"
        if self.quarantined_found:
            line += f", {self.quarantined_found} previously quarantined"
        if self.leases:
            line += f", {self.leases} lease files"
        if self.skipped:
            line += f", {self.skipped} skipped"
        if self.shm_orphans:
            line += (
                f"; {self.shm_orphans} orphaned shm segments"
                f" ({self.shm_unlinked} unlinked)"
            )
        return line


def _iter_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for directory, _, names in os.walk(root):
        for name in sorted(names):
            yield os.path.join(directory, name)


def _fsck_json(path: str) -> str:
    """Classify one JSON artifact: verified / legacy / corrupt / skipped."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return "corrupt"
    if not isinstance(payload, dict):
        return "skipped"
    if "sha256" in payload:
        return "verified" if verify_json_digest(payload) else "corrupt"
    known = (
        {"key", "values"} <= set(payload)  # sweep entry
        or {"exposure", "hit_ratio", "rounds_run"} <= set(payload)  # result
        or "bench" in payload  # BENCH_*.json
    )
    return "legacy" if known else "skipped"


def _fsck_checkpoint(path: str) -> str:
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except Exception:  # noqa: BLE001 — torn pickle
        return "corrupt"
    if not isinstance(envelope, dict) or "payload" not in envelope:
        return "skipped"
    version = envelope.get("version")
    if version == CHECKPOINT_VERSION:
        payload_bytes = envelope.get("payload")
        digest = envelope.get("sha256")
        ok = isinstance(payload_bytes, bytes) and digest == hashlib.sha256(
            payload_bytes
        ).hexdigest()
        return "verified" if ok else "corrupt"
    if version in _COMPAT_CHECKPOINT_VERSIONS:
        return "legacy"
    return "skipped"


def _fsck_shm(report: FsckReport, *, repair: bool) -> None:
    """Account for orphaned shared-memory segments (dead creators).

    A SIGKILLed round worker or sweep process cannot run its unlink
    finalizer, so its ``/dev/shm/repro_shm_*`` segments outlive it and
    pin tmpfs pages.  The scan is manifest-free and name-driven: only
    segments carrying this library's prefix (which embeds the creator
    pid) are considered, and only those whose creator is dead are
    orphans — segments of live processes and foreign names are never
    touched.  With ``repair=True`` every orphan is unlinked.
    """
    from repro.federated.shards import orphaned_segments, unlink_segment

    for record in orphaned_segments():
        report.shm_orphans += 1
        report.shm_orphan_names.append(record["name"])
        if repair and unlink_segment(record["name"]):
            report.shm_unlinked += 1


def fsck_paths(root: str, *, repair: bool = False) -> FsckReport:
    """Walk a tree and verify every artifact this module knows how to.

    Sweep-cache entries, result JSONs and ``BENCH_*.json`` files are
    verified against their embedded sha256; checkpoints against the
    digest of their payload bytes.  Digestless-but-recognised files
    count as *legacy*; files this harness never wrote (or cannot
    verify, like ``.npz`` model archives) are *skipped*, never
    flagged.  With ``repair=True`` every corrupt file is atomically
    quarantined (``*.quarantined``) so subsequent sweeps and resumes
    re-execute instead of tripping on it; fsck itself never mutates
    anything else.
    """
    if not os.path.exists(root):
        raise FileNotFoundError(root)
    report = FsckReport()
    _fsck_shm(report, repair=repair)
    for path in _iter_files(root):
        name = os.path.basename(path)
        report.scanned += 1
        if name.endswith(QUARANTINE_SUFFIX):
            report.quarantined_found += 1
            continue
        if name.endswith(".lease"):
            report.leases += 1
            continue
        if name.endswith(".tmp"):
            report.skipped += 1
            continue
        if name.endswith(".json"):
            status = _fsck_json(path)
        elif name.endswith(".pkl") and name.startswith("checkpoint"):
            status = _fsck_checkpoint(path)
        else:
            status = "skipped"
        if status == "corrupt":
            report.corrupt += 1
            report.corrupt_paths.append(path)
            if repair and quarantine_file(path) is not None:
                report.repaired += 1
        elif status == "verified":
            report.verified += 1
        elif status == "legacy":
            report.legacy += 1
        else:
            report.skipped += 1
    return report
