"""Kernel dispatch layer: the repro hot kernels behind a backend switch.

PRs 1–5 funnelled every hot path into a handful of NumPy kernels; this
package puts those kernels behind a ``kernels="numpy" | "native"``
switch (``TrainConfig.kernels``, env override ``REPRO_KERNELS``) so the
same call sites can run either the NumPy reference
(:mod:`repro.kernels._numpy`) or the compiled C port
(:mod:`repro.kernels._native`).  Both backends are bit-identical by
contract — the differential parity suite (``tests/test_kernels.py``)
and the full tier-1 suite under ``REPRO_KERNELS=native`` enforce it —
so backend choice is a pure throughput knob: sweep cache keys exclude
it, and results may never depend on it.

Dispatch is dynamically scoped: :func:`use` pushes a backend for the
duration of a ``with`` block (the simulation wraps each round in one),
and :func:`active` resolves the current backend — the innermost
:func:`use`, else the ``REPRO_KERNELS`` environment default, else
numpy.  Requesting ``"native"`` when the toolchain is missing raises
:class:`NativeKernelsUnavailable`; it never silently downgrades.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from repro.kernels._native import (
    NativeBackend,
    NativeKernelsUnavailable,
    load_native_backend,
)
from repro.kernels._numpy import NumpyKernels

__all__ = [
    "BACKENDS",
    "DISPATCH_TABLE",
    "NativeKernelsUnavailable",
    "active",
    "pairwise_sq_dists",
    "resolve",
    "row_diff_norms",
    "scatter_sum",
    "segment_div",
    "segment_sums",
    "stacked_step_gradients",
    "use",
]

BACKENDS = ("numpy", "native")

#: Kernel name -> the call sites that route through it.  Documentation
#: that is also data: the parity suite iterates this table so a kernel
#: added here without differential coverage fails loudly.
DISPATCH_TABLE = {
    "scatter_sum": ("federated/aggregation.py", "federated/server.py"),
    "segment_div": ("models/losses.py (bce/bpr_grad_segmented)",),
    "segment_sums": ("models/base.py (batch_local_step[_bpr])",),
    "pairwise_sq_dists": ("defenses/robust.py (Krum/MultiKrum/Bulyan)",),
    "stacked_step_gradients": ("attacks/base.py",),
    "row_diff_norms": ("attacks/mining.py (DeltaNormTracker, CohortMiner)",),
}

_instances: dict[str, object] = {}
_stack: list[object] = []


def resolve(backend: str | None = None):
    """Return the backend singleton for ``backend``.

    ``None`` defers to the ``REPRO_KERNELS`` environment variable (the
    CI hook), defaulting to ``"numpy"``.  ``"native"`` raises
    :class:`NativeKernelsUnavailable` when the compiled backend cannot
    be loaded — requesting native must never silently produce numpy.
    """
    if backend is None:
        backend = os.environ.get("REPRO_KERNELS") or "numpy"
    if not isinstance(backend, str) or backend not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
        )
    instance = _instances.get(backend)
    if instance is None:
        if backend == "native":
            instance = load_native_backend()
        else:
            instance = NumpyKernels()
        _instances[backend] = instance
    return instance


def active():
    """The backend dispatched calls use right now.

    The innermost :func:`use` scope wins; outside any scope the
    environment default applies per call, so plain library use (tests,
    notebooks) honours ``REPRO_KERNELS`` without any plumbing.
    """
    if _stack:
        return _stack[-1]
    return resolve(None)


@contextmanager
def use(backend):
    """Scope dispatched kernel calls to ``backend``.

    Accepts a backend name (or ``None`` for the environment default) or
    an already-resolved backend object — the simulation resolves once
    at construction to fail fast, then enters this scope every round.
    """
    if backend is None or isinstance(backend, str):
        backend = resolve(backend)
    _stack.append(backend)
    try:
        yield backend
    finally:
        _stack.pop()


# ----------------------------------------------------------------------
# Dispatched kernels.  Signatures and numerical contracts are defined
# by the reference backend (repro/kernels/_numpy.py).
# ----------------------------------------------------------------------


def scatter_sum(
    item_ids: np.ndarray, item_grads: np.ndarray, num_items: int
) -> np.ndarray:
    """Scatter-add gradient rows into a dense ``(num_items, dim)`` sum."""
    return active().scatter_sum(item_ids, item_grads, num_items)


def segment_div(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Divide each segment's rows by ``max(len(segment), 1)``."""
    return active().segment_div(values, lengths)


def segment_sums(rows: np.ndarray, lengths: np.ndarray, dim: int) -> np.ndarray:
    """Sum each segment's contiguous rows, row by row."""
    return active().segment_sums(rows, lengths, dim)


def pairwise_sq_dists(flat: np.ndarray) -> np.ndarray:
    """Pairwise squared distances (inf diagonal) per ``(n, dim)`` group."""
    return active().pairwise_sq_dists(flat)


def stacked_step_gradients(
    old_rows: np.ndarray,
    new_rows: np.ndarray,
    server_lr: float,
    max_step: float,
) -> np.ndarray:
    """Row-stacked bounded-step attack gradients."""
    return active().stacked_step_gradients(
        old_rows, new_rows, server_lr, max_step
    )


def row_diff_norms(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row L2 norms of ``a - b`` (mining-ledger Delta-Norm)."""
    return active().row_diff_norms(a, b)
