/* Native ports of the repro hot kernels.
 *
 * Every function reproduces its NumPy reference (repro/kernels/_numpy.py)
 * bit for bit: each reduction accumulates SEQUENTIALLY in the documented
 * order (row order for scatters, d = 0..dim-1 for inner products), and
 * every elementwise operation is the same correctly-rounded IEEE-754
 * operation NumPy performs.  Nothing here may be compiled with
 * -ffast-math / -fassociative-math: reassociating any accumulation
 * breaks the bit-parity contract the differential suite
 * (tests/test_kernels.py) enforces.
 *
 * All entry points are pure C on caller-owned buffers (no Python API,
 * no allocation), so the cffi ABI-mode caller releases the GIL for the
 * duration of every call.
 */

#include <math.h>
#include <stdint.h>

/* out[ids[r], :] += grads[r, :], sequentially in row order (the order
 * np.bincount accumulates composite (item, dim) indices in). `out` is
 * (num_items, dim), zero-initialised by the caller. */
void repro_scatter_sum_f64(const int64_t *ids, const double *grads,
                           int64_t rows, int64_t dim, double *out)
{
    for (int64_t r = 0; r < rows; r++) {
        double *dst = out + ids[r] * dim;
        const double *src = grads + r * dim;
        for (int64_t d = 0; d < dim; d++)
            dst[d] += src[d];
    }
}

/* out[r] = vals[r] / max(lengths[s], 1) for every row r of segment s —
 * the fused form of vals / repeat(maximum(lengths, 1), lengths). */
void repro_segment_div_f64(const double *vals, const int64_t *lengths,
                           int64_t num_segments, double *out)
{
    int64_t r = 0;
    for (int64_t s = 0; s < num_segments; s++) {
        int64_t len = lengths[s];
        double divisor = (double)(len > 1 ? len : 1);
        for (int64_t k = 0; k < len; k++, r++)
            out[r] = vals[r] / divisor;
    }
}

void repro_segment_div_f32(const float *vals, const int64_t *lengths,
                           int64_t num_segments, float *out)
{
    int64_t r = 0;
    for (int64_t s = 0; s < num_segments; s++) {
        int64_t len = lengths[s];
        float divisor = (float)(len > 1 ? len : 1);
        for (int64_t k = 0; k < len; k++, r++)
            out[r] = vals[r] / divisor;
    }
}

/* out[s, :] = sum over segment s's rows, accumulated row by row (the
 * sequential outer-axis order of np.add.reduce(axis=0) per segment). */
void repro_segment_sums_f64(const double *rows_, const int64_t *lengths,
                            int64_t num_segments, int64_t dim, double *out)
{
    const double *src = rows_;
    for (int64_t s = 0; s < num_segments; s++) {
        double *dst = out + s * dim;
        int64_t len = lengths[s];
        /* np.add.reduce(axis=0) seeds with the additive identity +0.0
         * (so a segment of -0.0 rows sums to +0.0 — identity + first
         * row flips the sign bit), then accumulates row by row. */
        for (int64_t d = 0; d < dim; d++)
            dst[d] = 0.0;
        for (int64_t k = 0; k < len; k++, src += dim)
            for (int64_t d = 0; d < dim; d++)
                dst[d] += src[d];
    }
}

void repro_segment_sums_f32(const float *rows_, const int64_t *lengths,
                            int64_t num_segments, int64_t dim, float *out)
{
    const float *src = rows_;
    for (int64_t s = 0; s < num_segments; s++) {
        float *dst = out + s * dim;
        int64_t len = lengths[s];
        for (int64_t d = 0; d < dim; d++)
            dst[d] = 0.0f;
        for (int64_t k = 0; k < len; k++, src += dim)
            for (int64_t d = 0; d < dim; d++)
                dst[d] += src[d];
    }
}

/* Pairwise squared distances per group: dists[g, i, j] =
 * (dot(i,i) + dot(j,j)) - 2 * dot(i,j) with every dot accumulated
 * sequentially over d, and +inf on each diagonal.  dot(i,j) == dot(j,i)
 * exactly (IEEE multiplication commutes, addition order is identical),
 * so the upper triangle is mirrored. */
void repro_pairwise_sq_dists_f64(const double *flat, int64_t groups,
                                 int64_t n, int64_t dim, double *out)
{
    for (int64_t g = 0; g < groups; g++) {
        const double *base = flat + g * n * dim;
        double *dists = out + g * n * n;
        /* Diagonal first: squared norms, parked in place.  Every
         * accumulator is seeded with the d=0 term — the same seeding
         * the NumPy reference uses — so leading -0.0 products keep
         * their sign bit. */
        for (int64_t i = 0; i < n; i++) {
            const double *xi = base + i * dim;
            double acc = dim > 0 ? xi[0] * xi[0] : 0.0;
            for (int64_t d = 1; d < dim; d++)
                acc = acc + xi[d] * xi[d];
            dists[i * n + i] = acc;
        }
        for (int64_t i = 0; i < n; i++) {
            const double *xi = base + i * dim;
            for (int64_t j = i + 1; j < n; j++) {
                const double *xj = base + j * dim;
                double dot = dim > 0 ? xi[0] * xj[0] : 0.0;
                for (int64_t d = 1; d < dim; d++)
                    dot = dot + xi[d] * xj[d];
                double dist =
                    (dists[i * n + i] + dists[j * n + j]) - 2.0 * dot;
                dists[i * n + j] = dist;
                dists[j * n + i] = dist;
            }
        }
        for (int64_t i = 0; i < n; i++)
            dists[i * n + i] = INFINITY;
    }
}

/* Row-stacked bounded-step attack gradients: per row, delta = new - old,
 * clipped to max_step by its sequential-sum L2 norm, re-encoded as
 * (old - (old + delta)) / server_lr. */
void repro_stacked_step_gradients_f64(const double *old_rows,
                                      const double *new_rows,
                                      double server_lr, double max_step,
                                      int64_t rows, int64_t dim, double *out)
{
    for (int64_t r = 0; r < rows; r++) {
        const double *o = old_rows + r * dim;
        const double *w = new_rows + r * dim;
        double *res = out + r * dim;
        for (int64_t d = 0; d < dim; d++)
            res[d] = w[d] - o[d];
        if (max_step > 0 && dim > 0) {
            double acc = res[0] * res[0];
            for (int64_t d = 1; d < dim; d++)
                acc = acc + res[d] * res[d];
            double norm = sqrt(acc);
            if (norm > max_step) {
                double scale = max_step / norm;
                for (int64_t d = 0; d < dim; d++)
                    res[d] = res[d] * scale;
            }
        }
        for (int64_t d = 0; d < dim; d++)
            res[d] = (o[d] - (o[d] + res[d])) / server_lr;
    }
}

/* out[r] = || a[r, :] - b[r, :] ||_2 with the squared differences
 * accumulated sequentially over d (the mining-ledger Delta-Norm). */
void repro_row_diff_norms_f64(const double *a, const double *b,
                              int64_t rows, int64_t dim, double *out)
{
    for (int64_t r = 0; r < rows; r++) {
        const double *ar = a + r * dim;
        const double *br = b + r * dim;
        double first = dim > 0 ? ar[0] - br[0] : 0.0;
        double acc = first * first;
        for (int64_t d = 1; d < dim; d++) {
            double diff = ar[d] - br[d];
            acc = acc + diff * diff;
        }
        out[r] = sqrt(acc);
    }
}
