"""Native compiled kernel backend: ``_kernels.c`` via cffi ABI mode.

The C source next to this module is compiled on first use with the
system C compiler into a content-addressed shared library (keyed by the
SHA-256 of the source plus the compiler identity, so stale caches can
never be picked up) and opened with ``ffi.dlopen``.  ABI mode needs no
``Python.h`` and cffi releases the GIL around every call into the
library — the property ROADMAP item 1 is after.

The build deliberately uses plain ``-O3``: no ``-ffast-math`` /
``-fassociative-math``, because the compiler must not reassociate the
sequential accumulations that :mod:`repro.kernels._numpy` defines as
the bit-parity contract.

If any ingredient is missing — cffi, a C compiler, a writable cache
directory — loading raises :class:`NativeKernelsUnavailable`.  There is
no silent fallback to NumPy at load time; per-call fallbacks for
dtypes the native code does not cover are served by the reference
backend and *counted* in :attr:`NativeBackend.fallback_calls`.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.kernels._numpy import NumpyKernels

__all__ = ["NativeKernelsUnavailable", "NativeBackend", "load_native_backend"]

_CDEF = """
void repro_scatter_sum_f64(const int64_t *ids, const double *grads,
                           int64_t rows, int64_t dim, double *out);
void repro_segment_div_f64(const double *vals, const int64_t *lengths,
                           int64_t num_segments, double *out);
void repro_segment_div_f32(const float *vals, const int64_t *lengths,
                           int64_t num_segments, float *out);
void repro_segment_sums_f64(const double *rows_, const int64_t *lengths,
                            int64_t num_segments, int64_t dim, double *out);
void repro_segment_sums_f32(const float *rows_, const int64_t *lengths,
                            int64_t num_segments, int64_t dim, float *out);
void repro_pairwise_sq_dists_f64(const double *flat, int64_t groups,
                                 int64_t n, int64_t dim, double *out);
void repro_stacked_step_gradients_f64(const double *old_rows,
                                      const double *new_rows,
                                      double server_lr, double max_step,
                                      int64_t rows, int64_t dim, double *out);
void repro_row_diff_norms_f64(const double *a, const double *b,
                              int64_t rows, int64_t dim, double *out);
"""

_SOURCE = Path(__file__).with_name("_kernels.c")
_CFLAGS = ["-O3", "-fPIC", "-shared"]


class NativeKernelsUnavailable(RuntimeError):
    """Raised when ``kernels="native"`` is requested but cannot be served.

    Deliberately an error rather than a quiet downgrade: a run that asks
    for the native backend and silently gets NumPy would report numpy
    throughput under a native label, the exact failure mode the
    anti-fallback counters elsewhere in the engine exist to surface.
    """


def _find_compiler() -> str | None:
    import shutil

    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def _cache_dir() -> Path:
    configured = os.environ.get("REPRO_KERNELS_CACHE")
    if configured:
        return Path(configured)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def _build_shared_library() -> Path:
    """Compile ``_kernels.c`` into a content-addressed cached ``.so``."""
    if not _SOURCE.is_file():
        raise NativeKernelsUnavailable(
            f"native kernel source not found at {_SOURCE}"
        )
    compiler = _find_compiler()
    if compiler is None:
        raise NativeKernelsUnavailable(
            "no C compiler found (looked for cc/gcc/clang on PATH); "
            "the native kernel backend needs one to build _kernels.c"
        )
    source = _SOURCE.read_bytes()
    try:
        version = subprocess.run(
            [compiler, "--version"], capture_output=True, check=True
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        raise NativeKernelsUnavailable(
            f"C compiler {compiler!r} is not usable: {exc}"
        ) from exc
    tag = hashlib.sha256(
        source + b"\0" + version + b"\0" + " ".join(_CFLAGS).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"repro_kernels_{tag}.so"
    if target.is_file():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=cache, prefix=".build_", suffix=".so"
        )
        os.close(fd)
        build = subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp_name, str(_SOURCE), "-lm"],
            capture_output=True,
            text=True,
        )
        if build.returncode != 0:
            os.unlink(tmp_name)
            raise NativeKernelsUnavailable(
                f"compiling _kernels.c failed:\n{build.stderr.strip()}"
            )
        # Concurrent builders race benignly: both produce byte-equivalent
        # libraries for the same tag, and replace is atomic.
        os.replace(tmp_name, target)
    except OSError as exc:
        raise NativeKernelsUnavailable(
            f"could not build native kernels under {cache}: {exc}"
        ) from exc
    return target


def _dlopen(library: Path):
    try:
        import cffi
    except ImportError as exc:
        raise NativeKernelsUnavailable(
            "cffi is not installed; install the 'native' extra "
            "(pip install repro[native]) to use kernels='native'"
        ) from exc
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    try:
        lib = ffi.dlopen(str(library))
    except OSError as exc:
        raise NativeKernelsUnavailable(
            f"could not dlopen built kernel library {library}: {exc}"
        ) from exc
    return ffi, lib


class NativeBackend:
    """Kernel backend serving dispatched calls from the compiled library.

    Wrappers only marshal: inputs are made C-contiguous in the exact
    dtype the C entry point expects (an exact representation change,
    not a numerical one), outputs are NumPy-allocated buffers the C
    code fills.  Calls whose dtype has no native port (e.g. float32
    pairwise distances, which nothing on a hot path produces) are
    served by the reference backend and recorded in
    :attr:`fallback_calls` so the engine's anti-fallback accounting can
    surface them.
    """

    name = "native"

    def __init__(self, ffi, lib):
        self._ffi = ffi
        self._lib = lib
        self._numpy = NumpyKernels()
        self.fallback_calls = 0

    # -- marshalling helpers -------------------------------------------

    def _ptr(self, ctype: str, array: np.ndarray):
        return self._ffi.from_buffer(ctype, array, require_writable=False)

    def _out(self, ctype: str, array: np.ndarray):
        return self._ffi.from_buffer(ctype, array, require_writable=True)

    @staticmethod
    def _i64(array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(array, dtype=np.int64)

    # -- kernels -------------------------------------------------------

    def scatter_sum(
        self, item_ids: np.ndarray, item_grads: np.ndarray, num_items: int
    ) -> np.ndarray:
        grads = np.ascontiguousarray(item_grads, dtype=np.float64)
        ids = self._i64(item_ids)
        out = np.zeros((num_items, grads.shape[1]))
        self._lib.repro_scatter_sum_f64(
            self._ptr("int64_t[]", ids),
            self._ptr("double[]", grads),
            grads.shape[0],
            grads.shape[1],
            self._out("double[]", out),
        )
        return out

    def segment_div(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        if values.dtype == np.float64:
            func, ctype = self._lib.repro_segment_div_f64, "double[]"
        elif values.dtype == np.float32:
            func, ctype = self._lib.repro_segment_div_f32, "float[]"
        else:
            self.fallback_calls += 1
            return self._numpy.segment_div(values, lengths)
        vals = np.ascontiguousarray(values)
        out = np.empty_like(vals)
        func(
            self._ptr(ctype, vals),
            self._ptr("int64_t[]", self._i64(lengths)),
            len(lengths),
            self._out(ctype, out),
        )
        return out

    def segment_sums(
        self, rows: np.ndarray, lengths: np.ndarray, dim: int
    ) -> np.ndarray:
        if rows.dtype == np.float64:
            func, ctype = self._lib.repro_segment_sums_f64, "double[]"
        elif rows.dtype == np.float32:
            func, ctype = self._lib.repro_segment_sums_f32, "float[]"
        else:
            self.fallback_calls += 1
            return self._numpy.segment_sums(rows, lengths, dim)
        flat = np.ascontiguousarray(rows)
        out = np.empty((len(lengths), dim), dtype=rows.dtype)
        func(
            self._ptr(ctype, flat),
            self._ptr("int64_t[]", self._i64(lengths)),
            len(lengths),
            dim,
            self._out(ctype, out),
        )
        return out

    def pairwise_sq_dists(self, flat: np.ndarray) -> np.ndarray:
        if flat.dtype != np.float64:
            self.fallback_calls += 1
            return self._numpy.pairwise_sq_dists(flat)
        groups, n, dim = flat.shape
        stacks = np.ascontiguousarray(flat)
        out = np.empty((groups, n, n))
        self._lib.repro_pairwise_sq_dists_f64(
            self._ptr("double[]", stacks),
            groups,
            n,
            dim,
            self._out("double[]", out),
        )
        return out

    def stacked_step_gradients(
        self,
        old_rows: np.ndarray,
        new_rows: np.ndarray,
        server_lr: float,
        max_step: float,
    ) -> np.ndarray:
        if (
            old_rows.dtype != np.float64
            or new_rows.dtype != np.float64
            or old_rows.ndim != 2
        ):
            self.fallback_calls += 1
            return self._numpy.stacked_step_gradients(
                old_rows, new_rows, server_lr, max_step
            )
        old = np.ascontiguousarray(old_rows)
        new = np.ascontiguousarray(new_rows)
        out = np.empty_like(old)
        self._lib.repro_stacked_step_gradients_f64(
            self._ptr("double[]", old),
            self._ptr("double[]", new),
            float(server_lr),
            float(max_step),
            old.shape[0],
            old.shape[1],
            self._out("double[]", out),
        )
        return out

    def row_diff_norms(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.dtype != np.float64 or b.dtype != np.float64:
            self.fallback_calls += 1
            return self._numpy.row_diff_norms(a, b)
        left = np.ascontiguousarray(a)
        right = np.ascontiguousarray(b)
        out = np.empty(left.shape[0])
        self._lib.repro_row_diff_norms_f64(
            self._ptr("double[]", left),
            self._ptr("double[]", right),
            left.shape[0],
            left.shape[1],
            self._out("double[]", out),
        )
        return out


def load_native_backend() -> NativeBackend:
    """Build (or reuse) the shared library and wrap it in a backend.

    Raises :class:`NativeKernelsUnavailable` when the toolchain is
    missing — never falls back silently.
    """
    ffi, lib = _dlopen(_build_shared_library())
    return NativeBackend(ffi, lib)
