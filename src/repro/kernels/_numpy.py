"""NumPy reference implementations of the dispatched hot kernels.

This module *defines* the numerical contract of every kernel in the
dispatch table: each reduction accumulates **sequentially** in a
documented order (row order for scatters, ``d = 0..dim-1`` for inner
products, seeded with the ``d = 0`` term), and everything else is a
plain elementwise IEEE-754 operation.  The native backend
(:mod:`repro.kernels._native`) reproduces these results bit for bit —
that is the accumulation-order contract the differential parity suite
(``tests/test_kernels.py``) enforces — so NumPy formulations whose
accumulation order is an implementation detail (``np.matmul``'s BLAS
GEMM, ``np.einsum``'s unrolled sum-of-products, ``np.add.reduce``'s
pairwise blocking along the fast axis) are deliberately avoided here.

Two NumPy behaviours *are* part of the contract because they already
accumulate sequentially (and the repo's engine-parity suites lean on
them): ``np.bincount`` scatters weights in row order into zero-initialised
bins, and outer-axis ``np.add.reduce`` sums rows in row order seeded
with the additive identity ``+0.0`` (so a leading ``-0.0`` row does
not keep its sign bit — identity seeding, not first-row seeding).
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyKernels"]


def composite_indices(item_ids: np.ndarray, dim: int) -> np.ndarray:
    """Flat ``(item, dim)`` scatter indices, always computed in int64.

    ``item_ids`` arrives in whatever integer dtype the caller produced
    (CSR indices are commonly int32); the composite ``id * dim + d``
    reaches ``num_items * dim``, which overflows int32 on
    catalogue-scale inputs, so the ids are upcast *before* the
    multiply.
    """
    ids = np.asarray(item_ids).astype(np.int64, copy=False)
    return (ids[:, None] * dim + np.arange(dim, dtype=np.int64)).ravel()


class NumpyKernels:
    """The reference backend: pure NumPy, sequential-order reductions."""

    name = "numpy"
    #: Dispatched calls this backend could not serve natively.  Always
    #: zero here — the reference serves everything — but present so
    #: fallback accounting reads uniformly across backends.
    fallback_calls = 0

    # -- scatter_sum ---------------------------------------------------

    def scatter_sum(
        self, item_ids: np.ndarray, item_grads: np.ndarray, num_items: int
    ) -> np.ndarray:
        """Scatter-add gradient rows into a dense ``(num_items, dim)`` sum.

        Contract: ``out[ids[r]] += grads[r]`` sequentially in row order,
        accumulated in float64 (reduced-precision rows are cast exactly,
        like ``np.bincount`` casts its weights).
        """
        dim = item_grads.shape[1]
        flat = np.bincount(
            composite_indices(item_ids, dim),
            weights=item_grads.ravel(),
            minlength=num_items * dim,
        )
        # np.bincount ignores an *empty* weights array and returns
        # int64 counts; pin the contract's float64 either way.
        return flat.astype(np.float64, copy=False).reshape(num_items, dim)

    # -- segment_div ---------------------------------------------------

    def segment_div(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Divide each segment's rows by ``max(len(segment), 1)``.

        The fused form of ``values / repeat(maximum(lengths, 1),
        lengths)`` behind the segmented BCE/BPR logit gradients; the
        divisor is cast to ``values.dtype`` so reduced-precision
        gradients stay at their own precision.  Pure elementwise IEEE
        division — no accumulation order to pin down.
        """
        divisors = np.repeat(np.maximum(lengths, 1), lengths).astype(values.dtype)
        return values / divisors

    # -- segment_sums --------------------------------------------------

    def segment_sums(
        self, rows: np.ndarray, lengths: np.ndarray, dim: int
    ) -> np.ndarray:
        """Sum each segment's contiguous rows, row by row.

        Contract: per segment, ``np.add.reduce`` over the row axis —
        which seeds with the additive identity ``+0.0`` and accumulates
        the rows sequentially (an empty segment is the identity, and a
        leading ``-0.0`` row does not keep its sign bit).  This is
        exactly the per-client reduction the loop engine performs.
        """
        out = np.empty((len(lengths), dim), dtype=rows.dtype)
        reduce_rows = np.add.reduce
        start = 0
        for index, length in enumerate(lengths.tolist()):
            out[index] = reduce_rows(rows[start : start + length], axis=0)
            start += length
        return out

    # -- pairwise_sq_dists ---------------------------------------------

    def pairwise_sq_dists(self, flat: np.ndarray) -> np.ndarray:
        """Pairwise squared distances for ``(groups, n, dim)`` stacks.

        Contract: ``dot[g, i, j]`` accumulates ``flat[g, i, d] *
        flat[g, j, d]`` sequentially over ``d`` (seeded with the first
        term); ``dists = (sq_i + sq_j) - 2 * dot`` elementwise with the
        squared norms read off the diagonal; ``inf`` on each diagonal.
        The sequential loop replaces the batched BLAS GEMM the kernel
        used before the backend split: GEMM blocking is an
        implementation detail no native port can reproduce bit for bit,
        while this order is trivially portable — and remains lane-stable
        (lane ``g`` is bit-identical aggregated alone or in any group),
        which is the invariant the defended engine-parity suite rests
        on.
        """
        groups, n, dim = flat.shape
        if dim == 0:
            dots = np.zeros((groups, n, n))
        else:
            dots = flat[:, :, 0, None] * flat[:, None, :, 0]
            for d in range(1, dim):
                dots = dots + flat[:, :, d, None] * flat[:, None, :, d]
        sq_norms = np.einsum("gii->gi", dots)
        dists = (sq_norms[:, :, None] + sq_norms[:, None, :]) - 2.0 * dots
        dists[:, np.arange(n), np.arange(n)] = np.inf
        return dists

    # -- stacked_step_gradients ----------------------------------------

    def stacked_step_gradients(
        self,
        old_rows: np.ndarray,
        new_rows: np.ndarray,
        server_lr: float,
        max_step: float,
    ) -> np.ndarray:
        """Row-stacked bounded-step attack gradients.

        Contract: ``delta = new - old`` per row; the per-row L2 norm
        accumulates the squared components sequentially over ``d``
        (seeded with the ``d = 0`` term — not NumPy's pairwise-blocked
        ``add.reduce`` and not the 1-D BLAS-dot ``linalg.norm``, neither
        of which a native port can match); rows over ``max_step`` are
        scaled by ``max_step / norm``; the result is
        ``(old - (old + delta)) / server_lr`` elementwise.
        """
        deltas = new_rows - old_rows
        dim = deltas.shape[1] if deltas.ndim == 2 else 0
        if max_step > 0 and dim > 0 and len(deltas):
            sq = deltas[:, 0] * deltas[:, 0]
            for d in range(1, dim):
                sq = sq + deltas[:, d] * deltas[:, d]
            norms = np.sqrt(sq)
            clipped = norms > max_step
            if np.any(clipped):
                # ``deltas`` is freshly allocated above — clip in place.
                deltas[clipped] = (
                    deltas[clipped] * (max_step / norms[clipped])[:, None]
                )
        shifted = old_rows + deltas
        return (old_rows - shifted) / server_lr

    # -- row_diff_norms ------------------------------------------------

    def row_diff_norms(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-row L2 norm of ``a - b`` (the mining-ledger Delta-Norm).

        Contract: squared differences accumulate sequentially over
        ``d``, seeded with the ``d = 0`` term, then one sqrt per row.
        """
        rows, dim = a.shape
        if dim == 0:
            return np.zeros(rows)
        first = a[:, 0] - b[:, 0]
        acc = first * first
        for d in range(1, dim):
            diff = a[:, d] - b[:, d]
            acc = acc + diff * diff
        return np.sqrt(acc)
