"""Defense methods for federated recommendation (Section V).

Server-side Byzantine-robust baselines (NormBound, Median, TrimmedMean,
Krum, MultiKrum, Bulyan) implement the :class:`repro.federated.Aggregator`
interface; the paper shows (Eq. 11) and we reproduce (Table IV) that
they cannot protect cold target items. The paper's own defense is
client-side: benign users mine popular items themselves and add the
Re1 / Re2 regularization terms to their training loss (Eq. 14-16).
"""

from repro.defenses.coordinated import ItemScaleClip
from repro.defenses.regularization import ClientRegularizer
from repro.defenses.registry import DEFENSE_NAMES, build_server_defense, client_regularizer_factory
from repro.defenses.robust import (
    BulyanAggregator,
    KrumAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormBoundFilter,
    TrimmedMeanAggregator,
)

__all__ = [
    "NormBoundFilter",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "KrumAggregator",
    "MultiKrumAggregator",
    "BulyanAggregator",
    "ClientRegularizer",
    "ItemScaleClip",
    "DEFENSE_NAMES",
    "build_server_defense",
    "client_regularizer_factory",
]
