"""The paper's client-side regularization defense (Section V-B).

Each *benign* client mines popular items itself (the same Algorithm 1
the attacker uses) and trains with the combined loss of Eq. 16:

``L_def = L_i - beta * Re1 - gamma * Re2``

* **Re1** (Eq. 14) is the kappa'-weighted mean cosine similarity
  between the client's unpopular local items and the mined popular
  items. Maximising it blurs the distinction between popular and
  unpopular item features, so PIECK-IPE can no longer counterfeit a
  target as distinctly "popular" (counters finding F2).
* **Re2** (Eq. 15) is the kappa'-weighted KL divergence between the
  mined popular item embeddings and the user embedding. Maximising it
  separates the user-embedding distribution from the popular-item
  distribution, so PIECK-UEA's approximation becomes inaccurate
  (counters finding F3).

Minimising ``L_def`` therefore *maximises* both terms, while the
original loss term preserves recommendation quality.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.mining import PopularItemMiner
from repro.config import DefenseConfig
from repro.metrics.divergence import softmax
from repro.models.losses import sigmoid

__all__ = ["ClientRegularizer", "exponential_rank_weights", "re1_value", "re2_value"]

_EPS = 1e-12


def exponential_rank_weights(size: int) -> np.ndarray:
    """kappa': normalised exponential inverse-rank weights.

    The paper uses an exponential form so the defense focuses on the
    very most popular items (footnote 9). Item at mined rank ``i``
    (0 = most popular) receives weight proportional to ``exp(-i)``.
    """
    weights = np.exp(-np.arange(size, dtype=np.float64))
    return weights / weights.sum()


def re1_value(
    unpopular_vecs: np.ndarray, popular_vecs: np.ndarray, weights: np.ndarray
) -> float:
    """Re1 (Eq. 14): weighted mean popular/unpopular cosine similarity."""
    if len(unpopular_vecs) == 0:
        return 0.0
    u_norms = np.linalg.norm(unpopular_vecs, axis=1) + _EPS
    p_norms = np.linalg.norm(popular_vecs, axis=1) + _EPS
    cosines = (popular_vecs @ unpopular_vecs.T) / np.outer(p_norms, u_norms)
    return float((weights @ cosines).mean())


def re2_value(
    popular_vecs: np.ndarray, user_vec: np.ndarray, weights: np.ndarray
) -> float:
    """Re2 (Eq. 15): weighted KL between popular items and the user."""
    p = softmax(popular_vecs)
    q = softmax(user_vec)
    kls = np.sum(p * (np.log(p + _EPS) - np.log(q + _EPS)), axis=1)
    return float(weights @ kls)


class ClientRegularizer:
    """Per-benign-client defense state and gradient terms.

    The hook protocol used by :class:`repro.federated.BenignClient`:

    * ``observe(item_matrix)`` — feed the received global item matrix
      into the client's own popular item miner;
    * ``item_grad_terms(item_ids, item_matrix)`` — extra gradient rows
      for the local batch implementing ``-beta * dRe1/dv_j``;
    * ``user_grad_term(user_emb, item_matrix)`` — extra user-embedding
      gradient implementing ``-gamma * dRe2/du_i``.

    Before the miner is ready both terms are zero (the client simply
    trains normally while accumulating Δ-Norm observations).
    """

    #: Relative strength of the tower-level Re2 term (DL-FRS only).
    TOWER_WEIGHT = 0.5
    #: Local items paired with each pseudo-user in the tower-level term.
    TOWER_ITEM_BATCH = 8

    def __init__(self, num_items: int, config: DefenseConfig):
        self.config = config
        self.miner = PopularItemMiner(
            num_items, config.mining_rounds, config.num_popular
        )

    # ------------------------------------------------------------------
    # Hook protocol
    # ------------------------------------------------------------------

    def observe(self, item_matrix: np.ndarray) -> None:
        """Feed one received item matrix into the miner."""
        self.miner.observe(item_matrix)

    def item_grad_terms(
        self, item_ids: np.ndarray, item_matrix: np.ndarray
    ) -> np.ndarray:
        """Gradient of ``-beta * Re1`` w.r.t. the local batch items."""
        grads = np.zeros((len(item_ids), item_matrix.shape[1]))
        if not self.miner.ready or self.config.beta == 0.0:
            return grads
        popular = self.miner.popular_items()
        popular_vecs = item_matrix[popular]
        weights = exponential_rank_weights(len(popular))
        p_norms = np.linalg.norm(popular_vecs, axis=1) + _EPS

        unpopular_rows = np.flatnonzero(~np.isin(item_ids, popular))
        if len(unpopular_rows) == 0:
            return grads
        count = len(unpopular_rows)
        vecs = item_matrix[item_ids[unpopular_rows]]  # (m, d)
        v_norms = np.linalg.norm(vecs, axis=1) + _EPS  # (m,)
        # cosines[k, j] = cos(popular_k, unpopular_j).
        cosines = (popular_vecs @ vecs.T) / np.outer(p_norms, v_norms)
        weighted_pop = (weights[:, None] * popular_vecs / p_norms[:, None]).sum(axis=0)
        # d Re1 / d v_j = (sum_k kappa'_k * dcos/dv_j) / |Delta D_i|.
        first_term = weighted_pop[None, :] / v_norms[:, None]
        second_term = (weights @ cosines)[:, None] * vecs / (v_norms**2)[:, None]
        grads[unpopular_rows] = -self.config.beta * (first_term - second_term) / count
        return grads

    def user_grad_term(
        self, user_emb: np.ndarray, item_matrix: np.ndarray
    ) -> np.ndarray:
        """Gradient of ``-gamma * Re2`` w.r.t. the user embedding."""
        if not self.miner.ready or self.config.gamma == 0.0:
            return np.zeros_like(user_emb)
        popular = self.miner.popular_items()
        weights = exponential_rank_weights(len(popular))
        # sum_k kappa'_k * (softmax(u) - softmax(v_k)) collapses to
        # softmax(u) - sum_k kappa'_k softmax(v_k) since weights sum to 1.
        q = softmax(user_emb)
        p_mean = weights @ softmax(item_matrix[popular])
        return -self.config.gamma * (q - p_mean)

    def param_grad_terms(self, model, item_ids: np.ndarray) -> list[np.ndarray]:
        """Re2 through the learnable interaction function (DL-FRS only).

        On DL-FRS, separating the user-embedding *distribution* is not
        enough: the learnable tower can still map (popular-item-as-user,
        target) pairs to high scores regardless of where real users
        live. This term realises Re2's goal — "user embeddings inferred
        from popular item embeddings are inherently inaccurate" — at
        the tower level: each benign client trains the interaction
        function to score pseudo-users built from its own mined popular
        items *low* on its local items, so an attacker approximating
        users with popular embeddings (PIECK-UEA) optimises against a
        channel the federation actively closes. Returns one gradient
        per interaction parameter; empty for MF-FRS.
        """
        params = model.interaction_params()
        if not params:
            return []
        if not self.miner.ready or self.config.gamma == 0.0:
            return [np.zeros_like(p) for p in params]
        popular = self.miner.popular_items()
        pseudo_users = model.item_embeddings[popular]
        items = model.item_embeddings[item_ids[: self.TOWER_ITEM_BATCH]]
        # All (pseudo-user, local item) pairs, trained towards label 0.
        n_pairs = len(pseudo_users) * len(items)
        users_rep = np.repeat(pseudo_users, len(items), axis=0)
        items_rep = np.tile(items, (len(pseudo_users), 1))
        logits, cache = model.forward(users_rep, items_rep)
        dlogits = sigmoid(logits) / n_pairs
        bundle = model.backward(cache, dlogits)
        weight = self.TOWER_WEIGHT * self.config.gamma
        # Confine the correction to the *user-slot* columns of the first
        # layer: that is the exact channel a pseudo-user enters through.
        # Touching the item half (or deeper layers) would suppress the
        # tower's scoring of real pairs and collapse recommendation
        # quality instead of closing the approximation channel.
        grads = [np.zeros_like(p) for p in params]
        first = bundle.params[0]
        user_dims = model.embedding_dim
        grads[0][:user_dims] = weight * first[:user_dims]
        return grads
