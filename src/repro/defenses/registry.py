"""Defense registry: build server/client defense components by name."""

from __future__ import annotations

from typing import Callable

from repro.config import DefenseConfig
from repro.defenses.coordinated import ItemScaleClip
from repro.defenses.regularization import ClientRegularizer
from repro.defenses.robust import (
    BulyanAggregator,
    KrumAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormBoundFilter,
    TrimmedMeanAggregator,
)
from repro.federated.aggregation import Aggregator, SumAggregator

__all__ = ["DEFENSE_NAMES", "build_server_defense", "client_regularizer_factory"]

#: All defenses runnable by name. "hybrid" is the *naive* future-work
#: composition (client regularization + server NormBound — measured as
#: a negative result); "scale_clip" is the server-side per-row scale
#: clip alone, and "coordinated" composes it with the client-side
#: regularization (see repro.defenses.coordinated).
DEFENSE_NAMES = (
    "none",
    "norm_bound",
    "median",
    "trimmed_mean",
    "krum",
    "multi_krum",
    "bulyan",
    "regularization",
    "hybrid",
    "scale_clip",
    "coordinated",
)


def build_server_defense(config: DefenseConfig):
    """Return ``(aggregator, update_filter)`` for a defense config.

    The client-side ``regularization`` defense leaves the server
    undefended (plain sum, no filter) — its protection happens inside
    benign clients (see :func:`client_regularizer_factory`).
    """
    name = config.name
    if name not in DEFENSE_NAMES:
        raise ValueError(f"unknown defense {name!r}; expected one of {DEFENSE_NAMES}")
    aggregator: Aggregator = SumAggregator()
    update_filter = None
    if name in ("norm_bound", "hybrid"):
        update_filter = NormBoundFilter(config.norm_bound)
    elif name in ("scale_clip", "coordinated"):
        update_filter = ItemScaleClip(config.scale_clip_factor)
    elif name == "median":
        aggregator = MedianAggregator()
    elif name == "trimmed_mean":
        aggregator = TrimmedMeanAggregator(config.assumed_malicious_ratio)
    elif name == "krum":
        aggregator = KrumAggregator(config.assumed_malicious_ratio)
    elif name == "multi_krum":
        aggregator = MultiKrumAggregator(config.assumed_malicious_ratio)
    elif name == "bulyan":
        aggregator = BulyanAggregator(config.assumed_malicious_ratio)
    return aggregator, update_filter


def client_regularizer_factory(
    config: DefenseConfig, num_items: int
) -> Callable[[], ClientRegularizer] | None:
    """Factory creating one :class:`ClientRegularizer` per benign client.

    Returns ``None`` for every defense without a client-side component
    (only ``regularization`` and ``hybrid`` have one); each benign
    client needs its *own* miner state, hence a factory rather than a
    shared instance.
    """
    if config.name not in ("regularization", "hybrid", "coordinated"):
        return None
    return lambda: ClientRegularizer(num_items, config)
