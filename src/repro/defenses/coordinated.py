"""Coordinated (client + server) defense — the paper's future work.

Section VII of the paper calls for defenses that combine server-side
and client-side strategies. The naive composition fails: NormBound
clips each client's *whole* upload, which shrinks the benign clients'
regularization gradients along with everything else and blunts exactly
the signal that contains the attack (measured as a negative result in
``benchmarks/bench_hybrid_defense.py``).

The coordinated design replaces the per-client norm bound with a
per-*row* scale clip derived from the paper's own Eq. 11 analysis:

* Eq. 11 shows poison *dominates the gradient count* of a cold target
  item, so anything computed per item (median, trimmed mean, Krum) is
  already lost for that item.
* But benign per-item gradient rows have comparable norms *across*
  items — each is a bounded BCE/BPR derivative times a user embedding,
  divided by the local dataset size — and benign *clients* vastly
  outnumber malicious ones in every round.
* The server therefore calibrates a benign row scale as a
  median-of-medians: each client contributes the median norm of its
  own rows, and the cross-client median of those is the scale. One
  value per client means neither a few huge poison rows nor a flood of
  thousands of tiny rows from one client can move the statistic.
* Every row is clipped to a small multiple of that scale. (An optional
  per-tensor variant for DL-FRS interaction parameters exists but is
  off by default — see ``include_params`` below.)

A poisonous row that encodes a ``delta / eta`` jump needs a norm far
above the benign scale to move a cold embedding in one round; after
the clip its per-round push is bounded at the benign scale, which the
benign pushback (and the client-side regularization, which passes
through the clip untouched because it *is* at the benign scale) can
counter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.federated.payload import ClientUpdate
from repro.federated.update_batch import UpdateBatch

__all__ = ["ItemScaleClip"]


def _lower_median(values: np.ndarray) -> float:
    """Median as an actual element (no interpolation).

    Using an element keeps the clip idempotent for ``factor >= 1``:
    clipping rows down *to* the bound can never push an order statistic
    below the previous median.
    """
    return float(np.quantile(values, 0.5, method="lower"))


class ItemScaleClip:
    """Server-side filter clipping each uploaded item-gradient row.

    Parameters
    ----------
    factor:
        Multiple of the calibrated benign row scale allowed per row.
        The default (0.5) deliberately clips *into* the benign row
        distribution: a cold target item receives almost no benign
        pushback (Eq. 11), so a bound with headroom above the benign
        scale still lets poison drift in over the rounds — containment
        needs the per-round poison step at or below the typical benign
        row. Uniform row clipping at this level is harmless to benign
        training (it acts like gradient clipping; measured HR is flat
        to slightly better).
    history:
        Exponential-moving-average weight for smoothing the scale
        across rounds (0 disables smoothing). Smoothing prevents an
        attacker who is heavily sampled in one round from dragging the
        round-local scale.
    include_params:
        Also clip interaction-parameter gradients (DL-FRS) per tensor,
        each against the cross-client median norm of that tensor's
        uploads. **Off by default — measured to backfire.** A tensor
        mixes the poison direction with the benign learning signal, so
        whole-tensor clipping blunts the benign clients' corrective
        gradients more than the (few, same-bounded) poisonous ones: on
        NCF, A-hum containment regresses from ER ~5 to ER 100 when
        this is enabled (EXPERIMENTS.md). Row-granular statistics are
        what make the item-side clip sound; parameter tensors lack
        that granularity.
    """

    def __init__(
        self,
        factor: float = 0.5,
        history: float = 0.5,
        include_params: bool = False,
    ):
        if factor <= 0:
            raise ValueError("factor must be positive")
        if not 0.0 <= history < 1.0:
            raise ValueError("history must lie in [0, 1)")
        self.factor = factor
        self.history = history
        self.include_params = include_params
        self._smoothed_median: float | None = None
        self._smoothed_param_medians: list[float] = []
        if include_params:
            # Whole-tensor parameter norms need materialised updates;
            # exposing no ``filter_batch`` routes the server to its
            # reference path, where the fallback is *counted*
            # (``Server.materialized_rounds``) instead of hidden.
            self.filter_batch = None

    # ------------------------------------------------------------------
    # Scale calibration
    # ------------------------------------------------------------------

    def _round_median(self, updates: Sequence[ClientUpdate]) -> float:
        """Median-of-medians benign row scale for one round.

        Each client contributes exactly one value — the median norm of
        its own rows — so a single client cannot move the statistic no
        matter how many (or how extreme) rows it uploads.
        """
        client_medians = []
        for update in updates:
            norms = np.linalg.norm(update.item_grads, axis=1)
            positive = norms[norms > 0]
            if len(positive):
                client_medians.append(_lower_median(positive))
        if not client_medians:
            return 0.0
        return _lower_median(np.asarray(client_medians))

    def _update_scale(self, round_median: float) -> float:
        if self._smoothed_median is None or self.history == 0.0:
            self._smoothed_median = round_median
        else:
            self._smoothed_median = (
                self.history * self._smoothed_median
                + (1.0 - self.history) * round_median
            )
        return self._smoothed_median

    def _param_bounds(self, updates: Sequence[ClientUpdate]) -> list[float]:
        """Per-tensor clip bounds from cross-client median norms."""
        stacks: list[list[float]] = []
        for update in updates:
            for index, grad in enumerate(update.param_grads):
                while len(stacks) <= index:
                    stacks.append([])
                norm = float(np.linalg.norm(grad))
                if norm > 0:
                    stacks[index].append(norm)
        bounds: list[float] = []
        for index, norms in enumerate(stacks):
            median = _lower_median(np.asarray(norms)) if norms else 0.0
            while len(self._smoothed_param_medians) <= index:
                self._smoothed_param_medians.append(median)
            if self.history > 0.0:
                self._smoothed_param_medians[index] = (
                    self.history * self._smoothed_param_medians[index]
                    + (1.0 - self.history) * median
                )
            else:
                self._smoothed_param_medians[index] = median
            bounds.append(self.factor * self._smoothed_param_medians[index])
        return bounds

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def __call__(self, updates: Sequence[ClientUpdate]) -> Sequence[ClientUpdate]:
        if not updates:
            return updates
        scale = self._update_scale(self._round_median(updates))
        param_bounds = (
            self._param_bounds(updates) if self.include_params else []
        )
        if scale <= 0.0 and not any(b > 0 for b in param_bounds):
            return updates
        bound = self.factor * scale
        clipped: list[ClientUpdate] = []
        for update in updates:
            item_grads = self._clip_rows(update.item_grads, bound)
            param_grads = self._clip_params(update.param_grads, param_bounds)
            if item_grads is None and param_grads is None:
                clipped.append(update)
                continue
            clipped.append(
                ClientUpdate(
                    user_id=update.user_id,
                    item_ids=update.item_ids,
                    item_grads=(
                        update.item_grads if item_grads is None else item_grads
                    ),
                    param_grads=(
                        update.param_grads if param_grads is None else param_grads
                    ),
                    malicious=update.malicious,
                )
            )
        return clipped

    def filter_batch(self, batch: UpdateBatch) -> UpdateBatch:
        """Batched equivalent of ``__call__`` on an :class:`UpdateBatch`.

        Row norms are computed once over the whole round stack (a
        row-wise reduction, so each value matches the per-client
        computation bit for bit); the median-of-medians calibration
        walks client segments of that norm vector; the row clip is one
        masked multiply over the stack.  The EMA state advances exactly
        as in the reference path, so a filter instance may serve either
        entry point across rounds.  (``include_params`` instances
        expose no ``filter_batch`` at all — see ``__init__``.)
        """
        if batch.num_clients == 0:
            return batch
        row_norms = batch.row_norms()
        starts = batch.starts
        client_medians = []
        for k in range(batch.num_clients):
            start = int(starts[k])
            norms = row_norms[start : start + int(batch.lengths[k])]
            positive = norms[norms > 0]
            if len(positive):
                client_medians.append(_lower_median(positive))
        round_median = (
            _lower_median(np.asarray(client_medians)) if client_medians else 0.0
        )
        scale = self._update_scale(round_median)
        if scale <= 0.0:
            return batch
        bound = self.factor * scale
        over = row_norms > bound
        if not over.any():
            return batch
        item_grads = batch.item_grads.copy()
        item_grads[over] *= (bound / row_norms[over])[:, None]
        return batch.with_item_grads(item_grads)

    @staticmethod
    def _clip_rows(grads: np.ndarray, bound: float) -> np.ndarray | None:
        """Rows clipped to ``bound``, or ``None`` when nothing changes."""
        if bound <= 0.0 or len(grads) == 0:
            return None
        row_norms = np.linalg.norm(grads, axis=1)
        over = row_norms > bound
        if not over.any():
            return None
        out = grads.copy()
        out[over] *= (bound / row_norms[over])[:, None]
        return out

    @staticmethod
    def _clip_params(
        grads: list[np.ndarray], bounds: list[float]
    ) -> list[np.ndarray] | None:
        """Tensors clipped to their bounds, or ``None`` if unchanged."""
        if not grads or not bounds:
            return None
        changed = False
        out: list[np.ndarray] = []
        for index, grad in enumerate(grads):
            bound = bounds[index] if index < len(bounds) else 0.0
            norm = float(np.linalg.norm(grad))
            if bound > 0.0 and norm > bound:
                out.append(grad * (bound / norm))
                changed = True
            else:
                out.append(grad)
        return out if changed else None
