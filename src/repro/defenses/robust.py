"""Byzantine-robust server-side aggregation baselines (Section V-A).

Each aggregator combines the per-client gradients received for one
parameter (one item embedding, or one interaction-parameter tensor).
Outputs are on the *sum scale* — robust centre multiplied by the
contributor count — so that the server's learning-rate semantics match
the undefended sum aggregation and HR@K stays comparable (the paper
tunes every defense "optimal" before comparing).

All of them assume poisonous gradients are a minority among the
gradients of any given parameter — the assumption Eq. 11 breaks for
cold target items in FRS.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.federated.aggregation import Aggregator
from repro.federated.payload import ClientUpdate

__all__ = [
    "NormBoundFilter",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "KrumAggregator",
    "MultiKrumAggregator",
    "BulyanAggregator",
]


class NormBoundFilter:
    """Clip every client upload to a maximum L2 norm (Sun et al., 2019).

    Used as a server ``update_filter``: when ``threshold`` is not
    positive, the per-round median upload norm is used, which is the
    strongest parameter-free variant (an attacker controlling a
    minority cannot move the median much).
    """

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold

    def __call__(self, updates: Sequence[ClientUpdate]) -> Sequence[ClientUpdate]:
        if not updates:
            return updates
        bound = self.threshold
        if bound <= 0:
            bound = float(np.median([u.total_norm for u in updates]))
        return [u.clipped(bound) for u in updates]


class MedianAggregator(Aggregator):
    """Coordinate-wise median (Yin et al., 2018), on the sum scale."""

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        grads = self._check(grads)
        return np.median(grads, axis=0) * len(grads)


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean (Yin et al., 2018), on the sum scale.

    Trims ``ceil(assumed_ratio * n)`` values from each end per
    coordinate and averages the rest.
    """

    def __init__(self, assumed_ratio: float = 0.05):
        if not 0.0 <= assumed_ratio < 0.5:
            raise ValueError("assumed_ratio must lie in [0, 0.5)")
        self.assumed_ratio = assumed_ratio

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        grads = self._check(grads)
        n = len(grads)
        trim = min(math.ceil(self.assumed_ratio * n), (n - 1) // 2)
        if trim == 0:
            return grads.mean(axis=0) * n
        ordered = np.sort(grads, axis=0)
        kept = ordered[trim : n - trim]
        return kept.mean(axis=0) * n


def _krum_scores(flat: np.ndarray, num_malicious: int) -> np.ndarray:
    """Krum score per gradient: sum of its closest squared distances."""
    n = len(flat)
    sq_norms = np.einsum("ij,ij->i", flat, flat)
    dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (flat @ flat.T)
    np.fill_diagonal(dists, np.inf)
    # Each gradient is scored on its n - f - 2 nearest neighbours.
    keep = max(n - num_malicious - 2, 1)
    part = np.partition(dists, kth=keep - 1, axis=1)[:, :keep]
    return part.sum(axis=1)


class KrumAggregator(Aggregator):
    """Krum (Blanchard et al., 2017): pick the most central gradient."""

    def __init__(self, assumed_ratio: float = 0.05):
        self.assumed_ratio = assumed_ratio

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        grads = self._check(grads)
        n = len(grads)
        if n <= 2:
            return grads.sum(axis=0)
        flat = grads.reshape(n, -1)
        f = max(1, math.ceil(self.assumed_ratio * n))
        winner = int(np.argmin(_krum_scores(flat, f)))
        return grads[winner] * n


class MultiKrumAggregator(Aggregator):
    """MultiKrum: drop the 2f least-central gradients, average the rest."""

    def __init__(self, assumed_ratio: float = 0.05):
        self.assumed_ratio = assumed_ratio

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        grads = self._check(grads)
        n = len(grads)
        if n <= 2:
            return grads.sum(axis=0)
        flat = grads.reshape(n, -1)
        f = max(1, math.ceil(self.assumed_ratio * n))
        drop = min(2 * f, n - 1)
        scores = _krum_scores(flat, f)
        kept = np.argsort(scores, kind="stable")[: n - drop]
        return grads[kept].mean(axis=0) * n


class BulyanAggregator(Aggregator):
    """Bulyan (Mhamdi et al., 2018): MultiKrum selection + TrimmedMean."""

    def __init__(self, assumed_ratio: float = 0.05):
        self.assumed_ratio = assumed_ratio
        self._trimmed = TrimmedMeanAggregator(min(assumed_ratio, 0.49))

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        grads = self._check(grads)
        n = len(grads)
        if n <= 3:
            return grads.sum(axis=0)
        flat = grads.reshape(n, -1)
        f = max(1, math.ceil(self.assumed_ratio * n))
        keep = max(n - 2 * f, 2)
        scores = _krum_scores(flat, f)
        selected = np.argsort(scores, kind="stable")[:keep]
        trimmed = self._trimmed.aggregate(grads[selected])
        # _trimmed returns robust-mean * keep; rescale to the full count.
        return trimmed / keep * n
