"""Byzantine-robust server-side aggregation baselines (Section V-A).

Each aggregator combines the per-client gradients received for one
parameter (one item embedding, or one interaction-parameter tensor).
Outputs are on the *sum scale* — robust centre multiplied by the
contributor count — so that the server's learning-rate semantics match
the undefended sum aggregation and HR@K stays comparable (the paper
tunes every defense "optimal" before comparing).

All of them assume poisonous gradients are a minority among the
gradients of any given parameter — the assumption Eq. 11 breaks for
cold target items in FRS.

Every aggregator implements the *grouped* interface
(:meth:`~repro.federated.aggregation.Aggregator.aggregate_stacks`):
the batched defended path hands it all touched items with the same
contributor count at once as one ``(groups, n, dim)`` tensor, and the
scalar ``aggregate`` routes through the identical kernel with a group
axis of one.  The kernels use only lane-stable operations (per-lane
sort/partition/median, sequential middle-axis reductions,
sequentially-accumulated dot products), so each group's result is
bit-identical to aggregating that item alone — the invariant the
loop/batch engine parity suite rests on.  The Krum family shares one
pairwise squared-distance routine dispatched through
:mod:`repro.kernels`; the distance matrix is computed once per grouped
call and reused across Krum scoring, MultiKrum selection and Bulyan's
select-then-trim stages instead of being rebuilt per item.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro import kernels
from repro.federated.aggregation import Aggregator
from repro.federated.payload import ClientUpdate
from repro.federated.update_batch import UpdateBatch

__all__ = [
    "NormBoundFilter",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "KrumAggregator",
    "MultiKrumAggregator",
    "BulyanAggregator",
]


class NormBoundFilter:
    """Clip every client upload to a maximum L2 norm (Sun et al., 2019).

    Used as a server ``update_filter``: when ``threshold`` is not
    positive, the per-round median upload norm is used, which is the
    strongest parameter-free variant (an attacker controlling a
    minority cannot move the median much).
    """

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold

    def __call__(self, updates: Sequence[ClientUpdate]) -> Sequence[ClientUpdate]:
        if not updates:
            return updates
        bound = self.threshold
        if bound <= 0:
            bound = float(np.median([u.total_norm for u in updates]))
        return [u.clipped(bound) for u in updates]

    def filter_batch(self, batch: UpdateBatch) -> UpdateBatch:
        """Batched equivalent of ``__call__``, one pass over the stacks.

        Per-client norms come from :meth:`UpdateBatch.client_total_norms`
        (bit-identical to ``ClientUpdate.total_norm``); unclipped
        clients are scaled by exactly 1.0, which is the identity on
        every float, so the result matches the reference filter bit
        for bit.
        """
        if batch.num_clients == 0:
            return batch
        norms = batch.client_total_norms()
        bound = self.threshold
        if bound <= 0:
            bound = float(np.median(norms))
        over = norms > bound
        if bound <= 0 or not over.any():
            return batch
        scales = np.ones(batch.num_clients)
        scales[over] = bound / norms[over]
        return batch.scaled_by_client(scales)


class MedianAggregator(Aggregator):
    """Coordinate-wise median (Yin et al., 2018), on the sum scale."""

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self.aggregate_stacks(self._check(grads)[None])[0]

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        n = stacks.shape[1]
        return np.median(stacks, axis=1) * n


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean (Yin et al., 2018), on the sum scale.

    Trims ``ceil(assumed_ratio * n)`` values from each end per
    coordinate and averages the rest.
    """

    def __init__(self, assumed_ratio: float = 0.05):
        if not 0.0 <= assumed_ratio < 0.5:
            raise ValueError("assumed_ratio must lie in [0, 0.5)")
        self.assumed_ratio = assumed_ratio

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self.aggregate_stacks(self._check(grads)[None])[0]

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        n = stacks.shape[1]
        trim = min(math.ceil(self.assumed_ratio * n), (n - 1) // 2)
        if trim == 0:
            return stacks.mean(axis=1) * n
        ordered = np.sort(stacks, axis=1)
        kept = ordered[:, trim : n - trim]
        return kept.mean(axis=1) * n


def _pairwise_sq_dists(flat: np.ndarray) -> np.ndarray:
    """Pairwise squared distances for stacked gradient groups.

    ``flat`` is ``(groups, n, dim)``; the result is ``(groups, n, n)``
    with ``inf`` on each diagonal (a gradient is never its own
    neighbour).  The single distance computation shared by the whole
    Krum family: each grouped call builds it exactly once and every
    selection stage reads from it.  Dispatched through
    :mod:`repro.kernels`, whose contract accumulates every dot product
    sequentially over the feature axis (replacing the earlier batched
    BLAS GEMM, whose blocking no native port could reproduce bit for
    bit).  The per-``d`` accumulation touches each lane independently,
    so each lane's distances remain bit-identical whether the item is
    aggregated alone or inside a thousand-item group — the
    lane-stability property the parity suite
    (``tests/test_batch_defended.py``) asserts per contributor count.
    """
    return kernels.pairwise_sq_dists(flat)


def _krum_scores(dists: np.ndarray, num_malicious: int) -> np.ndarray:
    """Krum score per gradient: sum of its closest squared distances.

    ``dists`` is the precomputed ``(groups, n, n)`` distance tensor;
    each gradient is scored on its ``n - f - 2`` nearest neighbours.
    """
    n = dists.shape[1]
    keep = max(n - num_malicious - 2, 1)
    part = np.partition(dists, kth=keep - 1, axis=2)[:, :, :keep]
    return part.sum(axis=2)


class KrumAggregator(Aggregator):
    """Krum (Blanchard et al., 2017): pick the most central gradient."""

    def __init__(self, assumed_ratio: float = 0.05):
        self.assumed_ratio = assumed_ratio

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self.aggregate_stacks(self._check(grads)[None])[0]

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        groups, n = stacks.shape[:2]
        if n <= 2:
            return stacks.sum(axis=1)
        flat = stacks.reshape(groups, n, -1)
        f = max(1, math.ceil(self.assumed_ratio * n))
        scores = _krum_scores(_pairwise_sq_dists(flat), f)
        winners = np.argmin(scores, axis=1)
        return stacks[np.arange(groups), winners] * n


class MultiKrumAggregator(Aggregator):
    """MultiKrum: drop the 2f least-central gradients, average the rest."""

    def __init__(self, assumed_ratio: float = 0.05):
        self.assumed_ratio = assumed_ratio

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self.aggregate_stacks(self._check(grads)[None])[0]

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        groups, n = stacks.shape[:2]
        if n <= 2:
            return stacks.sum(axis=1)
        flat = stacks.reshape(groups, n, -1)
        f = max(1, math.ceil(self.assumed_ratio * n))
        drop = min(2 * f, n - 1)
        scores = _krum_scores(_pairwise_sq_dists(flat), f)
        kept = np.argsort(scores, axis=1, kind="stable")[:, : n - drop]
        selected = np.take_along_axis(flat, kept[:, :, None], axis=1)
        out = selected.mean(axis=1) * n
        return out.reshape((groups,) + stacks.shape[2:])


class BulyanAggregator(Aggregator):
    """Bulyan (Mhamdi et al., 2018): MultiKrum selection + TrimmedMean."""

    def __init__(self, assumed_ratio: float = 0.05):
        self.assumed_ratio = assumed_ratio
        self._trimmed = TrimmedMeanAggregator(min(assumed_ratio, 0.49))

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self.aggregate_stacks(self._check(grads)[None])[0]

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        groups, n = stacks.shape[:2]
        if n <= 3:
            return stacks.sum(axis=1)
        flat = stacks.reshape(groups, n, -1)
        f = max(1, math.ceil(self.assumed_ratio * n))
        keep = max(n - 2 * f, 2)
        scores = _krum_scores(_pairwise_sq_dists(flat), f)
        selected = np.argsort(scores, axis=1, kind="stable")[:, :keep]
        chosen = np.take_along_axis(flat, selected[:, :, None], axis=1)
        trimmed = self._trimmed.aggregate_stacks(chosen)
        # aggregate_stacks returns robust-mean * keep; rescale to the
        # full contributor count.
        out = trimmed / keep * n
        return out.reshape((groups,) + stacks.shape[2:])
