"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run one experiment (dataset x model x attack x defense) and print
    ER@K / HR@K; optionally save the result JSON and model checkpoint.

``table`` / ``figure``
    Regenerate one of the paper's tables or figures by id (e.g.
    ``table 3``, ``figure 6a``) at the scaled presets.

``sweep``
    Regenerate one or more tables through the parallel sweep
    orchestrator: cells run on a process pool (``--workers``) and
    completed cells are recalled from a content-addressed on-disk
    cache (``--cache-dir``), so re-runs skip finished work and
    interrupted sweeps resume.

``audit``
    Run one attacked experiment with the server audit log enabled and
    print the Eq. 11 prediction vs the measured poison share for every
    attacked item.

``fsck``
    Walk a cache/checkpoint/result tree and verify every digest-
    stamped file; report verified / legacy / corrupt counts, and with
    ``--repair`` move corrupt files aside (quarantine) so the next
    sweep re-executes them instead of tripping over them.

``list``
    Show the available datasets, attacks, defenses and experiment ids.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import Callable, Sequence

from repro.attacks.registry import ATTACK_NAMES
from repro.defenses.registry import DEFENSE_NAMES
from repro.experiments import (
    experiment,
    fig3_longtail,
    fig4_delta_norm,
    fig5_ratio_and_n,
    fig6a_trend,
    fig6b_cost,
    fig7_sample_ratio,
    table2_pkl_ucr,
    table3_attacks,
    table4_defenses,
    table5_top_k,
    table6_ablation,
    table7_system_settings,
    table9_multi_target,
    table10_learning_rates,
    table11_bpr_loss,
)
from repro.experiments.presets import EXPERIMENT_SCALES
from repro.federated.simulation import FederatedSimulation

__all__ = ["main"]

_TABLES: dict[str, Callable] = {
    "2": table2_pkl_ucr,
    "3": table3_attacks,
    "4": table4_defenses,
    "5": table5_top_k,
    "6": table6_ablation,
    "7": table7_system_settings,
    "9": table9_multi_target,
    "10": table10_learning_rates,
    "11": table11_bpr_loss,
}

_FIGURES: dict[str, Callable] = {
    "3": fig3_longtail,
    "4": fig4_delta_norm,
    "5": fig5_ratio_and_n,
    "6a": fig6a_trend,
    "6b": fig6b_cost,
    "7": fig7_sample_ratio,
}


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


#: ``--faults`` spec keys → :class:`repro.config.FaultConfig` fields.
#: Full field names are accepted too.
_FAULT_KEYS = {
    "dropout": "dropout_rate",
    "straggler": "straggler_rate",
    "delay": "straggler_max_delay",
    "discount": "staleness_discount",
    "corruption": "corruption_rate",
    "mode": "corruption_mode",
    "scale": "corruption_scale",
    "quorum": "min_quorum",
    "max-norm": "max_upload_norm",
}

#: ``--async`` spec keys → :class:`repro.config.AsyncConfig` fields.
_ASYNC_KEYS = {
    "traffic": "traffic",
    "rate": "arrival_rate",
    "trace": "trace_offsets",
    "compute": "compute_mean",
    "network": "network_mean",
    "churn": "churn_rate",
    "k": "buffer_size",
    "buffer": "buffer_size",
    "interval": "round_interval",
    "deadline": "round_deadline",
    "discount": "staleness_discount",
    "max-stale": "max_staleness",
}


def _convert_spec_value(type_name: str, raw: str, key: str):
    """Convert one key=value spec string to a dataclass field's type."""
    if type_name == "str":
        return raw
    if type_name == "int":
        return int(raw)
    if type_name == "float":
        return float(raw)
    if type_name == "bool":
        lowered = raw.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise argparse.ArgumentTypeError(
            f"{key}={raw!r} is not a boolean (use true/false)"
        )
    if type_name == "tuple[float, ...]":
        # Colon-separated so the value survives the comma-separated
        # spec, e.g. trace=0.0:0.5:1.25.
        return tuple(float(piece) for piece in raw.split(":") if piece)
    raise argparse.ArgumentTypeError(
        f"{key!r} cannot be set from the command line"
    )  # pragma: no cover - all current fields are convertible


def _parse_spec(spec: str, cls, aliases: dict[str, str], label: str) -> dict:
    """Parse a comma-separated key=value spec into ``cls`` kwargs.

    Keys may be short aliases or full field names.  Unknown keys fail
    with a "did you mean" suggestion and the full list of valid keys —
    a typo must never silently fall through to a bare ``TypeError``.
    """
    import difflib

    fields = {f.name: f for f in dataclasses.fields(cls)}
    valid = sorted(set(aliases) | set(fields))
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"{label} spec entry {part!r} is not key=value"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        name = aliases.get(key, key)
        if name not in fields:
            close = difflib.get_close_matches(key, valid, n=1)
            hint = f" — did you mean {close[0]!r}?" if close else ""
            raise argparse.ArgumentTypeError(
                f"unknown {label} key {key!r}{hint} "
                f"(valid keys: {', '.join(valid)})"
            )
        try:
            kwargs[name] = _convert_spec_value(fields[name].type, raw.strip(), key)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{label} key {key!r}: cannot parse value {raw.strip()!r} "
                f"as {fields[name].type}"
            ) from None
    return kwargs


def parse_fault_spec(spec: str):
    """Parse a ``--faults`` key=value spec into a :class:`FaultConfig`."""
    from repro.config import FaultConfig

    kwargs = _parse_spec(spec, FaultConfig, _FAULT_KEYS, "fault")
    try:
        return FaultConfig(**kwargs)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def parse_async_spec(spec: str):
    """Parse an ``--async`` key=value spec into an :class:`AsyncConfig`.

    The flag's presence opts into the asynchronous engine, so
    ``enabled`` is always forced on; an empty spec (``--async ''``)
    yields the degenerate configuration that reproduces the
    synchronous engine bit for bit.
    """
    from repro.config import AsyncConfig

    kwargs = _parse_spec(spec, AsyncConfig, _ASYNC_KEYS, "async")
    kwargs["enabled"] = True
    try:
        return AsyncConfig(**kwargs)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIECK reproduction harness (ICDE 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("--dataset", default="ml-100k", choices=sorted(EXPERIMENT_SCALES))
    run.add_argument("--model", default="mf", choices=("mf", "ncf"))
    run.add_argument("--attack", default="none", choices=ATTACK_NAMES)
    run.add_argument("--defense", default="none", choices=DEFENSE_NAMES)
    run.add_argument("--rounds", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--eval-every", type=int, default=0)
    run.add_argument("--save-result", metavar="PATH", default=None)
    run.add_argument("--save-model", metavar="PATH", default=None)
    run.add_argument(
        "--faults",
        metavar="SPEC",
        type=parse_fault_spec,
        default=None,
        help="fault model as key=value pairs, e.g. "
        "'dropout=0.2,straggler=0.1,corruption=0.05,mode=nan,quorum=8' "
        f"(keys: {', '.join(sorted(_FAULT_KEYS))})",
    )
    run.add_argument(
        "--async",
        dest="async_spec",
        metavar="SPEC",
        type=parse_async_spec,
        default=None,
        help="run the event-driven asynchronous engine; key=value pairs "
        "e.g. 'traffic=poisson,rate=8,network=0.4,churn=0.1,k=16,"
        "deadline=1.5,discount=0.5,max-stale=4' "
        f"(keys: {', '.join(sorted(set(_ASYNC_KEYS)))}; an empty spec "
        "is the degenerate config that matches the synchronous engine)",
    )
    run.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="split benign client state into N shared-memory shards "
        "(pure throughput knob: the trajectory is bit-identical)",
    )
    run.add_argument(
        "--round-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="compute benign rounds on N worker processes attached to "
        "the shard segments (requires --shards; bit-identical)",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="write atomic versioned checkpoints here and resume from the newest",
    )
    run.add_argument(
        "--checkpoint-every",
        type=_non_negative_int,
        default=10,
        metavar="N",
        help="rounds between checkpoints (with --checkpoint-dir; default 10)",
    )
    run.add_argument(
        "--checkpoint-keep",
        type=_positive_int,
        default=3,
        metavar="N",
        help="retain only the newest N checkpoints (default 3)",
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="ignore an existing checkpoint and restart from round 0",
    )

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("id", choices=sorted(_TABLES, key=lambda x: int(x)))

    sweep = sub.add_parser(
        "sweep",
        help="regenerate tables on the parallel sweep orchestrator",
    )
    # No argparse choices= here: nargs="*" + choices rejects the empty
    # default on Python <= 3.11 (bpo-27227); ids are validated in
    # _command_sweep instead.
    sweep.add_argument(
        "ids",
        nargs="*",
        metavar="id",
        help=f"table ids to regenerate (default: all of "
        f"{', '.join(sorted(_TABLES, key=lambda x: int(x)))})",
    )
    sweep.add_argument(
        "--workers",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 0/1 = sequential)",
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="content-addressed result cache (enables skip/resume)",
    )
    sweep.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=2,
        metavar="N",
        help="pool respawns granted to crashed/stalled cells (default 2)",
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare the pool hung after this long with no completion",
    )
    sweep.add_argument(
        "--backend",
        choices=("local", "shared"),
        default="local",
        help="'local' = this process only (inline or pool); 'shared' = "
        "cooperate with other workers pointed at the same --cache-dir "
        "through lease files (requires --cache-dir)",
    )
    sweep.add_argument(
        "--owner",
        metavar="ID",
        default=None,
        help="worker identity recorded in lease files (--backend shared; "
        "default: hostname-pid)",
    )
    sweep.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="a lease not heartbeated for this long is considered "
        "abandoned and reclaimed (--backend shared; default 30)",
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="list the cell grid (cached vs pending) without executing",
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", choices=sorted(_FIGURES))
    figure.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII plot (figures 6a, 6b and 7)",
    )

    audit = sub.add_parser(
        "audit", help="audit an attacked run against the Eq. 11 theory"
    )
    audit.add_argument("--dataset", default="ml-100k", choices=sorted(EXPERIMENT_SCALES))
    audit.add_argument("--model", default="mf", choices=("mf", "ncf"))
    audit.add_argument(
        "--attack",
        default="pieck_uea",
        choices=tuple(n for n in ATTACK_NAMES if n != "none"),
    )
    audit.add_argument("--defense", default="none", choices=DEFENSE_NAMES)
    audit.add_argument("--rounds", type=int, default=None)
    audit.add_argument("--seed", type=int, default=0)

    fsck = sub.add_parser(
        "fsck", help="verify cache/checkpoint/result file integrity"
    )
    fsck.add_argument(
        "path", help="file or directory tree to verify (e.g. a --cache-dir)"
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt files (move aside as *.quarantined) so "
        "later runs re-execute them",
    )

    sub.add_parser("list", help="list datasets, attacks, defenses, experiments")
    return parser


def _runtime_stats_table(fault_stats, async_stats) -> str | None:
    """One aligned table of fault + async runtime counters, or ``None``.

    Printed after a ``run`` whenever either subsystem did anything, so
    degraded rounds are visible on stdout, not only in the saved JSON.
    """
    groups = []
    if fault_stats.any_fault:
        groups.append(("faults", fault_stats.to_dict()))
    if async_stats.any_async:
        groups.append(("async", async_stats.to_dict()))
    if not groups:
        return None
    rows = [
        (group, name.replace("_", " "), value)
        for group, counters in groups
        for name, value in counters.items()
    ]
    name_width = max(len(name) for _, name, _ in rows)
    value_width = max(len(str(value)) for _, _, value in rows)
    lines = ["runtime counters:"]
    for group, name, value in rows:
        lines.append(f"  {group:<7} {name:<{name_width}} {value:>{value_width}}")
    return "\n".join(lines)


def _command_run(args: argparse.Namespace) -> int:
    config = experiment(
        args.dataset,
        args.model,
        attack=args.attack,
        defense=args.defense,
        seed=args.seed,
        rounds=args.rounds,
        eval_every=args.eval_every,
    )
    if args.faults is not None:
        config = dataclasses.replace(config, faults=args.faults)
    if args.async_spec is not None:
        config = dataclasses.replace(config, asynchrony=args.async_spec)
    if args.round_workers is not None and args.shards is None:
        print("--round-workers requires --shards", file=sys.stderr)
        return 2
    if args.shards is not None:
        from repro.config import ShardingConfig

        config = dataclasses.replace(
            config,
            sharding=ShardingConfig(
                num_shards=args.shards,
                round_workers=args.round_workers or 0,
            ),
        )
    sim = FederatedSimulation(config)
    print(
        f"Running {args.attack} vs {args.defense} on {args.dataset} "
        f"({args.model.upper()}-FRS, {sim.dataset.num_users} users, "
        f"{sim.dataset.num_items} items) ..."
    )
    result = sim.run(
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        resume=not args.fresh,
    )
    for record in result.history:
        print(
            f"  round {record.round_idx:4d}: "
            f"ER@10 = {100 * record.exposure:6.2f}%  "
            f"HR@10 = {100 * record.hit_ratio:5.2f}%"
        )
    table = _runtime_stats_table(result.fault_stats, result.async_stats)
    if table:
        print(table)
    if args.save_result:
        from repro.persistence import save_result

        save_result(result, args.save_result)
        print(f"result saved to {args.save_result}")
    if args.save_model:
        from repro.persistence import save_model

        save_model(sim.model, args.save_model)
        print(f"model checkpoint saved to {args.save_model}")
    sim.close()
    return 0


def _plot_figure(fig_id: str, table) -> str | None:
    """ASCII rendering of a regenerated figure, when one makes sense."""
    from repro.experiments.plotting import render_figure

    return render_figure(fig_id, table)


def _command_audit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import poison_share_summary, theory_vs_measured

    config = experiment(
        args.dataset,
        args.model,
        attack=args.attack,
        defense=args.defense,
        seed=args.seed,
        rounds=args.rounds,
    )
    sim = FederatedSimulation(config, audit=True)
    print(
        f"Auditing {args.attack} vs {args.defense} on {args.dataset} "
        f"({args.model.upper()}-FRS) ..."
    )
    result = sim.run()
    print(
        f"final ER@10 = {100 * result.exposure:6.2f}%  "
        f"HR@10 = {100 * result.hit_ratio:5.2f}%\n"
    )
    print(f"{'item':>6} {'Eq.11 predicted':>16} {'measured':>9} {'mass share':>11}")
    for item, predicted, measured in theory_vs_measured(
        sim.audit_log, sim.dataset, config.attack.malicious_ratio
    ):
        mass = poison_share_summary(sim.audit_log, item).mean_mass_share
        print(f"{item:>6} {predicted:16.3f} {measured:9.3f} {mass:11.3f}")
    return 0


def _unknown_table_ids(ids: Sequence[str]) -> str | None:
    """Error text for unknown table ids, with a did-you-mean hint."""
    import difflib

    unknown = [table_id for table_id in ids if table_id not in _TABLES]
    if not unknown:
        return None
    valid = sorted(_TABLES, key=lambda x: int(x))
    hints = []
    for table_id in unknown:
        close = difflib.get_close_matches(table_id, valid, n=1)
        # difflib struggles with one-character ids; strip obvious
        # decorations ("table3", "t3", "#3") as a fallback.
        if not close:
            stripped = table_id.lstrip("table#t ").strip()
            if stripped in _TABLES:
                close = [stripped]
        hints.append(
            f"{table_id!r}" + (f" — did you mean {close[0]!r}?" if close else "")
        )
    return (
        f"unknown table id(s): {'; '.join(hints)} "
        f"(choose from {', '.join(valid)})"
    )


def _print_dry_run_plan(table_id: str, plan: list[dict]) -> None:
    """Render one table's cell grid: cached vs pending, no execution."""
    cached = sum(1 for entry in plan if entry["cached"])
    print(
        f"table {table_id}: {len(plan)} cell(s) — "
        f"{cached} cached, {len(plan) - cached} pending"
    )
    for entry in plan:
        state = "cached " if entry["cached"] else "pending"
        key = entry["key"][:12] if entry["key"] else "-"
        print(
            f"  [{state}] cell {entry['index']:3d}  kind={entry['kind']:<8} "
            f"dataset={entry['dataset_key']:<10} key={key}"
        )


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import (
        SharedCacheBackend,
        SweepDryRun,
        SweepRunner,
    )

    error = _unknown_table_ids(args.ids)
    if error:
        print(error, file=sys.stderr)
        raise SystemExit(2)
    ids = list(args.ids) or sorted(_TABLES, key=lambda x: int(x))
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    backend = None
    if args.backend == "shared":
        if not args.cache_dir:
            print(
                "--backend shared coordinates through the cache directory; "
                "pass --cache-dir",
                file=sys.stderr,
            )
            raise SystemExit(2)
        backend = SharedCacheBackend(owner=args.owner, lease_ttl=args.lease_ttl)
    runner = SweepRunner(
        workers=workers,
        cache_dir=args.cache_dir,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
        backend=backend,
        dry_run=args.dry_run,
    )
    if args.backend == "shared":
        mode = f"shared cache, worker {backend.owner}"
    elif workers >= 2:
        mode = f"{workers} workers"
    else:
        mode = "sequential"
    cache = args.cache_dir if args.cache_dir else "disabled"
    action = "dry run" if args.dry_run else "sweep"
    print(f"{action}: tables {', '.join(ids)} ({mode}, cache: {cache})\n")
    if args.dry_run:
        total = cached = 0
        for table_id in ids:
            try:
                _TABLES[table_id](runner=runner)
            except SweepDryRun as plan:
                _print_dry_run_plan(table_id, plan.plan)
                total += len(plan.plan)
                cached += sum(1 for entry in plan.plan if entry["cached"])
            print()
        print(
            f"dry run: {total} cell(s) total — {cached} cached, "
            f"{total - cached} pending; nothing executed"
        )
        return 0
    for table_id in ids:
        print(_TABLES[table_id](runner=runner))
        print()
    stats = runner.total_stats
    line = (
        f"sweep finished: {stats.total} cells — "
        f"{stats.cache_hits} from cache, {stats.executed} executed"
    )
    if stats.peer_served:
        line += f", {stats.peer_served} served by peer workers"
    if stats.retries:
        line += f", {stats.retries} retried after worker failures"
    if stats.reclaimed:
        line += f", {stats.reclaimed} leases reclaimed from dead workers"
    if stats.quarantined:
        line += f", {stats.quarantined} corrupt entries quarantined"
    if args.cache_dir:
        line += f" (cache hit ratio {100 * stats.hit_ratio:.0f}%)"
    print(line)
    return 0


def _command_fsck(args: argparse.Namespace) -> int:
    from repro.persistence import fsck_paths

    try:
        report = fsck_paths(args.path, repair=args.repair)
    except FileNotFoundError:
        print(f"fsck: {args.path} does not exist", file=sys.stderr)
        raise SystemExit(2) from None
    print(report.summary())
    for path in report.corrupt_paths:
        print(f"  corrupt: {path}")
    for name in report.shm_orphan_names:
        print(f"  orphaned shm segment: {name}")
    if report.shm_orphans and not args.repair:
        print("  (run with --repair to unlink orphaned segments)")
    return 0 if report.clean else 1


def _command_list() -> int:
    print("datasets :", ", ".join(sorted(EXPERIMENT_SCALES)))
    print("attacks  :", ", ".join(ATTACK_NAMES))
    print("defenses :", ", ".join(DEFENSE_NAMES))
    print("tables   :", ", ".join(sorted(_TABLES, key=lambda x: int(x))))
    print("figures  :", ", ".join(sorted(_FIGURES)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table":
        print(_TABLES[args.id]())
        return 0
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "figure":
        table = _FIGURES[args.id]()
        print(table)
        if args.plot:
            rendering = _plot_figure(args.id, table)
            if rendering is None:
                print(f"(no ASCII plot available for figure {args.id})")
            else:
                print()
                print(rendering)
        return 0
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "fsck":
        return _command_fsck(args)
    if args.command == "list":
        return _command_list()
    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
