"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run one experiment (dataset x model x attack x defense) and print
    ER@K / HR@K; optionally save the result JSON and model checkpoint.

``table`` / ``figure``
    Regenerate one of the paper's tables or figures by id (e.g.
    ``table 3``, ``figure 6a``) at the scaled presets.

``sweep``
    Regenerate one or more tables through the parallel sweep
    orchestrator: cells run on a process pool (``--workers``) and
    completed cells are recalled from a content-addressed on-disk
    cache (``--cache-dir``), so re-runs skip finished work and
    interrupted sweeps resume.

``audit``
    Run one attacked experiment with the server audit log enabled and
    print the Eq. 11 prediction vs the measured poison share for every
    attacked item.

``list``
    Show the available datasets, attacks, defenses and experiment ids.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import Callable, Sequence

from repro.attacks.registry import ATTACK_NAMES
from repro.defenses.registry import DEFENSE_NAMES
from repro.experiments import (
    experiment,
    fig3_longtail,
    fig4_delta_norm,
    fig5_ratio_and_n,
    fig6a_trend,
    fig6b_cost,
    fig7_sample_ratio,
    table2_pkl_ucr,
    table3_attacks,
    table4_defenses,
    table5_top_k,
    table6_ablation,
    table7_system_settings,
    table9_multi_target,
    table10_learning_rates,
    table11_bpr_loss,
)
from repro.experiments.presets import EXPERIMENT_SCALES
from repro.federated.simulation import FederatedSimulation

__all__ = ["main"]

_TABLES: dict[str, Callable] = {
    "2": table2_pkl_ucr,
    "3": table3_attacks,
    "4": table4_defenses,
    "5": table5_top_k,
    "6": table6_ablation,
    "7": table7_system_settings,
    "9": table9_multi_target,
    "10": table10_learning_rates,
    "11": table11_bpr_loss,
}

_FIGURES: dict[str, Callable] = {
    "3": fig3_longtail,
    "4": fig4_delta_norm,
    "5": fig5_ratio_and_n,
    "6a": fig6a_trend,
    "6b": fig6b_cost,
    "7": fig7_sample_ratio,
}


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


#: ``--faults`` spec keys → :class:`repro.config.FaultConfig` fields.
#: Full field names are accepted too.
_FAULT_KEYS = {
    "dropout": "dropout_rate",
    "straggler": "straggler_rate",
    "delay": "straggler_max_delay",
    "discount": "staleness_discount",
    "corruption": "corruption_rate",
    "mode": "corruption_mode",
    "scale": "corruption_scale",
    "quorum": "min_quorum",
    "max-norm": "max_upload_norm",
}


def parse_fault_spec(spec: str):
    """Parse a ``--faults`` key=value spec into a :class:`FaultConfig`."""
    from repro.config import FaultConfig

    fields = {f.name for f in dataclasses.fields(FaultConfig)}
    kwargs = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"fault spec entry {part!r} is not key=value"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        name = _FAULT_KEYS.get(key, key)
        if name not in fields:
            raise argparse.ArgumentTypeError(
                f"unknown fault key {key!r} (choose from "
                f"{', '.join(sorted(_FAULT_KEYS))})"
            )
        raw = raw.strip()
        if name == "corruption_mode":
            kwargs[name] = raw
        elif name in ("straggler_max_delay", "min_quorum"):
            kwargs[name] = int(raw)
        else:
            kwargs[name] = float(raw)
    try:
        return FaultConfig(**kwargs)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIECK reproduction harness (ICDE 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("--dataset", default="ml-100k", choices=sorted(EXPERIMENT_SCALES))
    run.add_argument("--model", default="mf", choices=("mf", "ncf"))
    run.add_argument("--attack", default="none", choices=ATTACK_NAMES)
    run.add_argument("--defense", default="none", choices=DEFENSE_NAMES)
    run.add_argument("--rounds", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--eval-every", type=int, default=0)
    run.add_argument("--save-result", metavar="PATH", default=None)
    run.add_argument("--save-model", metavar="PATH", default=None)
    run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault model as key=value pairs, e.g. "
        "'dropout=0.2,straggler=0.1,corruption=0.05,mode=nan,quorum=8' "
        f"(keys: {', '.join(sorted(_FAULT_KEYS))})",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="write an atomic rolling checkpoint here and resume from it",
    )
    run.add_argument(
        "--checkpoint-every",
        type=_non_negative_int,
        default=10,
        metavar="N",
        help="rounds between checkpoints (with --checkpoint-dir; default 10)",
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="ignore an existing checkpoint and restart from round 0",
    )

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("id", choices=sorted(_TABLES, key=lambda x: int(x)))

    sweep = sub.add_parser(
        "sweep",
        help="regenerate tables on the parallel sweep orchestrator",
    )
    # No argparse choices= here: nargs="*" + choices rejects the empty
    # default on Python <= 3.11 (bpo-27227); ids are validated in
    # _command_sweep instead.
    sweep.add_argument(
        "ids",
        nargs="*",
        metavar="id",
        help=f"table ids to regenerate (default: all of "
        f"{', '.join(sorted(_TABLES, key=lambda x: int(x)))})",
    )
    sweep.add_argument(
        "--workers",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 0/1 = sequential)",
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="content-addressed result cache (enables skip/resume)",
    )
    sweep.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=2,
        metavar="N",
        help="pool respawns granted to crashed/stalled cells (default 2)",
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare the pool hung after this long with no completion",
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", choices=sorted(_FIGURES))
    figure.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII plot (figures 6a, 6b and 7)",
    )

    audit = sub.add_parser(
        "audit", help="audit an attacked run against the Eq. 11 theory"
    )
    audit.add_argument("--dataset", default="ml-100k", choices=sorted(EXPERIMENT_SCALES))
    audit.add_argument("--model", default="mf", choices=("mf", "ncf"))
    audit.add_argument(
        "--attack",
        default="pieck_uea",
        choices=tuple(n for n in ATTACK_NAMES if n != "none"),
    )
    audit.add_argument("--defense", default="none", choices=DEFENSE_NAMES)
    audit.add_argument("--rounds", type=int, default=None)
    audit.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list datasets, attacks, defenses, experiments")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = experiment(
        args.dataset,
        args.model,
        attack=args.attack,
        defense=args.defense,
        seed=args.seed,
        rounds=args.rounds,
        eval_every=args.eval_every,
    )
    if args.faults:
        config = dataclasses.replace(config, faults=parse_fault_spec(args.faults))
    sim = FederatedSimulation(config)
    print(
        f"Running {args.attack} vs {args.defense} on {args.dataset} "
        f"({args.model.upper()}-FRS, {sim.dataset.num_users} users, "
        f"{sim.dataset.num_items} items) ..."
    )
    result = sim.run(
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=not args.fresh,
    )
    for record in result.history:
        print(
            f"  round {record.round_idx:4d}: "
            f"ER@10 = {100 * record.exposure:6.2f}%  "
            f"HR@10 = {100 * record.hit_ratio:5.2f}%"
        )
    stats = result.fault_stats
    if stats.any_fault:
        print(
            "faults: "
            f"{stats.dropped_uploads} dropped, "
            f"{stats.deferred_uploads} deferred "
            f"({stats.stale_applied} applied stale, {stats.stale_pending} pending), "
            f"{stats.corrupted_uploads} corrupted, "
            f"{stats.rejected_uploads} rejected by the server gate, "
            f"{stats.quorum_failed_rounds} rounds below quorum"
        )
    if args.save_result:
        from repro.persistence import save_result

        save_result(result, args.save_result)
        print(f"result saved to {args.save_result}")
    if args.save_model:
        from repro.persistence import save_model

        save_model(sim.model, args.save_model)
        print(f"model checkpoint saved to {args.save_model}")
    return 0


def _plot_figure(fig_id: str, table) -> str | None:
    """ASCII rendering of a regenerated figure, when one makes sense."""
    from repro.experiments.plotting import render_figure

    return render_figure(fig_id, table)


def _command_audit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import poison_share_summary, theory_vs_measured

    config = experiment(
        args.dataset,
        args.model,
        attack=args.attack,
        defense=args.defense,
        seed=args.seed,
        rounds=args.rounds,
    )
    sim = FederatedSimulation(config, audit=True)
    print(
        f"Auditing {args.attack} vs {args.defense} on {args.dataset} "
        f"({args.model.upper()}-FRS) ..."
    )
    result = sim.run()
    print(
        f"final ER@10 = {100 * result.exposure:6.2f}%  "
        f"HR@10 = {100 * result.hit_ratio:5.2f}%\n"
    )
    print(f"{'item':>6} {'Eq.11 predicted':>16} {'measured':>9} {'mass share':>11}")
    for item, predicted, measured in theory_vs_measured(
        sim.audit_log, sim.dataset, config.attack.malicious_ratio
    ):
        mass = poison_share_summary(sim.audit_log, item).mean_mass_share
        print(f"{item:>6} {predicted:16.3f} {measured:9.3f} {mass:11.3f}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import SweepRunner

    unknown = [table_id for table_id in args.ids if table_id not in _TABLES]
    if unknown:
        print(
            f"unknown table id(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(_TABLES, key=lambda x: int(x)))})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    ids = list(args.ids) or sorted(_TABLES, key=lambda x: int(x))
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    runner = SweepRunner(
        workers=workers,
        cache_dir=args.cache_dir,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
    )
    mode = f"{workers} workers" if workers >= 2 else "sequential"
    cache = args.cache_dir if args.cache_dir else "disabled"
    print(
        f"sweep: tables {', '.join(ids)} ({mode}, cache: {cache})\n"
    )
    for table_id in ids:
        print(_TABLES[table_id](runner=runner))
        print()
    stats = runner.total_stats
    line = (
        f"sweep finished: {stats.total} cells — "
        f"{stats.cache_hits} from cache, {stats.executed} executed"
    )
    if stats.retries:
        line += f", {stats.retries} retried after worker failures"
    if args.cache_dir:
        line += f" (cache hit ratio {100 * stats.hit_ratio:.0f}%)"
    print(line)
    return 0


def _command_list() -> int:
    print("datasets :", ", ".join(sorted(EXPERIMENT_SCALES)))
    print("attacks  :", ", ".join(ATTACK_NAMES))
    print("defenses :", ", ".join(DEFENSE_NAMES))
    print("tables   :", ", ".join(sorted(_TABLES, key=lambda x: int(x))))
    print("figures  :", ", ".join(sorted(_FIGURES)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table":
        print(_TABLES[args.id]())
        return 0
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "figure":
        table = _FIGURES[args.id]()
        print(table)
        if args.plot:
            rendering = _plot_figure(args.id, table)
            if rendering is None:
                print(f"(no ASCII plot available for figure {args.id})")
            else:
                print()
                print(rendering)
        return 0
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "list":
        return _command_list()
    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
