"""Evaluation metrics: exposure ratio, hit ratio, distribution closeness."""

from repro.metrics.divergence import (
    pairwise_kl,
    softmax_kl,
    user_coverage_ratio,
)
from repro.metrics.extra import exposure_distribution, exposure_gini, ndcg_at_k
from repro.metrics.ranking import exposure_ratio_at_k, hit_ratio_at_k, top_k_items

__all__ = [
    "exposure_ratio_at_k",
    "hit_ratio_at_k",
    "top_k_items",
    "softmax_kl",
    "ndcg_at_k",
    "exposure_distribution",
    "exposure_gini",
    "pairwise_kl",
    "user_coverage_ratio",
]
