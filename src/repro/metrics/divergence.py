"""Distribution-closeness metrics: softmax-KL, PKL (Eq. 9), UCR.

The paper treats an embedding vector as a categorical distribution via
softmax and measures KL divergence between such distributions. PKL
(average pairwise KL) quantifies how closely the mined popular items'
embedding distribution mirrors the user-embedding distribution
(Property 3, Table II); UCR measures how many users at least one mined
popular item reaches.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import InteractionDataset

__all__ = ["softmax", "softmax_kl", "softmax_kl_grad_q", "pairwise_kl", "user_coverage_ratio"]


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise (or vector) softmax, numerically stable."""
    shifted = x - np.max(x, axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)


def softmax_kl(p_vec: np.ndarray, q_vec: np.ndarray) -> float:
    """``KL(softmax(p_vec) || softmax(q_vec))`` for two embeddings."""
    p = softmax(p_vec)
    q = softmax(q_vec)
    return float(np.sum(p * (np.log(p) - np.log(q))))


def softmax_kl_grad_q(p_vec: np.ndarray, q_vec: np.ndarray) -> np.ndarray:
    """Gradient of :func:`softmax_kl` w.r.t. the *second* embedding.

    With ``q = softmax(q_vec)`` and ``p`` fixed, the analytic gradient
    collapses to ``q - p`` (the classic cross-entropy identity); this is
    what the defense's Re2 term backpropagates into the user embedding.
    """
    return softmax(q_vec) - softmax(p_vec)


def pairwise_kl(p_matrix: np.ndarray, q_matrix: np.ndarray) -> float:
    """Average pairwise KL divergence between two embedding sets (Eq. 9).

    ``PKL(V_P, U_P) = mean over (v, u) pairs of KL(softmax(v) || softmax(u))``.
    Vectorised over the full cross product.
    """
    if len(p_matrix) == 0 or len(q_matrix) == 0:
        raise ValueError("both embedding sets must be non-empty")
    p = softmax(p_matrix)  # (a, d)
    q = softmax(q_matrix)  # (b, d)
    log_p = np.log(p)
    log_q = np.log(q)
    entropy_term = np.sum(p * log_p, axis=1)  # (a,)
    cross = p @ log_q.T  # (a, b)
    return float(np.mean(entropy_term[:, None] - cross))


def user_coverage_ratio(dataset: InteractionDataset, popular_items: np.ndarray) -> float:
    """UCR: fraction of users who interacted with >= 1 mined popular item."""
    popular = np.atleast_1d(np.asarray(popular_items, dtype=np.int64))
    if popular.size == 0:
        return 0.0
    covered = len(dataset.covered_users(popular))
    return covered / max(dataset.num_users, 1)
