"""Ranking metrics: ER@K (Eq. 3) and HR@K (leave-one-out protocol).

ER@K measures attack success: the fraction of eligible benign users
whose top-K recommendation list contains a target item, averaged over
targets. HR@K measures recommendation quality: whether the held-out
test item ranks in the top-K against sampled negatives (NCF protocol).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import InteractionDataset
from repro.datasets.sampling import _accept_draw
from repro.rng import spawn_batch

__all__ = [
    "top_k_items",
    "exposure_counts_at_k",
    "exposure_ratio_from_counts",
    "exposure_ratio_at_k",
    "hit_counts_at_k",
    "hit_ratio_from_counts",
    "hit_ratio_at_k",
    "sample_eval_negatives",
]


def top_k_items(scores: np.ndarray, train_mask: np.ndarray, k: int) -> np.ndarray:
    """Per-user top-K uninteracted items from a score matrix.

    ``scores`` is (U, m) logits; training interactions are excluded from
    recommendation (users are only recommended new items). Returns an
    (U, k) array of item ids; slots beyond a user's recommendable pool
    (when K exceeds it) hold the sentinel ``-1``.
    """
    if scores.shape != train_mask.shape:
        raise ValueError("scores and train_mask shapes differ")
    masked = np.where(train_mask, -np.inf, scores)
    k = min(k, scores.shape[1])
    part = np.argpartition(-masked, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(masked, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    top = np.take_along_axis(part, order, axis=1)
    # Never recommend a masked item, even when K exceeds the pool.
    top_scores = np.take_along_axis(masked, top, axis=1)
    top[np.isneginf(top_scores)] = -1
    return top


def exposure_counts_at_k(
    scores: np.ndarray,
    train_mask: np.ndarray,
    target_items: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-target ``(hits, eligible)`` counts over one block of users.

    The streaming building block of ER@K: counts are integers, so
    accumulating them over user blocks and dividing once is
    bit-identical to evaluating the whole user matrix at once —
    ``hit.mean()`` over booleans *is* the same integer division.
    """
    target_items = np.atleast_1d(np.asarray(target_items))
    if len(target_items) == 0:
        raise ValueError("no target items given")
    tops = top_k_items(scores, train_mask, k)
    hits = np.empty(len(target_items), dtype=np.int64)
    eligible = np.empty(len(target_items), dtype=np.int64)
    for row, target in enumerate(target_items):
        eligible_users = ~train_mask[:, target]
        eligible[row] = int(eligible_users.sum())
        hits[row] = int((tops[eligible_users] == target).any(axis=1).sum())
    return hits, eligible


def exposure_ratio_from_counts(
    hits: np.ndarray, eligible: np.ndarray
) -> float:
    """ER@K from accumulated per-target counts.

    A target with no eligible users contributes 0.0, matching the
    dense reference; the single place the convention lives.
    """
    ratios = np.where(eligible > 0, hits / np.maximum(eligible, 1), 0.0)
    return float(np.mean(ratios))


def exposure_ratio_at_k(
    scores: np.ndarray,
    train_mask: np.ndarray,
    target_items: np.ndarray,
    k: int,
) -> float:
    """ER@K (Eq. 3), averaged over target items.

    For each target ``v_j``: the fraction of benign users who have *not*
    interacted with ``v_j`` whose top-K list contains ``v_j``. Rows of
    ``scores`` should cover benign users only.
    """
    return exposure_ratio_from_counts(
        *exposure_counts_at_k(scores, train_mask, target_items, k)
    )


def sample_eval_negatives(
    dataset: InteractionDataset, num_negatives: int, seed: int
) -> list[np.ndarray]:
    """Fixed per-user negative samples for HR@K evaluation.

    The NCF protocol ranks the held-out test item against ``num_negatives``
    items the user has not interacted with. Sampling once (deterministic
    in the seed) keeps HR@K comparable across rounds and methods.

    Each user still owns its private labelled RNG stream
    (``spawn(seed, "eval-neg", user)``, derived for all users at once
    via :func:`~repro.rng.spawn_batch`), but the rejection filtering is
    NumPy-vectorised per draw instead of walking draws element by
    element through Python sets — the same accepted sequence, and
    therefore bit-identical negatives, at a fraction of the set-up
    cost on production user counts.
    """
    if num_negatives <= 0:
        # HR evaluation disabled (million-user throughput runs): skip
        # spawning a per-user RNG for every user.  One shared empty
        # array keeps the per-user list O(pointers).
        empty = np.empty(0, dtype=np.int64)
        return [empty] * dataset.num_users
    negatives: list[np.ndarray] = []
    rngs = spawn_batch(seed, ("eval-neg",), np.arange(dataset.num_users))
    excluded = np.zeros(dataset.num_items, dtype=bool)  # shared scratch buffer
    for user, rng in enumerate(rngs):
        positives = dataset.train_pos[user]
        test_item = int(dataset.test_items[user])
        # The reference banned set is positives | {test_item}; a held-out
        # (or absent, -1) test item is never a positive, so its only
        # effect on the pool size is the extra banned entry.
        banned_size = len(positives) + (0 if (positives == test_item).any() else 1)
        pool_size = dataset.num_items - banned_size
        count = min(num_negatives, max(pool_size, 0))
        if count <= 0:
            negatives.append(np.empty(0, dtype=np.int64))
            continue
        excluded[positives] = True
        if test_item >= 0:
            excluded[test_item] = True
        chunks: list[np.ndarray] = []
        need = count
        while need > 0:
            draw = rng.integers(0, dataset.num_items, size=max(2 * count, 8))
            fresh = _accept_draw(draw, excluded)[:need]
            chunks.append(fresh)
            need -= len(fresh)
            if need > 0:
                excluded[fresh] = True
        chosen = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        excluded[positives] = False
        if test_item >= 0:
            excluded[test_item] = False
        for chunk in chunks[:-1]:
            excluded[chunk] = False
        negatives.append(chosen)
    return negatives


def hit_counts_at_k(
    scores: np.ndarray,
    test_items: np.ndarray,
    eval_negatives: list[np.ndarray],
    k: int,
) -> tuple[int, int]:
    """``(hits, evaluable users)`` counts over one block of users.

    The streaming building block of HR@K: ``scores`` rows,
    ``test_items`` and ``eval_negatives`` are aligned slices of the
    same user block.  Ranks are computed per row, so block boundaries
    cannot change them; accumulating the integer counts over blocks
    and dividing once reproduces the whole-matrix mean exactly.
    """
    test_items = np.asarray(test_items, dtype=np.int64)
    users = np.flatnonzero(
        (test_items >= 0)
        & np.array([len(negs) > 0 for negs in eval_negatives], dtype=bool)
    )
    if not len(users):
        return 0, 0
    lens = np.array([len(eval_negatives[u]) for u in users], dtype=np.int64)
    width = int(lens.max())
    padded = np.zeros((len(users), width), dtype=np.int64)
    for row, user in enumerate(users):
        padded[row, : lens[row]] = eval_negatives[user]
    mask = np.arange(width)[None, :] < lens[:, None]
    test_scores = scores[users, test_items[users]]
    neg_scores = scores[users[:, None], padded]
    greater = ((neg_scores > test_scores[:, None]) & mask).sum(axis=1)
    equal = ((neg_scores == test_scores[:, None]) & mask).sum(axis=1)
    ranks = greater + 0.5 * equal
    return int((ranks < k).sum()), len(users)


def hit_ratio_at_k(
    scores: np.ndarray,
    dataset: InteractionDataset,
    eval_negatives: list[np.ndarray],
    k: int,
) -> float:
    """HR@K under leave-one-out with sampled negatives.

    For each user with a held-out test item: hit if the test item's
    score beats all but at most ``k - 1`` of the sampled negatives.
    Ties count half a loss each, so a degenerate constant-output model
    scores ~k/(negatives+1) instead of a spurious 100%.

    Computed as one batched rank pass over all evaluable users
    (:func:`hit_counts_at_k`): the per-user negative lists
    (equal-length in the standard protocol, padded and masked
    otherwise) gather into a ``(users, negatives)`` score matrix and
    the win/tie counts reduce along its rows — the same integer
    counts, and therefore the same ranks and mean, as the per-user
    reference loop.
    """
    return hit_ratio_from_counts(
        *hit_counts_at_k(scores, dataset.test_items, eval_negatives, k)
    )


def hit_ratio_from_counts(hits: int, total: int) -> float:
    """HR@K from accumulated counts; no evaluable users means 0.0."""
    return hits / total if total else 0.0
