"""Ranking metrics: ER@K (Eq. 3) and HR@K (leave-one-out protocol).

ER@K measures attack success: the fraction of eligible benign users
whose top-K recommendation list contains a target item, averaged over
targets. HR@K measures recommendation quality: whether the held-out
test item ranks in the top-K against sampled negatives (NCF protocol).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import InteractionDataset
from repro.rng import spawn

__all__ = ["top_k_items", "exposure_ratio_at_k", "hit_ratio_at_k", "sample_eval_negatives"]


def top_k_items(scores: np.ndarray, train_mask: np.ndarray, k: int) -> np.ndarray:
    """Per-user top-K uninteracted items from a score matrix.

    ``scores`` is (U, m) logits; training interactions are excluded from
    recommendation (users are only recommended new items). Returns an
    (U, k) array of item ids; slots beyond a user's recommendable pool
    (when K exceeds it) hold the sentinel ``-1``.
    """
    if scores.shape != train_mask.shape:
        raise ValueError("scores and train_mask shapes differ")
    masked = np.where(train_mask, -np.inf, scores)
    k = min(k, scores.shape[1])
    part = np.argpartition(-masked, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(masked, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    top = np.take_along_axis(part, order, axis=1)
    # Never recommend a masked item, even when K exceeds the pool.
    top_scores = np.take_along_axis(masked, top, axis=1)
    top[np.isneginf(top_scores)] = -1
    return top


def exposure_ratio_at_k(
    scores: np.ndarray,
    train_mask: np.ndarray,
    target_items: np.ndarray,
    k: int,
) -> float:
    """ER@K (Eq. 3), averaged over target items.

    For each target ``v_j``: the fraction of benign users who have *not*
    interacted with ``v_j`` whose top-K list contains ``v_j``. Rows of
    ``scores`` should cover benign users only.
    """
    target_items = np.atleast_1d(np.asarray(target_items))
    if len(target_items) == 0:
        raise ValueError("no target items given")
    tops = top_k_items(scores, train_mask, k)
    ratios = []
    for target in target_items:
        eligible = ~train_mask[:, target]
        if not eligible.any():
            ratios.append(0.0)
            continue
        hit = (tops[eligible] == target).any(axis=1)
        ratios.append(float(hit.mean()))
    return float(np.mean(ratios))


def sample_eval_negatives(
    dataset: InteractionDataset, num_negatives: int, seed: int
) -> list[np.ndarray]:
    """Fixed per-user negative samples for HR@K evaluation.

    The NCF protocol ranks the held-out test item against ``num_negatives``
    items the user has not interacted with. Sampling once (deterministic
    in the seed) keeps HR@K comparable across rounds and methods.
    """
    negatives: list[np.ndarray] = []
    for user in range(dataset.num_users):
        rng = spawn(seed, "eval-neg", user)
        banned = dataset.train_set(user) | {int(dataset.test_items[user])}
        pool_size = dataset.num_items - len(banned)
        count = min(num_negatives, max(pool_size, 0))
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < count:
            draw = rng.integers(0, dataset.num_items, size=max(2 * count, 8))
            for j in draw:
                j = int(j)
                if j in banned or j in seen:
                    continue
                seen.add(j)
                chosen.append(j)
                if len(chosen) == count:
                    break
        negatives.append(np.asarray(chosen, dtype=np.int64))
    return negatives


def hit_ratio_at_k(
    scores: np.ndarray,
    dataset: InteractionDataset,
    eval_negatives: list[np.ndarray],
    k: int,
) -> float:
    """HR@K under leave-one-out with sampled negatives.

    For each user with a held-out test item: hit if the test item's
    score beats all but at most ``k - 1`` of the sampled negatives.
    """
    hits = []
    for user in range(dataset.num_users):
        test_item = int(dataset.test_items[user])
        if test_item < 0:
            continue
        negs = eval_negatives[user]
        if len(negs) == 0:
            continue
        test_score = scores[user, test_item]
        # Ties count half a loss each, so a degenerate constant-output
        # model scores ~k/(negatives+1) instead of a spurious 100%.
        rank = float(
            np.sum(scores[user, negs] > test_score)
            + 0.5 * np.sum(scores[user, negs] == test_score)
        )
        hits.append(1.0 if rank < k else 0.0)
    return float(np.mean(hits)) if hits else 0.0
