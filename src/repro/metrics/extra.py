"""Additional recommendation metrics: NDCG@K and exposure concentration.

These complement the paper's ER@K / HR@K: NDCG@K is the standard
graded-ranking companion of HR@K in the NCF evaluation protocol, and
the exposure Gini quantifies how concentrated the recommendation slots
are on few items — a system-level view of the popularity bias that
PIECK exploits.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import InteractionDataset
from repro.metrics.ranking import top_k_items

__all__ = ["ndcg_at_k", "exposure_distribution", "exposure_gini"]


def ndcg_at_k(
    scores: np.ndarray,
    dataset: InteractionDataset,
    eval_negatives: list[np.ndarray],
    k: int,
) -> float:
    """NDCG@K under the leave-one-out protocol (He et al.).

    With a single relevant item per user the ideal DCG is 1, so
    NDCG@K reduces to ``1 / log2(rank + 2)`` when the held-out item
    ranks within the top-K against the sampled negatives, else 0.
    """
    gains = []
    for user in range(dataset.num_users):
        test_item = int(dataset.test_items[user])
        if test_item < 0:
            continue
        negs = eval_negatives[user]
        if len(negs) == 0:
            continue
        test_score = scores[user, test_item]
        rank = float(
            np.sum(scores[user, negs] > test_score)
            + 0.5 * np.sum(scores[user, negs] == test_score)
        )
        gains.append(1.0 / np.log2(rank + 2.0) if rank < k else 0.0)
    return float(np.mean(gains)) if gains else 0.0


def exposure_distribution(
    scores: np.ndarray, train_mask: np.ndarray, k: int
) -> np.ndarray:
    """Per-item count of top-K recommendation slots across all users."""
    tops = top_k_items(scores, train_mask, k)
    counts = np.zeros(scores.shape[1], dtype=np.int64)
    valid = tops[tops >= 0]
    np.add.at(counts, valid, 1)
    return counts


def exposure_gini(scores: np.ndarray, train_mask: np.ndarray, k: int) -> float:
    """Gini coefficient of the recommendation-slot distribution.

    0 means every item is recommended equally often; values near 1 mean
    a few (typically popular) items absorb almost all slots.
    """
    counts = exposure_distribution(scores, train_mask, k).astype(np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    ordered = np.sort(counts)
    n = len(ordered)
    lorenz_area = (np.cumsum(ordered) / total).sum() / n
    return float(1.0 - 2.0 * lorenz_area + 1.0 / n)
