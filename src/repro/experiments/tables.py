"""Generators for every table of the paper's evaluation section.

Each function regenerates one table (at the scaled-down presets) and
returns a :class:`repro.experiments.reporting.TableResult` whose rows
mirror the paper's layout. See EXPERIMENTS.md for paper-vs-measured.

Generators declare their grid as :class:`~repro.experiments.sweep.CellSpec`
data and hand the whole grid to a
:class:`~repro.experiments.sweep.SweepRunner`, which executes the cells
sequentially (the default), on a process pool, and/or from the
content-addressed result cache — see ``repro sweep`` and
docs/ARCHITECTURE.md "Experiment orchestration".  Cell results are
identical on every path, so tables are byte-identical no matter how
they were executed.
"""

from __future__ import annotations

from repro.config import AttackConfig, DefenseConfig, replace
from repro.defenses.registry import DEFENSE_NAMES
from repro.experiments.presets import (
    attack_config,
    dataset_config,
    defense_config,
    experiment,
)
from repro.experiments.reporting import TableResult
from repro.experiments.sweep import CellSpec, SweepRunner, cells_from_values

__all__ = [
    "table2_pkl_ucr",
    "table3_attacks",
    "table4_defenses",
    "table5_top_k",
    "table6_ablation",
    "table7_system_settings",
    "table9_multi_target",
    "table10_learning_rates",
    "table11_bpr_loss",
]

#: Attack rows of Table III, in the paper's order.
TABLE3_ATTACKS = (
    "none",
    "fedrecattack",
    "pipattack",
    "a_ra",
    "a_hum",
    "pieck_ipe",
    "pieck_uea",
)

#: Defense rows of Table IV, in the paper's order.
TABLE4_DEFENSES = tuple(n for n in DEFENSE_NAMES if n != "regularization") + (
    "regularization",
)


def _attack_label(name: str) -> str:
    return {
        "none": "NoAttack",
        "fedrecattack": "FedRecA",
        "pipattack": "PipA",
        "a_ra": "A-ra",
        "a_hum": "A-hum",
        "pieck_ipe": "PIECK-IPE",
        "pieck_uea": "PIECK-UEA",
    }.get(name, name)


def _defense_label(name: str) -> str:
    return {
        "none": "NoDefense",
        "norm_bound": "NormBound",
        "median": "Median",
        "trimmed_mean": "TrimmedMean",
        "krum": "Krum",
        "multi_krum": "MultiKrum",
        "bulyan": "Bulyan",
        "regularization": "ours",
    }.get(name, name)


def _fmt(values) -> str:
    """Format a single-cutoff ``er_hr`` cell result as the table string."""
    return str(cells_from_values(values)[0])


# ----------------------------------------------------------------------
# Table II: PKL / UCR vs popular set size N
# ----------------------------------------------------------------------

def table2_pkl_ucr(
    *,
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    popular_sizes: tuple[int, ...] = (1, 10, 50, 150),
    dataset: str = "ml-100k",
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table II: closeness of popular-item and user embedding sets.

    Trains a clean FRS to convergence, then computes PKL (Eq. 9)
    between the top-N popular items' embeddings and the embeddings of
    the users covered by them, plus the user coverage ratio UCR.
    """
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Table II: PKL / UCR vs N (clean training)",
        ["Metric", "Model"] + [f"N={n}" for n in popular_sizes],
    )
    specs = [
        CellSpec(
            config=experiment(dataset, kind, seed=seed),
            dataset_key=dataset,
            kind="pkl_ucr",
            payload=tuple(popular_sizes),
        )
        for kind in model_kinds
    ]
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    ucr_row: list[str] | None = None
    for kind, result in zip(model_kinds, values):
        table.add_row("PKL", kind.upper(), *[f"{p:.4f}" for p in result["pkl"]])
        if ucr_row is None:
            ucr_row = [f"{u:.4f}" for u in result["ucr"]]
    if ucr_row is not None:
        table.add_row("UCR", "both", *ucr_row)
    return table


# ----------------------------------------------------------------------
# Table III: attack comparison
# ----------------------------------------------------------------------

def table3_attacks(
    *,
    datasets: tuple[str, ...] = ("ml-100k", "ml-1m", "az"),
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    attacks: tuple[str, ...] = TABLE3_ATTACKS,
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table III: all attacks x models x datasets, ER@10 / HR@10."""
    runner = runner if runner is not None else SweepRunner()
    headers = ["Attack"] + [
        f"{kind.upper()}:{ds}" for kind in model_kinds for ds in datasets
    ]
    table = TableResult("Table III: attack comparison (ER@10 / HR@10, %)", headers)
    specs = [
        CellSpec(
            config=experiment(ds, kind, attack=attack, seed=seed),
            dataset_key=ds,
        )
        for attack in attacks
        for kind in model_kinds
        for ds in datasets
    ]
    values = runner.run(
        specs, {ds: dataset_config(ds, seed=seed) for ds in datasets}
    )
    width = len(model_kinds) * len(datasets)
    for row, attack in enumerate(attacks):
        chunk = values[row * width : (row + 1) * width]
        table.add_row(_attack_label(attack), *[_fmt(v) for v in chunk])
    return table


# ----------------------------------------------------------------------
# Table IV: defense comparison
# ----------------------------------------------------------------------

def table4_defenses(
    *,
    dataset: str = "ml-100k",
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    attacks: tuple[str, ...] = ("a_hum", "pieck_ipe", "pieck_uea"),
    defenses: tuple[str, ...] = TABLE4_DEFENSES,
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table IV: every defense against the top-3 attacks on ML-100K."""
    runner = runner if runner is not None else SweepRunner()
    headers = ["Defense"] + [
        f"{kind.upper()}:{_attack_label(a)}" for kind in model_kinds for a in attacks
    ]
    table = TableResult("Table IV: defense comparison (ER@10 / HR@10, %)", headers)
    specs = [
        CellSpec(
            config=experiment(
                dataset, kind, attack=attack, defense=defense, seed=seed
            ),
            dataset_key=dataset,
        )
        for defense in defenses
        for kind in model_kinds
        for attack in attacks
    ]
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    width = len(model_kinds) * len(attacks)
    for row, defense in enumerate(defenses):
        chunk = values[row * width : (row + 1) * width]
        table.add_row(_defense_label(defense), *[_fmt(v) for v in chunk])
    return table


# ----------------------------------------------------------------------
# Table V: effect of K
# ----------------------------------------------------------------------

def table5_top_k(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    ks: tuple[int, ...] = (5, 20),
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table V: ER@K / HR@K for K in {5, 20} (attack + defense).

    Each (attack, defense) pair trains exactly once; every cutoff K is
    evaluated from the same trained model (``CellSpec.ks``), halving
    the table's cost versus the old retrain-per-K loop with
    bit-identical cells.
    """
    runner = runner if runner is not None else SweepRunner()
    headers = ["Attack", "Defense"] + [f"ER@{k} / HR@{k}" for k in ks]
    table = TableResult("Table V: effect of the recommendation cutoff K", headers)
    rows: list[tuple[str, str | DefenseConfig]] = [
        ("none", "none"),
        ("pieck_ipe", "none"),
        ("pieck_ipe", "regularization"),
        ("pieck_uea", "none"),
        ("pieck_uea", "regularization"),
    ]
    specs = [
        CellSpec(
            config=experiment(
                dataset, model_kind, attack=attack, defense=defense, seed=seed
            ),
            dataset_key=dataset,
            ks=tuple(ks),
        )
        for attack, defense in rows
    ]
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for (attack, defense), result in zip(rows, values):
        cells = cells_from_values(result)
        table.add_row(
            _attack_label(attack),
            _defense_label(str(defense)),
            *[str(cell) for cell in cells],
        )
    return table


# ----------------------------------------------------------------------
# Table VI: ablations of L_IPE and L_def
# ----------------------------------------------------------------------

def table6_ablation(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table VI: L_IPE technique ablation and L_def term ablation."""
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Table VI: ablations (MF-FRS on ML-100K)",
        ["Variant", "Attack", "Defense", "ER@10 / HR@10"],
    )

    # --- L_IPE: PKL metric, then PCOS +kappa +partition increments.
    # The toggles live on AttackConfig, so every variant is an ordinary
    # config-determined cell.
    ipe_variants = [
        ("L_IPE: PKL metric", {"ipe_metric": "pkl"}),
        ("L_IPE: PCOS", {"ipe_use_weights": False, "ipe_use_partition": False}),
        ("L_IPE: PCOS + kappa", {"ipe_use_weights": True, "ipe_use_partition": False}),
        ("L_IPE: PCOS + kappa + P+/-", {}),
    ]
    specs = [
        CellSpec(
            config=experiment(
                dataset,
                model_kind,
                attack=attack_config("pieck_ipe", **overrides),
                seed=seed,
            ),
            dataset_key=dataset,
        )
        for _, overrides in ipe_variants
    ]

    # --- L_def: Re1-only, Re2-only, both — against both PIECK variants.
    def_variants = [
        ("L_def: Re1 only", {"gamma": 0.0}),
        ("L_def: Re2 only", {"beta": 0.0}),
        ("L_def: Re1 + Re2", {}),
    ]
    def_rows: list[tuple[str, str]] = []
    for label, overrides in def_variants:
        for attack in ("pieck_ipe", "pieck_uea"):
            defense = replace(
                defense_config("regularization", model_kind), **overrides
            )
            specs.append(
                CellSpec(
                    config=experiment(
                        dataset, model_kind, attack=attack, defense=defense,
                        seed=seed,
                    ),
                    dataset_key=dataset,
                )
            )
            def_rows.append((label, attack))

    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for (label, _), result in zip(ipe_variants, values):
        table.add_row(label, "PIECK-IPE", "NoDefense", _fmt(result))
    for (label, attack), result in zip(def_rows, values[len(ipe_variants):]):
        table.add_row(label, _attack_label(attack), "ours", _fmt(result))
    return table


# ----------------------------------------------------------------------
# Table VII: large q and multiple targets
# ----------------------------------------------------------------------

def table7_system_settings(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    large_q: int = 10,
    num_targets: int = 3,
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table VII: sampling ratio q=10 and |T|=3 multi-target cells."""
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        f"Table VII: q={large_q} and |T|={num_targets} (MF-FRS on ML-100K)",
        ["Attack", "Defense", f"q={large_q}", f"|T|={num_targets}"],
    )
    rows = [
        ("none", "none"),
        ("pieck_ipe", "none"),
        ("pieck_ipe", "regularization"),
        ("pieck_uea", "none"),
        ("pieck_uea", "regularization"),
    ]
    specs: list[CellSpec] = []
    for attack, defense in rows:
        # Column 1: large sampling ratio q. The paper retunes the
        # attack at q=10 (footnote: N=15 for PIECK-UEA); at this
        # experiment scale the equivalent retune is the *refined*
        # pseudo-user source — heavy negative sampling displaces the
        # item geometry away from the user geometry, so Eq. 10's raw
        # popular embeddings stop approximating users while locally
        # trained fake profiles still do (see
        # :mod:`repro.attacks.refinement` and EXPERIMENTS.md).
        attack_q: str | AttackConfig | None
        if attack == "pieck_uea":
            attack_q = attack_config(attack, uea_pseudo_source="refined")
        else:
            attack_q = attack
        specs.append(
            CellSpec(
                config=experiment(
                    dataset, model_kind, attack=attack_q, defense=defense,
                    seed=seed, negative_ratio=large_q,
                ),
                dataset_key=dataset,
            )
        )
        # Column 2: multiple target items (train-one-then-copy).
        attack_cfg = None
        if attack != "none":
            attack_cfg = attack_config(attack, num_targets=num_targets)
        specs.append(
            CellSpec(
                config=experiment(
                    dataset, model_kind, attack=attack_cfg, defense=defense,
                    seed=seed,
                ),
                dataset_key=dataset,
            )
        )
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for row, (attack, defense) in enumerate(rows):
        table.add_row(
            _attack_label(attack),
            _defense_label(defense),
            _fmt(values[2 * row]),
            _fmt(values[2 * row + 1]),
        )
    return table


# ----------------------------------------------------------------------
# Table IX: multi-target strategies (supplementary C)
# ----------------------------------------------------------------------

def table9_multi_target(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    target_counts: tuple[int, ...] = (2, 3, 5),
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table IX: |T| sweep, Train-Together vs Train-One-Then-Copy."""
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Table IX: multi-target strategies (ER@10 / HR@10, %)",
        ["Attack", "Strategy"] + [f"|T|={t}" for t in target_counts],
    )
    rows = [
        (attack, strategy)
        for attack in ("pieck_ipe", "pieck_uea")
        for strategy in ("together", "one_then_copy")
    ]
    specs = [
        CellSpec(
            config=experiment(
                dataset,
                model_kind,
                attack=attack_config(
                    attack, num_targets=count, multi_target_strategy=strategy
                ),
                seed=seed,
            ),
            dataset_key=dataset,
        )
        for attack, strategy in rows
        for count in target_counts
    ]
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    width = len(target_counts)
    for row, (attack, strategy) in enumerate(rows):
        chunk = values[row * width : (row + 1) * width]
        label = "Together" if strategy == "together" else "OneThenCopy"
        table.add_row(_attack_label(attack), label, *[_fmt(v) for v in chunk])
    return table


# ----------------------------------------------------------------------
# Table X: inconsistent learning rates (supplementary D)
# ----------------------------------------------------------------------

def table10_learning_rates(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table X: client/server learning-rate inconsistency."""
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Table X: inconsistent learning rates (MF-FRS on ML-100K)",
        ["Client rate", "Attack", "ER@10 / HR@10"],
    )
    scenarios = [
        ("eta_i = eta (1.0)", {}),
        ("eta_i = 1e-2", {"client_lr": 1e-2}),
        ("eta_i ~ [1e-2, 1e-0]", {"client_lr_range": (1e-2, 1.0)}),
    ]
    rows = [
        (label, attack, overrides)
        for label, overrides in scenarios
        for attack in ("none", "pieck_ipe", "pieck_uea")
    ]
    specs = [
        CellSpec(
            config=experiment(
                dataset, model_kind, attack=attack, seed=seed, **overrides
            ),
            dataset_key=dataset,
        )
        for label, attack, overrides in rows
    ]
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for (label, attack, _), result in zip(rows, values):
        table.add_row(label, _attack_label(attack), _fmt(result))
    return table


# ----------------------------------------------------------------------
# Table XI: BPR loss (supplementary E)
# ----------------------------------------------------------------------

def table11_bpr_loss(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Table XI: attacks and defense under the BPR training loss."""
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Table XI: BCE vs BPR training loss (MF-FRS on ML-100K)",
        ["Attack", "Defense", "BCE", "BPR"],
    )
    rows = [
        ("none", "none"),
        ("pieck_ipe", "none"),
        ("pieck_ipe", "regularization"),
        ("pieck_uea", "none"),
        ("pieck_uea", "regularization"),
    ]
    specs: list[CellSpec] = []
    for attack, defense in rows:
        for loss in ("bce", "bpr"):
            # Benign clients know their own training loss, so the
            # defense weights are tuned per loss: BPR's pairwise
            # gradients need a stronger Re1 to blur popular-item
            # features at this experiment scale (beta=2).
            defense_cfg: str | DefenseConfig = defense
            if loss == "bpr" and defense == "regularization":
                defense_cfg = defense_config(defense, model_kind, beta=2.0)
            specs.append(
                CellSpec(
                    config=experiment(
                        dataset, model_kind, attack=attack, defense=defense_cfg,
                        seed=seed, loss=loss,
                    ),
                    dataset_key=dataset,
                )
            )
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for row, (attack, defense) in enumerate(rows):
        table.add_row(
            _attack_label(attack),
            _defense_label(defense),
            _fmt(values[2 * row]),
            _fmt(values[2 * row + 1]),
        )
    return table
