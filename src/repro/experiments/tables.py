"""Generators for every table of the paper's evaluation section.

Each function regenerates one table (at the scaled-down presets) and
returns a :class:`repro.experiments.reporting.TableResult` whose rows
mirror the paper's layout. See EXPERIMENTS.md for paper-vs-measured.
"""

from __future__ import annotations

from repro.config import AttackConfig, DefenseConfig, replace
from repro.datasets.loaders import load_dataset
from repro.defenses.registry import DEFENSE_NAMES
from repro.experiments.presets import (
    attack_config,
    defense_config,
    experiment,
)
from repro.experiments.reporting import TableResult
from repro.experiments.runner import Cell, run_cell
from repro.federated.simulation import FederatedSimulation
from repro.metrics.divergence import pairwise_kl, user_coverage_ratio

__all__ = [
    "table2_pkl_ucr",
    "table3_attacks",
    "table4_defenses",
    "table5_top_k",
    "table6_ablation",
    "table7_system_settings",
    "table9_multi_target",
    "table10_learning_rates",
    "table11_bpr_loss",
]

#: Attack rows of Table III, in the paper's order.
TABLE3_ATTACKS = (
    "none",
    "fedrecattack",
    "pipattack",
    "a_ra",
    "a_hum",
    "pieck_ipe",
    "pieck_uea",
)

#: Defense rows of Table IV, in the paper's order.
TABLE4_DEFENSES = tuple(n for n in DEFENSE_NAMES if n != "regularization") + (
    "regularization",
)


def _attack_label(name: str) -> str:
    return {
        "none": "NoAttack",
        "fedrecattack": "FedRecA",
        "pipattack": "PipA",
        "a_ra": "A-ra",
        "a_hum": "A-hum",
        "pieck_ipe": "PIECK-IPE",
        "pieck_uea": "PIECK-UEA",
    }.get(name, name)


def _defense_label(name: str) -> str:
    return {
        "none": "NoDefense",
        "norm_bound": "NormBound",
        "median": "Median",
        "trimmed_mean": "TrimmedMean",
        "krum": "Krum",
        "multi_krum": "MultiKrum",
        "bulyan": "Bulyan",
        "regularization": "ours",
    }.get(name, name)


# ----------------------------------------------------------------------
# Table II: PKL / UCR vs popular set size N
# ----------------------------------------------------------------------

def table2_pkl_ucr(
    *,
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    popular_sizes: tuple[int, ...] = (1, 10, 50, 150),
    dataset: str = "ml-100k",
    seed: int = 0,
) -> TableResult:
    """Table II: closeness of popular-item and user embedding sets.

    Trains a clean FRS to convergence, then computes PKL (Eq. 9)
    between the top-N popular items' embeddings and the embeddings of
    the users covered by them, plus the user coverage ratio UCR.
    """
    table = TableResult(
        "Table II: PKL / UCR vs N (clean training)",
        ["Metric", "Model"] + [f"N={n}" for n in popular_sizes],
    )
    ucr_row: list[str] | None = None
    for kind in model_kinds:
        config = experiment(dataset, kind, seed=seed)
        sim = FederatedSimulation(config)
        sim.run()
        ranking = sim.dataset.popularity_ranking()
        users = sim.user_embedding_matrix()
        pkl_cells: list[str] = []
        ucr_cells: list[str] = []
        for n in popular_sizes:
            popular = ranking[: min(n, sim.dataset.num_items)]
            covered = [
                u
                for u in range(sim.dataset.num_users)
                if set(popular.tolist()) & sim.dataset.train_set(u)
            ]
            item_vecs = sim.model.item_embeddings[popular]
            user_vecs = users[covered] if covered else users
            pkl_cells.append(f"{pairwise_kl(item_vecs, user_vecs):.4f}")
            ucr_cells.append(f"{user_coverage_ratio(sim.dataset, popular):.4f}")
        table.add_row("PKL", kind.upper(), *pkl_cells)
        if ucr_row is None:
            ucr_row = ucr_cells
    if ucr_row is not None:
        table.add_row("UCR", "both", *ucr_row)
    return table


# ----------------------------------------------------------------------
# Table III: attack comparison
# ----------------------------------------------------------------------

def table3_attacks(
    *,
    datasets: tuple[str, ...] = ("ml-100k", "ml-1m", "az"),
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    attacks: tuple[str, ...] = TABLE3_ATTACKS,
    seed: int = 0,
) -> TableResult:
    """Table III: all attacks x models x datasets, ER@10 / HR@10."""
    headers = ["Attack"] + [
        f"{kind.upper()}:{ds}" for kind in model_kinds for ds in datasets
    ]
    table = TableResult("Table III: attack comparison (ER@10 / HR@10, %)", headers)
    shared = {
        (kind, ds): load_dataset(experiment(ds, kind, seed=seed).dataset)
        for kind in model_kinds
        for ds in datasets
    }
    for attack in attacks:
        cells: list[str] = []
        for kind in model_kinds:
            for ds in datasets:
                config = experiment(ds, kind, attack=attack, seed=seed)
                cell = run_cell(config, dataset=shared[(kind, ds)])
                cells.append(str(cell))
        table.add_row(_attack_label(attack), *cells)
    return table


# ----------------------------------------------------------------------
# Table IV: defense comparison
# ----------------------------------------------------------------------

def table4_defenses(
    *,
    dataset: str = "ml-100k",
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    attacks: tuple[str, ...] = ("a_hum", "pieck_ipe", "pieck_uea"),
    defenses: tuple[str, ...] = TABLE4_DEFENSES,
    seed: int = 0,
) -> TableResult:
    """Table IV: every defense against the top-3 attacks on ML-100K."""
    headers = ["Defense"] + [
        f"{kind.upper()}:{_attack_label(a)}" for kind in model_kinds for a in attacks
    ]
    table = TableResult("Table IV: defense comparison (ER@10 / HR@10, %)", headers)
    shared = {
        kind: load_dataset(experiment(dataset, kind, seed=seed).dataset)
        for kind in model_kinds
    }
    for defense in defenses:
        cells: list[str] = []
        for kind in model_kinds:
            for attack in attacks:
                config = experiment(
                    dataset, kind, attack=attack, defense=defense, seed=seed
                )
                cells.append(str(run_cell(config, dataset=shared[kind])))
        table.add_row(_defense_label(defense), *cells)
    return table


# ----------------------------------------------------------------------
# Table V: effect of K
# ----------------------------------------------------------------------

def table5_top_k(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    ks: tuple[int, ...] = (5, 20),
    seed: int = 0,
) -> TableResult:
    """Table V: ER@K / HR@K for K in {5, 20} (attack + defense)."""
    headers = ["Attack", "Defense"] + [f"ER@{k} / HR@{k}" for k in ks]
    table = TableResult("Table V: effect of the recommendation cutoff K", headers)
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)
    rows: list[tuple[str, str | DefenseConfig]] = [
        ("none", "none"),
        ("pieck_ipe", "none"),
        ("pieck_ipe", "regularization"),
        ("pieck_uea", "none"),
        ("pieck_uea", "regularization"),
    ]
    for attack, defense in rows:
        cells = []
        for k in ks:
            config = experiment(
                dataset, model_kind, attack=attack, defense=defense, seed=seed
            )
            cells.append(str(run_cell(config, dataset=shared, k=k)))
        table.add_row(_attack_label(attack), _defense_label(str(defense)), *cells)
    return table


# ----------------------------------------------------------------------
# Table VI: ablations of L_IPE and L_def
# ----------------------------------------------------------------------

def table6_ablation(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    seed: int = 0,
) -> TableResult:
    """Table VI: L_IPE technique ablation and L_def term ablation."""
    table = TableResult(
        "Table VI: ablations (MF-FRS on ML-100K)",
        ["Variant", "Attack", "Defense", "ER@10 / HR@10"],
    )
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)

    # --- L_IPE: PKL metric, then PCOS +kappa +partition increments.
    ipe_variants = [
        ("L_IPE: PKL metric", {"metric": "pkl"}),
        ("L_IPE: PCOS", {"use_weights": False, "use_partition": False}),
        ("L_IPE: PCOS + kappa", {"use_weights": True, "use_partition": False}),
        ("L_IPE: PCOS + kappa + P+/-", {}),
    ]
    from repro.attacks.pieck_ipe import PieckIPE  # local import avoids cycles

    for label, overrides in ipe_variants:
        config = experiment(dataset, model_kind, attack="pieck_ipe", seed=seed)
        sim = FederatedSimulation(config, dataset=shared)
        for client in sim.malicious_clients:
            assert isinstance(client, PieckIPE)
            client.metric = overrides.get("metric", "pcos")
            client.use_weights = overrides.get("use_weights", True)
            client.use_partition = overrides.get("use_partition", True)
        result = sim.run()
        cell = Cell(er=100.0 * result.exposure, hr=100.0 * result.hit_ratio)
        table.add_row(label, "PIECK-IPE", "NoDefense", str(cell))

    # --- L_def: Re1-only, Re2-only, both — against both PIECK variants.
    def_variants = [
        ("L_def: Re1 only", {"gamma": 0.0}),
        ("L_def: Re2 only", {"beta": 0.0}),
        ("L_def: Re1 + Re2", {}),
    ]
    for label, overrides in def_variants:
        for attack in ("pieck_ipe", "pieck_uea"):
            defense = defense_config("regularization", model_kind)
            defense = replace(defense, **overrides)
            config = experiment(
                dataset, model_kind, attack=attack, defense=defense, seed=seed
            )
            cell = run_cell(config, dataset=shared)
            table.add_row(label, _attack_label(attack), "ours", str(cell))
    return table


# ----------------------------------------------------------------------
# Table VII: large q and multiple targets
# ----------------------------------------------------------------------

def table7_system_settings(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    large_q: int = 10,
    num_targets: int = 3,
    seed: int = 0,
) -> TableResult:
    """Table VII: sampling ratio q=10 and |T|=3 multi-target cells."""
    table = TableResult(
        f"Table VII: q={large_q} and |T|={num_targets} (MF-FRS on ML-100K)",
        ["Attack", "Defense", f"q={large_q}", f"|T|={num_targets}"],
    )
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)
    rows = [
        ("none", "none"),
        ("pieck_ipe", "none"),
        ("pieck_ipe", "regularization"),
        ("pieck_uea", "none"),
        ("pieck_uea", "regularization"),
    ]
    for attack, defense in rows:
        # Column 1: large sampling ratio q. The paper retunes the
        # attack at q=10 (footnote: N=15 for PIECK-UEA); at this
        # experiment scale the equivalent retune is the *refined*
        # pseudo-user source — heavy negative sampling displaces the
        # item geometry away from the user geometry, so Eq. 10's raw
        # popular embeddings stop approximating users while locally
        # trained fake profiles still do (see
        # :mod:`repro.attacks.refinement` and EXPERIMENTS.md).
        attack_q: str | AttackConfig | None
        if attack == "pieck_uea":
            attack_q = attack_config(attack, uea_pseudo_source="refined")
        else:
            attack_q = attack
        config_q = experiment(
            dataset, model_kind, attack=attack_q, defense=defense, seed=seed,
            negative_ratio=large_q,
        )
        cell_q = run_cell(config_q, dataset=shared)
        # Column 2: multiple target items (train-one-then-copy).
        attack_cfg = None
        if attack != "none":
            attack_cfg = attack_config(attack, num_targets=num_targets)
        config_t = experiment(
            dataset, model_kind, attack=attack_cfg, defense=defense, seed=seed
        )
        cell_t = run_cell(config_t, dataset=shared)
        table.add_row(
            _attack_label(attack), _defense_label(defense), str(cell_q), str(cell_t)
        )
    return table


# ----------------------------------------------------------------------
# Table IX: multi-target strategies (supplementary C)
# ----------------------------------------------------------------------

def table9_multi_target(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    target_counts: tuple[int, ...] = (2, 3, 5),
    seed: int = 0,
) -> TableResult:
    """Table IX: |T| sweep, Train-Together vs Train-One-Then-Copy."""
    table = TableResult(
        "Table IX: multi-target strategies (ER@10 / HR@10, %)",
        ["Attack", "Strategy"] + [f"|T|={t}" for t in target_counts],
    )
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)
    for attack in ("pieck_ipe", "pieck_uea"):
        for strategy in ("together", "one_then_copy"):
            cells = []
            for count in target_counts:
                cfg = attack_config(
                    attack, num_targets=count, multi_target_strategy=strategy
                )
                config = experiment(dataset, model_kind, attack=cfg, seed=seed)
                cells.append(str(run_cell(config, dataset=shared)))
            label = "Together" if strategy == "together" else "OneThenCopy"
            table.add_row(_attack_label(attack), label, *cells)
    return table


# ----------------------------------------------------------------------
# Table X: inconsistent learning rates (supplementary D)
# ----------------------------------------------------------------------

def table10_learning_rates(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    seed: int = 0,
) -> TableResult:
    """Table X: client/server learning-rate inconsistency."""
    table = TableResult(
        "Table X: inconsistent learning rates (MF-FRS on ML-100K)",
        ["Client rate", "Attack", "ER@10 / HR@10"],
    )
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)
    scenarios = [
        ("eta_i = eta (1.0)", {}),
        ("eta_i = 1e-2", {"client_lr": 1e-2}),
        ("eta_i ~ [1e-2, 1e-0]", {"client_lr_range": (1e-2, 1.0)}),
    ]
    for label, overrides in scenarios:
        for attack in ("none", "pieck_ipe", "pieck_uea"):
            config = experiment(
                dataset, model_kind, attack=attack, seed=seed, **overrides
            )
            cell = run_cell(config, dataset=shared)
            table.add_row(label, _attack_label(attack), str(cell))
    return table


# ----------------------------------------------------------------------
# Table XI: BPR loss (supplementary E)
# ----------------------------------------------------------------------

def table11_bpr_loss(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    seed: int = 0,
) -> TableResult:
    """Table XI: attacks and defense under the BPR training loss."""
    table = TableResult(
        "Table XI: BCE vs BPR training loss (MF-FRS on ML-100K)",
        ["Attack", "Defense", "BCE", "BPR"],
    )
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)
    rows = [
        ("none", "none"),
        ("pieck_ipe", "none"),
        ("pieck_ipe", "regularization"),
        ("pieck_uea", "none"),
        ("pieck_uea", "regularization"),
    ]
    for attack, defense in rows:
        cells = []
        for loss in ("bce", "bpr"):
            # Benign clients know their own training loss, so the
            # defense weights are tuned per loss: BPR's pairwise
            # gradients need a stronger Re1 to blur popular-item
            # features at this experiment scale (beta=2).
            defense_cfg: str | DefenseConfig = defense
            if loss == "bpr" and defense == "regularization":
                defense_cfg = defense_config(defense, model_kind, beta=2.0)
            config = experiment(
                dataset, model_kind, attack=attack, defense=defense_cfg,
                seed=seed, loss=loss,
            )
            cells.append(str(run_cell(config, dataset=shared)))
        table.add_row(_attack_label(attack), _defense_label(defense), *cells)
    return table
