"""Generators for every figure of the paper's evaluation sections.

Figures are regenerated as the numeric series behind the plots (the
harness is headless); each generator returns a
:class:`repro.experiments.reporting.TableResult` holding the series.
"""

from __future__ import annotations

from repro.analysis.cost import measure_round_cost
from repro.analysis.delta_norm import run_delta_norm_study
from repro.analysis.popularity import longtail_summary
from repro.datasets.loaders import load_dataset
from repro.experiments.presets import attack_config, dataset_config, experiment
from repro.experiments.reporting import TableResult
from repro.experiments.sweep import CellSpec, SweepRunner, cells_from_values
from repro.federated.simulation import FederatedSimulation

__all__ = [
    "fig3_longtail",
    "fig4_delta_norm",
    "fig5_ratio_and_n",
    "fig6a_trend",
    "fig6b_cost",
    "fig7_sample_ratio",
]


def fig3_longtail(
    *,
    datasets: tuple[str, ...] = ("ml-100k", "az"),
    seed: int = 0,
) -> TableResult:
    """Fig. 3: long-tail popularity — top-15% items' interaction share."""
    table = TableResult(
        "Fig. 3: item popularity distribution",
        ["Dataset", "Items", "Interactions", "Top-15% share", "Items for 50%", "Gini"],
    )
    for name in datasets:
        data = load_dataset(experiment(name, "mf", seed=seed).dataset)
        summary = longtail_summary(data)
        table.add_row(
            name,
            summary.num_items,
            summary.num_interactions,
            f"{100 * summary.head_interaction_share:.1f}%",
            f"{100 * summary.items_for_half_interactions:.1f}%",
            f"{summary.gini:.3f}",
        )
    return table


def fig4_delta_norm(
    *,
    dataset: str = "ml-100k",
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    probe_rounds: tuple[int, ...] = (4, 8, 20, 80),
    top_k: int = 50,
    seed: int = 0,
) -> TableResult:
    """Fig. 4: popularity share of the top-50 Δ-Norm items per round."""
    table = TableResult(
        "Fig. 4: popular share of top Δ-Norm items",
        ["Model"] + [f"round {r}" for r in probe_rounds],
    )
    for kind in model_kinds:
        config = experiment(dataset, kind, seed=seed)
        study = run_delta_norm_study(
            config, probe_rounds=probe_rounds, top_k=top_k
        )
        table.add_row(
            kind.upper(),
            *[f"{100 * share:.0f}%" for share in study.popular_share],
        )
    return table


def fig5_ratio_and_n(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    ratios: tuple[float, ...] = (0.01, 0.05, 0.10, 0.15),
    popular_sizes: tuple[int, ...] = (5, 10, 50),
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Fig. 5: effect of malicious ratio p and popular set size N."""
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Fig. 5: attack/defense vs malicious ratio and N (ER@10 / HR@10, %)",
        ["Sweep", "Value", "IPE nodef", "UEA nodef", "IPE ours", "UEA ours"],
    )

    def row_specs(attack_cfg_factory) -> list[CellSpec]:
        specs = []
        for defense in ("none", "regularization"):
            for attack in ("pieck_ipe", "pieck_uea"):
                specs.append(
                    CellSpec(
                        config=experiment(
                            dataset,
                            model_kind,
                            attack=attack_cfg_factory(attack),
                            defense=defense,
                            seed=seed,
                        ),
                        dataset_key=dataset,
                    )
                )
        return specs

    rows: list[tuple[str, str]] = []
    specs: list[CellSpec] = []
    for ratio in ratios:
        rows.append(("ratio", f"{100 * ratio:.0f}%"))
        specs.extend(
            row_specs(lambda a, r=ratio: attack_config(a, malicious_ratio=r))
        )
    for n in popular_sizes:
        rows.append(("N", str(n)))
        specs.extend(row_specs(lambda a, n=n: attack_config(a, num_popular=n)))

    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for row, (sweep_label, value_label) in enumerate(rows):
        chunk = values[4 * row : 4 * (row + 1)]
        table.add_row(
            sweep_label,
            value_label,
            *[str(cells_from_values(v)[0]) for v in chunk],
        )
    return table


def fig6a_trend(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    rounds: int = 400,
    eval_every: int = 50,
    seed: int = 0,
) -> TableResult:
    """Fig. 6a: ER@10 over communication rounds, IPE vs UEA.

    The paper's claim: IPE's exposure decays as the FRS personalises,
    while UEA stays comparatively robust.
    """
    table = TableResult(
        "Fig. 6a: ER@10 trend over rounds",
        ["Attack"] + [f"r{r}" for r in range(eval_every, rounds + 1, eval_every)],
    )
    shared = load_dataset(experiment(dataset, model_kind, seed=seed).dataset)
    for attack in ("pieck_ipe", "pieck_uea"):
        config = experiment(
            dataset, model_kind, attack=attack, seed=seed,
            rounds=rounds, eval_every=eval_every,
        )
        sim = FederatedSimulation(config, dataset=shared)
        result = sim.run()
        cells = [f"{100 * rec.exposure:.1f}" for rec in result.history]
        table.add_row(attack, *cells[: len(table.headers) - 1])
    return table


def fig6b_cost(
    *,
    dataset: str = "ml-100k",
    model_kinds: tuple[str, ...] = ("mf", "ncf"),
    rounds: int = 20,
    seed: int = 0,
) -> TableResult:
    """Fig. 6b: seconds per round for No(Att&Def) / IPE / UEA / Defense."""
    table = TableResult(
        "Fig. 6b: average time per round (seconds)",
        ["Model", "No(Att&Def)", "PIECK-IPE", "PIECK-UEA", "Defense(ours)"],
    )
    for kind in model_kinds:
        shared = load_dataset(experiment(dataset, kind, seed=seed).dataset)
        cells = []
        scenarios = [
            ("clean", experiment(dataset, kind, seed=seed)),
            ("ipe", experiment(dataset, kind, attack="pieck_ipe", seed=seed)),
            ("uea", experiment(dataset, kind, attack="pieck_uea", seed=seed)),
            (
                "defense",
                experiment(
                    dataset, kind, attack="pieck_uea",
                    defense="regularization", seed=seed,
                ),
            ),
        ]
        for label, config in scenarios:
            cost = measure_round_cost(
                config, rounds=rounds, label=label, dataset=shared
            )
            cells.append(f"{cost.seconds_per_round:.3f}")
        table.add_row(kind.upper(), *cells)
    return table


def fig7_sample_ratio(
    *,
    dataset: str = "ml-100k",
    model_kind: str = "mf",
    ratios: tuple[int, ...] = (1, 2, 4, 8, 14, 20),
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> TableResult:
    """Fig. 7 (supplementary): HR@10 vs sampling ratio q.

    The paper finds HR improves from q=1 to intermediate q and then
    collapses beyond q≈11. At the scaled-down presets the rising
    segment reproduces, but the collapse cannot: a user's negative
    draw ``q * |D_i+|`` exhausts the scaled catalogue's uninteracted
    items near q≈14, so larger q is inert and the curve *saturates*
    instead of declining (recorded as a known divergence in
    EXPERIMENTS.md).
    """
    runner = runner if runner is not None else SweepRunner()
    table = TableResult(
        "Fig. 7: HR@10 vs negative sampling ratio q",
        ["q", "HR@10 (%)"],
    )
    specs = [
        CellSpec(
            config=experiment(dataset, model_kind, seed=seed, negative_ratio=q),
            dataset_key=dataset,
        )
        for q in ratios
    ]
    values = runner.run(specs, {dataset: dataset_config(dataset, seed=seed)})
    for q, result in zip(ratios, values):
        cell = cells_from_values(result)[0]
        table.add_row(str(q), f"{cell.hr:.2f}")
    return table
