"""Experiment harness: presets, runners and table/figure generators.

Every table and figure of the paper's evaluation section has a
generator function here (see DESIGN.md's per-experiment index); the
``benchmarks/`` directory wraps each in a pytest-benchmark target that
prints the regenerated rows.
"""

from repro.experiments.presets import (
    EXPERIMENT_SCALES,
    attack_config,
    dataset_config,
    defense_config,
    experiment,
    train_config,
)
from repro.experiments.figures import (
    fig3_longtail,
    fig4_delta_norm,
    fig5_ratio_and_n,
    fig6a_trend,
    fig6b_cost,
    fig7_sample_ratio,
)
from repro.experiments.reporting import TableResult, format_table
from repro.experiments.plotting import bar_chart, line_plot, scatter_plot
from repro.experiments.runner import Cell, run_cell, run_cells
from repro.experiments.stability import SeedSweep, sweep_seeds
from repro.experiments.sweep import CellSpec, SweepRunner, SweepStats
from repro.experiments.tables import (
    table2_pkl_ucr,
    table3_attacks,
    table4_defenses,
    table5_top_k,
    table6_ablation,
    table7_system_settings,
    table9_multi_target,
    table10_learning_rates,
    table11_bpr_loss,
)

__all__ = [
    "SeedSweep",
    "sweep_seeds",
    "line_plot",
    "scatter_plot",
    "bar_chart",
    "table2_pkl_ucr",
    "table3_attacks",
    "table4_defenses",
    "table5_top_k",
    "table6_ablation",
    "table7_system_settings",
    "table9_multi_target",
    "table10_learning_rates",
    "table11_bpr_loss",
    "fig3_longtail",
    "fig4_delta_norm",
    "fig5_ratio_and_n",
    "fig6a_trend",
    "fig6b_cost",
    "fig7_sample_ratio",
    "EXPERIMENT_SCALES",
    "dataset_config",
    "train_config",
    "attack_config",
    "defense_config",
    "experiment",
    "Cell",
    "run_cell",
    "run_cells",
    "CellSpec",
    "SweepRunner",
    "SweepStats",
    "TableResult",
    "format_table",
]
