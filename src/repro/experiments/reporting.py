"""ASCII table rendering for regenerated paper tables."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TableResult", "format_table"]


@dataclass
class TableResult:
    """A regenerated table: title, column headers and formatted rows."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row, stringifying each cell."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(self.headers)} headers"
            )
        self.rows.append(row)

    def __str__(self) -> str:
        return format_table(self.title, self.headers, self.rows)


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned ASCII table with a title banner."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [f"== {title} ==", render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
