"""Single-experiment runner producing (ER@K, HR@K) cells."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.federated.simulation import FederatedSimulation, SimulationResult

__all__ = ["Cell", "run_cell"]


@dataclass(frozen=True)
class Cell:
    """One table cell: attack effectiveness and recommendation quality.

    Values are percentages, matching the paper's table formatting.
    """

    er: float
    hr: float

    def __str__(self) -> str:
        return f"{self.er:6.2f} / {self.hr:5.2f}"


def run_cell(
    config: ExperimentConfig,
    *,
    dataset: InteractionDataset | None = None,
    k: int | None = None,
) -> Cell:
    """Run one experiment and return its ER/HR cell (percent).

    ``dataset`` lets callers share a pre-generated dataset across the
    cells of a table (the paper's tables vary attack/defense, not the
    data). ``k`` overrides the evaluation cutoff (Table V).
    """
    sim = FederatedSimulation(config, dataset=dataset)
    result: SimulationResult = sim.run()
    if k is not None and k != config.train.top_k:
        er, hr = sim.evaluate(k=k)
        return Cell(er=100.0 * er, hr=100.0 * hr)
    return Cell(er=100.0 * result.exposure, hr=100.0 * result.hit_ratio)
