"""Single-experiment runner producing (ER@K, HR@K) table cells.

This is the harness layer between one :class:`ExperimentConfig` and
one formatted number pair in a paper table: build the federated
simulation, train it to completion, evaluate ER@K (attack exposure,
Section VI) and HR@K (recommendation quality) and return them as
percentages.  Table and figure scripts in ``benchmarks/`` call
:func:`run_cell` once per cell, sharing a pre-generated dataset across
the cells of one table so that only the attack/defense axis varies —
exactly how the paper's tables are constructed.

Cells run on the vectorised batch-client engine by default; pass
``engine="loop"`` to use the reference per-client implementation (both
produce bit-identical results, see
:mod:`repro.federated.batch_engine`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.federated.simulation import FederatedSimulation, SimulationResult

__all__ = ["Cell", "run_cell"]


@dataclass(frozen=True)
class Cell:
    """One table cell: attack effectiveness and recommendation quality.

    Values are percentages, matching the paper's table formatting.
    """

    er: float
    hr: float

    def __str__(self) -> str:
        return f"{self.er:6.2f} / {self.hr:5.2f}"


def run_cell(
    config: ExperimentConfig,
    *,
    dataset: InteractionDataset | None = None,
    k: int | None = None,
    engine: str = "batch",
) -> Cell:
    """Run one experiment and return its ER/HR cell (percent).

    ``dataset`` lets callers share a pre-generated dataset across the
    cells of a table (the paper's tables vary attack/defense, not the
    data). ``k`` overrides the evaluation cutoff (Table V). ``engine``
    selects the execution engine (``"batch"`` default, ``"loop"`` for
    the reference implementation).
    """
    sim = FederatedSimulation(config, dataset=dataset, engine=engine)
    result: SimulationResult = sim.run()
    if k is not None and k != config.train.top_k:
        er, hr = sim.evaluate(k=k)
        return Cell(er=100.0 * er, hr=100.0 * hr)
    return Cell(er=100.0 * result.exposure, hr=100.0 * result.hit_ratio)
