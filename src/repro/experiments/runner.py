"""Single-experiment runner producing (ER@K, HR@K) table cells.

This is the harness layer between one :class:`ExperimentConfig` and
one formatted number pair in a paper table: build the federated
simulation, train it to completion, evaluate ER@K (attack exposure,
Section VI) and HR@K (recommendation quality) and return them as
percentages.  Table and figure scripts in ``benchmarks/`` call
:func:`run_cell` once per cell, sharing a pre-generated dataset across
the cells of one table so that only the attack/defense axis varies —
exactly how the paper's tables are constructed.

Cells run on the vectorised batch-client engine by default; pass
``engine="loop"`` to use the reference per-client implementation (both
produce bit-identical results, see
:mod:`repro.federated.batch_engine`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.federated.simulation import FederatedSimulation, SimulationResult

__all__ = ["Cell", "run_cell", "run_cells"]


@dataclass(frozen=True)
class Cell:
    """One table cell: attack effectiveness and recommendation quality.

    Values are percentages, matching the paper's table formatting.
    """

    er: float
    hr: float

    def __str__(self) -> str:
        return f"{self.er:6.2f} / {self.hr:5.2f}"


def run_cells(
    config: ExperimentConfig,
    *,
    dataset: InteractionDataset | None = None,
    ks: tuple[int, ...] | None = None,
    engine: str = "batch",
) -> tuple[Cell, ...]:
    """Train one experiment once, evaluate every cutoff in ``ks``.

    Returns one :class:`Cell` per cutoff, in ``ks`` order (``None``
    means the config's ``train.top_k``).  Training runs exactly once:
    cutoffs equal to ``train.top_k`` reuse the final training
    evaluation, other cutoffs re-score the trained model — evaluation
    is deterministic in the model state, so each cell is bit-identical
    to a dedicated ``run_cell(config, k=k)`` run (Table V no longer
    retrains per K).
    """
    ks = (config.train.top_k,) if ks is None else tuple(ks)
    if not ks:
        raise ValueError("ks must contain at least one cutoff")
    sim = FederatedSimulation(config, dataset=dataset, engine=engine)
    result: SimulationResult = sim.run()
    cells: list[Cell] = []
    for k in ks:
        if k == config.train.top_k:
            er, hr = result.exposure, result.hit_ratio
        else:
            er, hr = sim.evaluate(k=k)
        cells.append(Cell(er=100.0 * er, hr=100.0 * hr))
    return tuple(cells)


def run_cell(
    config: ExperimentConfig,
    *,
    dataset: InteractionDataset | None = None,
    k: int | None = None,
    ks: tuple[int, ...] | None = None,
    engine: str = "batch",
) -> Cell | tuple[Cell, ...]:
    """Run one experiment and return its ER/HR cell(s) (percent).

    ``dataset`` lets callers share a pre-generated dataset across the
    cells of a table (the paper's tables vary attack/defense, not the
    data). ``k`` overrides the evaluation cutoff (Table V); ``ks``
    evaluates a whole tuple of cutoffs from one training run and
    returns a matching tuple of cells. ``engine`` selects the
    execution engine (``"batch"`` default, ``"loop"`` for the
    reference implementation).
    """
    if ks is not None:
        if k is not None:
            raise ValueError("pass either k or ks, not both")
        return run_cells(config, dataset=dataset, ks=ks, engine=engine)
    ks_single = (config.train.top_k,) if k is None else (k,)
    return run_cells(config, dataset=dataset, ks=ks_single, engine=engine)[0]
