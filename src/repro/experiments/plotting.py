"""Terminal (ASCII) plotting for the paper's figures.

The figure generators in :mod:`repro.experiments.figures` return
:class:`~repro.experiments.reporting.TableResult` data series; these
helpers render such series as terminal plots so the *shape* of each
figure — the long-tail knee of Fig. 3, the Δ-Norm/popularity scatter of
Fig. 4, the ER decay of Fig. 6a, the HR curve of Fig. 7 — is visible
at a glance without a plotting stack (no matplotlib offline).

All functions return plain strings; nothing is printed here.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_plot", "scatter_plot", "bar_chart", "render_figure"]

#: Glyphs assigned to successive series in multi-series plots.
_SERIES_GLYPHS = "*o+x@#%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map ``value`` in [low, high] to a cell index in [0, size - 1]."""
    if high <= low:
        return 0
    ratio = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(ratio * (size - 1)))))


def _axis_limits(values: Sequence[float]) -> tuple[float, float]:
    low, high = min(values), max(values)
    if math.isclose(low, high):
        pad = abs(low) * 0.1 or 1.0
        return low - pad, high + pad
    return low, high


def _render_grid(
    grid: list[list[str]],
    x_low: float,
    x_high: float,
    y_low: float,
    y_high: float,
    *,
    title: str,
    x_label: str,
    y_label: str,
    legend: Mapping[str, str] | None = None,
) -> str:
    height = len(grid)
    lines: list[str] = []
    if title:
        lines.append(title)
    if legend:
        lines.append(
            "  ".join(f"{glyph} {name}" for name, glyph in legend.items())
        )
    y_top = f"{y_high:.6g}"
    y_bottom = f"{y_low:.6g}"
    margin = max(len(y_top), len(y_bottom), len(y_label))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = y_top
        elif row_idx == height - 1:
            label = y_bottom
        elif row_idx == height // 2:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    width = len(grid[0])
    lines.append(" " * margin + " +" + "-" * width)
    x_left = f"{x_low:.6g}"
    x_right = f"{x_high:.6g}"
    gap = max(width - len(x_left) - len(x_right), 1)
    lines.append(
        " " * (margin + 2) + x_left + " " * gap + x_right
    )
    if x_label:
        lines.append(" " * (margin + 2) + x_label.center(width))
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named ``(x, y)`` series on one shared-axis character grid.

    Points of each series are drawn with a per-series glyph and joined
    by linear interpolation along the x axis, so monotone trends and
    crossovers read correctly even at terminal resolution.
    """
    if not series or all(len(points) == 0 for points in series.values()):
        raise ValueError("need at least one non-empty series")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_low, x_high = _axis_limits(xs)
    y_low, y_high = _axis_limits(ys)
    grid = [[" "] * width for _ in range(height)]
    legend: dict[str, str] = {}
    for index, (name, points) in enumerate(series.items()):
        glyph = _SERIES_GLYPHS[index % len(_SERIES_GLYPHS)]
        legend[name] = glyph
        ordered = sorted(points)
        # Interpolate between consecutive points, column by column.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            col0 = _scale(x0, x_low, x_high, width)
            col1 = _scale(x1, x_low, x_high, width)
            for col in range(col0, col1 + 1):
                if col1 == col0:
                    y = y1
                else:
                    frac = (col - col0) / (col1 - col0)
                    y = y0 + frac * (y1 - y0)
                row = height - 1 - _scale(y, y_low, y_high, height)
                grid[row][col] = glyph
        for x, y in ordered:  # plot markers last so they win overlaps
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][col] = glyph
    return _render_grid(
        grid, x_low, x_high, y_low, y_high,
        title=title, x_label=x_label, y_label=y_label,
        legend=legend if len(series) > 1 else None,
    )


def scatter_plot(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    marker: str = "*",
) -> str:
    """Render an unconnected point cloud (e.g. Fig. 4's rank scatter)."""
    if not points:
        raise ValueError("need at least one point")
    if len(marker) != 1:
        raise ValueError("marker must be a single character")
    x_low, x_high = _axis_limits([x for x, _ in points])
    y_low, y_high = _axis_limits([y for _, y in points])
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][col] = marker
    return _render_grid(
        grid, x_low, x_high, y_low, y_high,
        title=title, x_label=x_label, y_label=y_label,
    )


def render_figure(fig_id: str, table) -> str | None:
    """ASCII rendering of a regenerated figure table, when one exists.

    Understands the series layouts produced by
    :mod:`repro.experiments.figures`: ``"6a"`` (ER trend over rounds),
    ``"6b"`` (per-round cost bars) and ``"7"`` (HR vs q). Returns
    ``None`` for figures whose tables are summaries rather than series.
    """
    if fig_id == "6a":
        rounds = [int(col.lstrip("r")) for col in table.headers[1:]]
        series = {
            row[0]: [
                (r, float(cell.split("/")[0]))
                for r, cell in zip(rounds, row[1:])
            ]
            for row in table.rows
        }
        return line_plot(
            series, title="ER@10 over rounds",
            x_label="round", y_label="ER@10 (%)",
        )
    if fig_id == "6b":
        bars = {}
        for row in table.rows:
            for scenario, cell in zip(table.headers[1:], row[1:]):
                bars[f"{row[0]} {scenario}"] = float(cell)
        return bar_chart(bars, title="seconds per round", unit=" s")
    if fig_id == "7":
        points = [(float(row[0]), float(row[1])) for row in table.rows]
        return line_plot(
            {"HR@10": points}, title="HR@10 vs sampling ratio q",
            x_label="q", y_label="HR@10 (%)",
        )
    return None


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled horizontal bars (e.g. Fig. 6b's per-round cost)."""
    if not values:
        raise ValueError("need at least one bar")
    top = max(values.values())
    if top < 0:
        raise ValueError("bar values must be non-negative")
    label_width = max(len(label) for label in values)
    lines: list[str] = [title] if title else []
    for label, value in values.items():
        if value < 0:
            raise ValueError("bar values must be non-negative")
        filled = _scale(value, 0.0, top, width) + 1 if top > 0 else 1
        bar = "#" * filled
        suffix = f" {value:.6g}{unit}"
        lines.append(f"{label:>{label_width}} |{bar}{suffix}")
    return "\n".join(lines)
