"""Multi-seed stability sweeps for headline claims.

The paper reports single-run numbers; a reproduction should also show
that its *qualitative* claims (attack works, defense holds, HR is
untouched) are not artifacts of one lucky seed. A
:class:`SeedSweep` runs the same experiment cell across several seeds
— reseeding the dataset synthesis, model initialisation, user sampling
and attacker randomness together — and summarises the spread.

Used by ``benchmarks/bench_seed_stability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import AttackConfig, DefenseConfig
from repro.experiments.presets import experiment
from repro.experiments.runner import Cell, run_cell

__all__ = ["SeedSweep", "sweep_seeds"]


@dataclass(frozen=True)
class SeedSweep:
    """ER/HR cells of one experiment across seeds, with summaries."""

    seeds: tuple[int, ...]
    cells: tuple[Cell, ...]

    def __post_init__(self) -> None:
        if len(self.seeds) != len(self.cells):
            raise ValueError("seeds and cells must align")
        if not self.cells:
            raise ValueError("a sweep needs at least one seed")

    @property
    def er_values(self) -> np.ndarray:
        """ER@K per seed, in percent."""
        return np.array([c.er for c in self.cells])

    @property
    def hr_values(self) -> np.ndarray:
        """HR@K per seed, in percent."""
        return np.array([c.hr for c in self.cells])

    @property
    def er_mean(self) -> float:
        return float(self.er_values.mean())

    @property
    def er_std(self) -> float:
        return float(self.er_values.std())

    @property
    def hr_mean(self) -> float:
        return float(self.hr_values.mean())

    @property
    def hr_std(self) -> float:
        return float(self.hr_values.std())

    @property
    def er_min(self) -> float:
        return float(self.er_values.min())

    @property
    def er_max(self) -> float:
        return float(self.er_values.max())

    def __str__(self) -> str:
        return (
            f"ER@10 {self.er_mean:6.2f} ± {self.er_std:5.2f} "
            f"[{self.er_min:.2f}, {self.er_max:.2f}]  "
            f"HR@10 {self.hr_mean:5.2f} ± {self.hr_std:4.2f}"
        )


def sweep_seeds(
    dataset: str,
    model_kind: str,
    *,
    attack: str | AttackConfig | None = None,
    defense: str | DefenseConfig = "none",
    seeds: Sequence[int] = (0, 1, 2),
    **train_overrides,
) -> SeedSweep:
    """Run one experiment cell across ``seeds`` and summarise.

    Every seed regenerates the whole pipeline — dataset synthesis,
    model initialisation, target selection, round sampling and attacker
    randomness — so the spread reflects full end-to-end variance rather
    than only training noise.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    cells = tuple(
        run_cell(
            experiment(
                dataset,
                model_kind,
                attack=attack,
                defense=defense,
                seed=seed,
                **train_overrides,
            )
        )
        for seed in seeds
    )
    return SeedSweep(seeds=tuple(seeds), cells=cells)
