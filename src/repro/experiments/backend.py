"""Pluggable execution backends for the sweep orchestrator.

:class:`~repro.experiments.sweep.SweepRunner` decides *what* runs (cell
specs, cache keys, stats); a backend decides *where and how* the
pending cells execute:

* :class:`LocalBackend` — the single-machine reference: cells run
  inline in the calling process (``workers <= 1``) or on a
  self-healing ``ProcessPoolExecutor`` (crashed / hung workers are
  respawned and their cells retried with exponential backoff).  This
  is the path every table generator has always used.
* :class:`SharedCacheBackend` — N *independent* worker processes (same
  host, or many hosts over a shared filesystem) cooperatively drain
  one cell grid using **only the content-addressed cache directory**
  for coordination.  No scheduler, no sockets: a worker claims a cell
  by atomically creating ``<entry>.lease`` (``O_CREAT | O_EXCL``),
  heartbeats the lease's mtime while executing, and releases it after
  the entry lands.  A worker that dies mid-cell stops heartbeating;
  once the lease goes stale (``lease_ttl`` without a refresh) any
  peer reclaims it through an atomic token-confirmed takeover and
  re-runs the cell.  Cell execution is idempotent and deterministic,
  so the rare reclaim race that leaves two workers executing the same
  cell is harmless: both produce byte-identical entries and the last
  atomic ``os.replace`` wins.

Every degradation path is counted, never silent: reclaimed leases and
peer-served cells flow back through :class:`BackendReport` into
:class:`~repro.experiments.sweep.SweepStats`.

Lease protocol state machine (per cell)::

    UNCLAIMED --O_CREAT|O_EXCL succeeds--> CLAIMED(owner A)
    CLAIMED   --heartbeat (mtime refresh every interval)--> CLAIMED
    CLAIMED   --entry written, lease unlinked--> COMPLETE
    CLAIMED   --owner dies; ttl elapses--> STALE
    STALE     --atomic os.replace takeover + token read-back--> CLAIMED(owner B)

The token read-back after a takeover confirms ownership: when two
peers race to reclaim the same stale lease, the file holds exactly one
token, so at most one reclaimer *confirms*; a loser that confirmed
against an already-overwritten read executes the cell redundantly —
covered by idempotency, and bounded by the backoff.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "BackendReport",
    "CellFailure",
    "ExecutionBackend",
    "LocalBackend",
    "SharedCacheBackend",
    "SweepExecutionError",
    "lease_path_for",
    "try_claim_lease",
    "try_reclaim_lease",
    "read_lease",
    "lease_age",
    "refresh_lease",
    "release_lease",
]

#: Filename suffix of a cell's lease, next to its cache entry.
LEASE_SUFFIX = ".lease"


@dataclass(frozen=True)
class CellFailure:
    """One cell a backend could not complete."""

    index: int  # position in the submitted cell list
    kind: str
    attempts: int
    error: str  # last failure observed for this cell


@dataclass
class BackendReport:
    """Execution accounting one backend run hands back to the runner."""

    #: Cells this process executed itself.
    executed: int = 0
    #: Cells completed by a peer worker (their cache entry appeared).
    peer_served: int = 0
    #: Cell executions resubmitted after a crash / stall (local pool).
    retries: int = 0
    #: Stale leases of dead workers taken over by this process.
    reclaimed: int = 0
    #: Datasets shipped to pool workers via shared-memory attach.
    shm_datasets: int = 0
    #: Datasets shipped to pool workers via the pickle fallback.
    pickled_datasets: int = 0


class SweepExecutionError(RuntimeError):
    """Raised when cells remain unfinished after every recovery path.

    Completed cells are already in the cache (entries are written the
    moment each cell finishes), so rerunning the same sweep resumes
    from them; ``failures`` lists exactly what is missing and why, and
    ``report`` carries the accounting up to the failure.
    """

    def __init__(
        self,
        failures: Sequence[CellFailure],
        report: BackendReport | None = None,
    ):
        self.failures = tuple(failures)
        self.report = report if report is not None else BackendReport()
        detail = "; ".join(
            f"cell {f.index} ({f.kind}) after {f.attempts} attempts: {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed permanently: {detail}"
        )


class ExecutionBackend:
    """Strategy interface: execute the cells the cache could not serve.

    ``pending`` is a list of ``(index, key)`` pairs (``key`` is ``None``
    without a cache); the backend fills ``results[index]`` for each,
    persisting finished cells through ``store`` the moment they land.
    ``load_cached`` re-checks the cache (used by coordinating backends
    to pick up peers' results) and ``entry_path`` maps a key to its
    cache-entry path (for lease placement).  Raises
    :class:`SweepExecutionError` when cells remain unfinished.
    """

    def run_pending(
        self,
        *,
        cells: Sequence[Any],
        loaded: dict[str, Any],
        pending: list[tuple[int, str | None]],
        results: list[Any],
        store: Callable[[str | None, Any, Any], None],
        load_cached: Callable[[str], Any | None],
        entry_path: Callable[[str], str] | None = None,
    ) -> BackendReport:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Worker-process plumbing (top-level: pool workers import by name)
# ----------------------------------------------------------------------

#: Per-worker dataset table, installed once by the pool initializer.
_WORKER_DATASETS: dict[str, Any] | None = None
#: Attached shared-memory exports — kept alive for the worker's
#: lifetime so the zero-copy dataset views stay mapped.
_WORKER_EXPORTS: list[Any] = []


def _pool_initializer(payload: bytes) -> None:
    """Install the shared datasets once per worker process.

    The payload maps each dataset key to a ``(transport, value)``
    pair: ``("shm", manifest)`` attaches the parent's shared-memory
    export zero-copy (N workers cost ~one dataset of RSS, not N);
    ``("pickle", dataset)`` is the portable fallback used when
    ``/dev/shm`` is unavailable.
    """
    global _WORKER_DATASETS
    table = pickle.loads(payload)
    datasets: dict[str, Any] = {}
    for key, (transport, value) in table.items():
        if transport == "shm":
            from repro.federated.shards import SharedDatasetExport

            export = SharedDatasetExport.attach(value)
            _WORKER_EXPORTS.append(export)
            datasets[key] = export.dataset
        else:
            datasets[key] = value
    _WORKER_DATASETS = datasets


def _pool_execute(index: int, spec: Any) -> tuple[int, Any]:
    """Worker entry point: run one cell against the shipped dataset."""
    from repro.experiments.sweep import execute_cell

    assert _WORKER_DATASETS is not None, "pool initializer did not run"
    return index, execute_cell(spec, _WORKER_DATASETS[spec.dataset_key])


# ----------------------------------------------------------------------
# LocalBackend: inline or self-healing process pool (the reference)
# ----------------------------------------------------------------------

class LocalBackend(ExecutionBackend):
    """Single-machine execution: inline, or a self-healing process pool.

    ``workers <= 1`` (or a single pending cell) runs everything inline
    in the calling process — the sequential reference path.  Otherwise
    pending cells run on a ``ProcessPoolExecutor``; shared datasets
    are pickled once and shipped through the pool initializer.

    The pooled path is **self-healing**: a worker crash (a killed
    process breaks the whole pool) or a completion stall longer than
    ``cell_timeout`` no longer kills the sweep.  The incomplete cells
    are resubmitted on a freshly spawned pool, with exponential
    backoff (``retry_backoff * 2**attempt`` seconds), up to
    ``max_retries`` extra pool lifetimes; cells that still have no
    result then are reported in a structured
    :class:`SweepExecutionError`.  Determinism makes retrying free of
    semantics: a cell's value never depends on which pool (or which
    attempt) computed it.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        cell_timeout: float | None = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        self.workers = workers
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.cell_timeout = cell_timeout
        #: Transport accounting of the most recent pooled run — how
        #: many datasets went to workers via shared-memory attach vs
        #: the pickle fallback (the million-user bench asserts the
        #: pickle count is zero when /dev/shm is available).
        self.last_shm_datasets = 0
        self.last_pickled_datasets = 0

    def run_pending(
        self,
        *,
        cells,
        loaded,
        pending,
        results,
        store,
        load_cached,
        entry_path=None,
    ) -> BackendReport:
        from repro.experiments.sweep import execute_cell

        if self.workers >= 2 and len(pending) >= 2:
            retries = self._run_pool(cells, loaded, pending, results, store)
            return BackendReport(
                executed=len(pending),
                retries=retries,
                shm_datasets=self.last_shm_datasets,
                pickled_datasets=self.last_pickled_datasets,
            )
        for index, key in pending:
            spec = cells[index]
            results[index] = execute_cell(spec, loaded[spec.dataset_key])
            store(key, spec, results[index])
        return BackendReport(executed=len(pending))

    # -- pooled path ---------------------------------------------------

    def _run_pool(self, cells, loaded, pending, results, store) -> int:
        """Run pending cells on a pool, respawning it on crashes.

        One pool lifetime per attempt: every cell still missing a
        result is (re)submitted, completions are cached the moment
        they land, and whatever crashed or stalled rolls over to the
        next attempt after an exponential backoff.  Returns the total
        number of resubmitted cell executions; raises
        :class:`SweepExecutionError` once ``max_retries`` pool
        lifetimes have not been enough.
        """
        from repro.federated.shards import (
            SharedDatasetExport,
            shared_memory_available,
        )

        needed = {cells[index].dataset_key for index, _ in pending}
        # Ship each dataset once through shared memory: workers attach
        # the parent's segments zero-copy instead of unpickling their
        # own private copy.  The pickle transport survives only as the
        # explicit no-/dev/shm fallback, and both paths are counted so
        # a silent downgrade is impossible.
        exports: dict[str, SharedDatasetExport] = {}
        table: dict[str, tuple[str, Any]] = {}
        self.last_shm_datasets = 0
        self.last_pickled_datasets = 0
        for key in needed:
            if shared_memory_available():
                exports[key] = SharedDatasetExport.create(loaded[key])
                table[key] = ("shm", exports[key].manifest)
                self.last_shm_datasets += 1
            else:
                table[key] = ("pickle", loaded[key])
                self.last_pickled_datasets += 1
        payload = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            remaining = list(pending)
            last_errors: dict[int, str] = {}
            retries = 0
            for attempt in range(self.max_retries + 1):
                if attempt:
                    retries += len(remaining)
                    delay = self.retry_backoff * (2 ** (attempt - 1))
                    if delay:
                        time.sleep(delay)
                remaining = self._pool_attempt(
                    cells, payload, remaining, results, store, last_errors
                )
                if not remaining:
                    return retries
            failures = [
                CellFailure(
                    index=index,
                    kind=cells[index].kind,
                    attempts=self.max_retries + 1,
                    error=last_errors.get(index, "unknown failure"),
                )
                for index, _ in remaining
            ]
            raise SweepExecutionError(
                failures,
                BackendReport(
                    executed=len(pending),
                    retries=retries,
                    shm_datasets=self.last_shm_datasets,
                    pickled_datasets=self.last_pickled_datasets,
                ),
            )
        finally:
            # Exports outlive every pool attempt (workers re-attach on
            # respawn) and are unlinked the moment the run is over.
            for export in exports.values():
                export.close()

    def _pool_attempt(
        self, cells, payload, remaining, results, store, last_errors
    ) -> list[tuple[int, str | None]]:
        """One pool lifetime; returns the cells that still need a run.

        A single dead worker breaks the whole ``ProcessPoolExecutor``
        (every outstanding future resolves to ``BrokenProcessPool``),
        so anything unfinished when that happens simply rolls over.  A
        stall — ``cell_timeout`` elapsing with *zero* completions — is
        treated the same way, with the hung workers terminated so the
        respawned pool does not compete with them for cores.
        """
        workers = min(self.workers, len(remaining))
        crashed: list[tuple[int, str | None]] = []
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_initializer,
            initargs=(payload,),
        )
        try:
            futures = {
                pool.submit(_pool_execute, index, cells[index]): (index, key)
                for index, key in remaining
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=self.cell_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # cell_timeout with no completion at all: the pool
                    # is hung.  Kill it and roll everything over.
                    for future in outstanding:
                        index, key = futures[future]
                        last_errors[index] = (
                            f"no completion within {self.cell_timeout}s; "
                            "pool presumed hung"
                        )
                        crashed.append((index, key))
                    self._terminate_workers(pool)
                    break
                for future in done:
                    index, key = futures[future]
                    try:
                        _, values = future.result()
                    except Exception as exc:  # noqa: BLE001 — any worker
                        # death surfaces here (BrokenProcessPool for
                        # crashes, the cell's own exception otherwise).
                        last_errors[index] = f"{type(exc).__name__}: {exc}"
                        crashed.append((index, key))
                    else:
                        results[index] = values
                        store(key, cells[index], values)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return crashed

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Force-kill a hung pool's worker processes.

        ``shutdown`` alone would leave hung workers running (it only
        refuses new work); terminating them is the only way a stalled
        attempt actually releases its cores.  ``_processes`` is
        CPython's internal table — guarded so a future rename degrades
        to a plain shutdown instead of an error.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers
                pass


# ----------------------------------------------------------------------
# Lease primitives (shared filesystem, POSIX-atomic operations only)
# ----------------------------------------------------------------------

def lease_path_for(entry_path: str) -> str:
    """The lease filename guarding one cache entry."""
    return entry_path + LEASE_SUFFIX


def try_claim_lease(path: str, record: dict[str, Any]) -> bool:
    """Claim an unclaimed lease; True iff this caller created the file.

    ``O_CREAT | O_EXCL`` is atomic on POSIX filesystems (including NFS
    v3+), so exactly one of any number of racing claimants succeeds.
    """
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        json.dump(record, handle)
    return True


def try_reclaim_lease(path: str, record: dict[str, Any], token: str) -> bool:
    """Take over a stale lease; True iff this caller's token survived.

    The takeover is an atomic ``os.replace`` of a freshly written
    owner record, followed by a read-back: the lease file holds
    exactly one token at any instant, so among racing reclaimers at
    most one confirms per read window.  Callers must only invoke this
    on leases whose age exceeds the TTL.
    """
    tmp_path = f"{path}.{os.getpid()}.reclaim.tmp"
    try:
        with open(tmp_path, "w") as handle:
            json.dump(record, handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
    current = read_lease(path)
    return current is not None and current.get("token") == token


def read_lease(path: str) -> dict[str, Any] | None:
    """The lease's owner record, or ``None`` when missing/unreadable."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def lease_age(path: str, *, now: float | None = None) -> float | None:
    """Seconds since the lease's last heartbeat; ``None`` if absent."""
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return (time.time() if now is None else now) - mtime


def refresh_lease(path: str) -> bool:
    """Heartbeat: bump the lease's mtime; False when it vanished."""
    try:
        os.utime(path, None)
    except OSError:
        return False
    return True


def release_lease(path: str) -> None:
    """Drop a lease after its entry landed (idempotent)."""
    try:
        os.unlink(path)
    except OSError:
        pass


class _Heartbeat:
    """Background mtime refresher for a held lease.

    Runs in a daemon thread while the cell executes (the work is
    numpy-heavy and releases the GIL, so the timer fires on schedule).
    Stops by itself if the lease vanishes — e.g. a peer completed the
    cell and swept the lease — because refreshing a recreated file
    would fence out a legitimate new owner.
    """

    def __init__(self, path: str, interval: float):
        self._path = path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not refresh_lease(self._path):
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


# ----------------------------------------------------------------------
# SharedCacheBackend: multi-worker coordination over the cache dir
# ----------------------------------------------------------------------

class SharedCacheBackend(ExecutionBackend):
    """Drain a cell grid cooperatively with unrelated worker processes.

    Launch the *same sweep* from N independent processes (terminals,
    hosts, a job scheduler) pointed at one ``cache_dir``; each process
    uses this backend and they partition the grid dynamically via
    lease files, each executing cells one at a time in its own
    process.  There is no leader: the cache directory is the only
    shared state, so adding or losing workers at any point is safe.

    ``lease_ttl`` bounds how long a dead worker can pin a cell: pick
    it comfortably above the heartbeat interval (default ``ttl / 4``)
    and filesystem timestamp granularity, and below the cost of the
    cheapest cell you mind re-running.  On claim contention the drain
    loop backs off exponentially (capped at ``max_backoff``) with
    multiplicative jitter from a generator seeded by ``jitter_seed``
    (derived from ``owner`` by default), so workers desynchronise
    deterministically per owner instead of stampeding the directory.

    ``wait_timeout`` guards the pathological tail: if *nothing*
    progresses for that long (every remaining cell leased by workers
    that neither finish nor die), the drain gives up with a
    structured :class:`SweepExecutionError`.  ``None`` waits forever.
    """

    def __init__(
        self,
        *,
        owner: str | None = None,
        lease_ttl: float = 30.0,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.05,
        max_backoff: float = 2.0,
        jitter_seed: int | None = None,
        wait_timeout: float | None = None,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if max_backoff < poll_interval:
            raise ValueError("max_backoff must be >= poll_interval")
        if wait_timeout is not None and wait_timeout <= 0:
            raise ValueError("wait_timeout must be positive")
        self.owner = (
            owner
            if owner is not None
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else lease_ttl / 4
        )
        self.poll_interval = poll_interval
        self.max_backoff = max_backoff
        if jitter_seed is None:
            import hashlib

            jitter_seed = int.from_bytes(
                hashlib.sha256(self.owner.encode()).digest()[:8], "little"
            )
        self._rng = np.random.default_rng(jitter_seed)
        self.wait_timeout = wait_timeout
        self._claims = 0

    # -- lease bookkeeping ---------------------------------------------

    def _owner_record(self, token: str) -> dict[str, Any]:
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "token": token,
        }

    def _next_token(self) -> str:
        self._claims += 1
        return f"{self.owner}#{self._claims}"

    def _acquire(self, lease_path: str) -> tuple[str, bool] | None:
        """Try to own a cell's lease; ``(token, was_reclaimed)`` or None.

        Fresh claims go through ``O_CREAT | O_EXCL``; leases older
        than ``lease_ttl`` (their owner stopped heartbeating — dead,
        or wedged badly enough to count as dead) are taken over with
        the token-confirmed atomic replace.
        """
        token = self._next_token()
        record = self._owner_record(token)
        if try_claim_lease(lease_path, record):
            return token, False
        age = lease_age(lease_path)
        if age is None or age <= self.lease_ttl:
            return None  # vanished (retry next pass) or held live
        if try_reclaim_lease(lease_path, record, token):
            return token, True
        return None

    def _sweep_completed_lease(self, lease_path: str) -> None:
        """Clear the stale lease of a cell whose entry already landed.

        A worker killed *between* storing the entry and releasing the
        lease leaves a permanent orphan; once stale it is garbage (the
        entry is the source of truth) and unlinking it keeps the cache
        directory clean.  Fresh leases are left alone — they belong to
        a live redundant executor whose rewrite is byte-identical.
        """
        age = lease_age(lease_path)
        if age is not None and age > self.lease_ttl:
            release_lease(lease_path)

    # -- the drain loop ------------------------------------------------

    def run_pending(
        self,
        *,
        cells,
        loaded,
        pending,
        results,
        store,
        load_cached,
        entry_path=None,
    ) -> BackendReport:
        from repro.experiments.sweep import execute_cell

        if entry_path is None or any(key is None for _, key in pending):
            raise ValueError(
                "SharedCacheBackend coordinates through the cache directory; "
                "construct the SweepRunner with cache_dir="
            )
        if pending:
            # Leases live next to the entries; the cache directory must
            # exist before the first claim (entries themselves create it
            # lazily through the atomic-write helper).
            first_dir = os.path.dirname(
                os.path.abspath(entry_path(pending[0][1]))
            )
            os.makedirs(first_dir, exist_ok=True)
        report = BackendReport()
        remaining = list(pending)
        backoff = self.poll_interval
        idle_since: float | None = None
        while remaining:
            progressed = False
            next_remaining: list[tuple[int, str | None]] = []
            for index, key in remaining:
                lease_path = lease_path_for(entry_path(key))
                cached = load_cached(key)
                if cached is not None:
                    # A peer finished this cell (now or in a previous
                    # run); adopt its entry and sweep lease orphans.
                    results[index] = cached
                    report.peer_served += 1
                    self._sweep_completed_lease(lease_path)
                    progressed = True
                    continue
                acquired = self._acquire(lease_path)
                if acquired is None:
                    next_remaining.append((index, key))
                    continue
                _, was_reclaimed = acquired
                if was_reclaimed:
                    report.reclaimed += 1
                spec = cells[index]
                try:
                    with _Heartbeat(lease_path, self.heartbeat_interval):
                        values = execute_cell(spec, loaded[spec.dataset_key])
                    store(key, spec, values)
                finally:
                    # Entry before release: a crash in between leaves a
                    # stale lease next to a complete entry, swept by
                    # whichever peer reads the entry next.
                    release_lease(lease_path)
                results[index] = values
                report.executed += 1
                progressed = True
            remaining = next_remaining
            if not remaining:
                break
            if progressed:
                backoff = self.poll_interval
                idle_since = None
            else:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (
                    self.wait_timeout is not None
                    and now - idle_since > self.wait_timeout
                ):
                    failures = [
                        CellFailure(
                            index=index,
                            kind=cells[index].kind,
                            attempts=1,
                            error=(
                                f"no progress within {self.wait_timeout}s; "
                                "cell leased by a live worker that never "
                                "completed"
                            ),
                        )
                        for index, _ in remaining
                    ]
                    raise SweepExecutionError(failures, report)
                # Multiplicative jitter in [0.5, 1.5) de-synchronises
                # contending workers; deterministic per owner seed.
                time.sleep(backoff * (0.5 + float(self._rng.random())))
                backoff = min(backoff * 2.0, self.max_backoff)
        return report
