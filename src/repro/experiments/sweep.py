"""Parallel sweep orchestrator: pluggable cell execution with caching.

The paper's evaluation is a grid of dozens of *independent* cells
(attacks x models x datasets, defenses x models x attacks, ...).  With
the intra-round engine fully vectorised, wall-clock for regenerating
the tables is dominated by the outer loop over cells — which this
module parallelises one layer up:

* table/figure generators declare their cells as data — a
  :class:`CellSpec` holding one :class:`~repro.config.ExperimentConfig`,
  the key of a shared dataset, the evaluation cutoffs and a cell
  *kind*;
* a :class:`SweepRunner` decides what needs to run (cache hits, cell
  keys, stats) and hands the pending cells to a pluggable
  :class:`~repro.experiments.backend.ExecutionBackend`:
  :class:`~repro.experiments.backend.LocalBackend` runs them inline or
  on a self-healing ``ProcessPoolExecutor`` (the default, single
  machine), and
  :class:`~repro.experiments.backend.SharedCacheBackend` lets N
  independent worker processes cooperatively drain one grid using only
  the cache directory — atomic lease files with heartbeats, stale-lease
  reclamation when a worker dies mid-cell;
* a content-addressed on-disk cache (``cache_dir``) keyed by a stable
  hash of the experiment config, the dataset *content* fingerprint,
  the evaluation cutoffs and a code-version tag lets re-runs skip
  completed cells and interrupted sweeps resume — cache entries are
  written through :mod:`repro.persistence` (atomically, with a sha256
  digest verified on every read) as each cell finishes.

Per-cell determinism already holds (both engines are bit-identical and
seeded), so parallel execution order cannot leak into results: a cell's
value depends only on its spec and its dataset, never on which worker
ran it or when.  The parity suite in ``tests/test_sweep.py`` asserts
byte-identical cells between the pooled and sequential paths, and
``tests/test_distributed_backend.py`` extends the same contract to the
multi-worker shared-cache path.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.config import DatasetConfig, ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.datasets.loaders import load_dataset
from repro.experiments.backend import (
    BackendReport,
    CellFailure,
    ExecutionBackend,
    LocalBackend,
    SharedCacheBackend,
    SweepExecutionError,
)
from repro.experiments.runner import Cell, run_cells
from repro.federated.simulation import FederatedSimulation
from repro.metrics.divergence import pairwise_kl, user_coverage_ratio
from repro.persistence import read_sweep_entry, save_sweep_entry

__all__ = [
    "CACHE_VERSION",
    "BackendReport",
    "CellSpec",
    "CellFailure",
    "ExecutionBackend",
    "LocalBackend",
    "SharedCacheBackend",
    "SweepDryRun",
    "SweepExecutionError",
    "SweepStats",
    "SweepRunner",
    "cells_from_values",
    "cell_cache_key",
    "dataset_fingerprint",
    "execute_cell",
    "register_cell_kind",
]

#: Code-relevant version tag baked into every cache key.  Bump whenever
#: a change alters what any cell computes (engine semantics, evaluation
#: maths, cell-kind payload meaning) so stale caches self-invalidate.
#: v2: attack target-step gradients moved to the stacked axis-norm
#: kernel (stacked_step_gradients), which differs from the old per-
#: target 1-D BLAS-dot norm in the last ulp when clipping fires.
#: v3: the kernel dispatch layer pinned sequential accumulation orders
#: for the Krum-family pairwise distances (was batched BLAS GEMM) and
#: the stacked/mining norms (was pairwise-blocked add.reduce), moving
#: defended and attacked cells by last-ulp amounts.
#: v4: ExperimentConfig grew a FaultConfig (hashed via asdict like the
#: rest of the config, so fault parameters enter every key); zero-fault
#: values are unchanged but the key layout is not.
#: v5: ExperimentConfig grew an AsyncConfig (``asynchrony``), so every
#: asynchrony parameter enters every key; synchronous values are
#: unchanged but the key layout is not.
CACHE_VERSION = "sweep-v5"


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell, declared as data.

    ``dataset_key`` names an entry of the dataset mapping passed to
    :meth:`SweepRunner.run` (the paper's tables share one dataset
    across a whole table).  ``ks`` lists the evaluation cutoffs; one
    result pair is produced per cutoff (``None`` means the config's
    ``train.top_k``).  ``kind`` selects the executor: ``"er_hr"`` runs
    the federated simulation and reports ER@K / HR@K percentages,
    ``"pkl_ucr"`` trains a clean FRS and reports the PKL / UCR
    closeness metrics of Table II for each popular-set size in
    ``payload``.
    """

    config: ExperimentConfig
    dataset_key: str = "default"
    ks: tuple[int, ...] | None = None
    kind: str = "er_hr"
    #: Kind-specific extra parameters (hashed into the cache key).
    payload: tuple = ()
    engine: str = "batch"


@dataclass(frozen=True)
class SweepStats:
    """Execution accounting of one (or several accumulated) sweep runs.

    Every degradation path a sweep can take is counted here, never
    silent: pool respawns (``retries``), stale-lease takeovers from
    dead workers (``reclaimed``), corrupt cache entries moved aside
    and re-executed (``quarantined``), cells another worker finished
    for us (``peer_served``), and cells that stayed unfinished after
    every recovery path (``failed``).
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Cell executions resubmitted to a respawned pool after a worker
    #: crash, a broken pool, or a completion timeout.
    retries: int = 0
    #: Cells that still had no result when every recovery path ran out
    #: (also enumerated on the raised :class:`SweepExecutionError`).
    failed: int = 0
    #: Stale leases of dead workers taken over by this process
    #: (shared-cache backend only).
    reclaimed: int = 0
    #: Corrupt or torn cache entries moved aside on read and
    #: re-executed (counted as misses, never trusted).
    quarantined: int = 0
    #: Cells completed by a cooperating peer worker while this process
    #: was draining the same grid (shared-cache backend only).
    peer_served: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of cells served from the cache (0.0 on empty runs)."""
        return self.cache_hits / self.total if self.total else 0.0

    def merged(self, other: "SweepStats") -> "SweepStats":
        return SweepStats(
            total=self.total + other.total,
            cache_hits=self.cache_hits + other.cache_hits,
            executed=self.executed + other.executed,
            retries=self.retries + other.retries,
            failed=self.failed + other.failed,
            reclaimed=self.reclaimed + other.reclaimed,
            quarantined=self.quarantined + other.quarantined,
            peer_served=self.peer_served + other.peer_served,
        )


class SweepDryRun(Exception):
    """Raised by :meth:`SweepRunner.run` in dry-run mode.

    Carries the cell ``plan`` (one record per cell: index, kind, cache
    key and whether the cache already holds it) instead of executing
    anything.  Control-flow by design: table generators call
    ``runner.run`` exactly once deep inside their formatting code, so
    an exception is the only clean way to stop them before execution
    while still surfacing the plan.
    """

    def __init__(self, plan: list[dict[str, Any]]):
        self.plan = plan
        cached = sum(1 for entry in plan if entry["cached"])
        super().__init__(
            f"dry run: {len(plan)} cell(s), {cached} cached, "
            f"{len(plan) - cached} pending"
        )


# ----------------------------------------------------------------------
# Cell executors (must stay top-level: workers import them by name)
# ----------------------------------------------------------------------

def _run_er_hr(spec: CellSpec, dataset: InteractionDataset) -> list[list[float]]:
    """Train one simulation, evaluate every requested cutoff.

    Returns ``[[er_percent, hr_percent], ...]`` — one pair per K, in
    ``spec.ks`` order — exactly the numbers :class:`Cell` formats.
    """
    cells = run_cells(
        spec.config, dataset=dataset, ks=spec.ks, engine=spec.engine
    )
    return [[cell.er, cell.hr] for cell in cells]


def _run_pkl_ucr(spec: CellSpec, dataset: InteractionDataset) -> dict[str, list[float]]:
    """Table II cell: train a clean FRS, measure PKL / UCR per N.

    ``spec.payload`` is the tuple of popular-set sizes N.  The covered
    user set is computed with the vectorised CSR membership test
    (:meth:`~repro.datasets.base.InteractionDataset.covered_users`)
    instead of a per-user Python loop.
    """
    sim = FederatedSimulation(spec.config, dataset=dataset, engine=spec.engine)
    sim.run()
    ranking = dataset.popularity_ranking()
    users = sim.user_embedding_matrix()
    pkl: list[float] = []
    ucr: list[float] = []
    for n in spec.payload:
        popular = ranking[: min(int(n), dataset.num_items)]
        covered = dataset.covered_users(popular)
        item_vecs = sim.model.item_embeddings[popular]
        user_vecs = users[covered] if len(covered) else users
        pkl.append(float(pairwise_kl(item_vecs, user_vecs)))
        ucr.append(float(user_coverage_ratio(dataset, popular)))
    return {"pkl": pkl, "ucr": ucr}


_CELL_KINDS = {
    "er_hr": _run_er_hr,
    "pkl_ucr": _run_pkl_ucr,
}


def register_cell_kind(
    kind: str, executor: Callable[[CellSpec, InteractionDataset], Any]
) -> None:
    """Register a custom cell executor under ``kind``.

    Pool workers see parent-registered kinds through the fork start
    method (the Linux default); on spawn-based platforms custom kinds
    must be registered at module import time so workers re-register
    them.  Values returned by the executor must be JSON-serialisable
    for the cache, like the built-in kinds.
    """
    _CELL_KINDS[kind] = executor


def execute_cell(spec: CellSpec, dataset: InteractionDataset) -> Any:
    """Run one cell spec against its dataset and return its raw values.

    Raw values are plain JSON-serialisable structures (lists / dicts of
    floats) so they round-trip bit-exactly through both pickling (the
    pool) and the JSON cache.
    """
    try:
        executor = _CELL_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {spec.kind!r}; expected one of "
            f"{sorted(_CELL_KINDS)}"
        ) from None
    return executor(spec, dataset)


def cells_from_values(values: Sequence[Sequence[float]]) -> tuple[Cell, ...]:
    """Reconstruct the formatted-cell tuple from an ``er_hr`` raw value."""
    return tuple(Cell(er=pair[0], hr=pair[1]) for pair in values)


# ----------------------------------------------------------------------
# Content-addressed cache keys
# ----------------------------------------------------------------------

def dataset_fingerprint(dataset: InteractionDataset) -> str:
    """Stable content hash of a dataset's interactions and split.

    Hashing the *content* (not the generating config) means any change
    to the dataset — different synthesis code, different raw files on
    disk, a different split — busts every cache key built on it.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{dataset.name}|{dataset.num_users}|{dataset.num_items}".encode()
    )
    # Deliberately reads train_pos directly rather than the memoised
    # train_csr() cache: a caller-materialised dataset mutated between
    # runs must change its fingerprint, and the CSR cache would pin the
    # pre-mutation interactions.
    lengths = np.fromiter(
        (len(items) for items in dataset.train_pos),
        dtype=np.int64,
        count=dataset.num_users,
    )
    digest.update(lengths.tobytes())
    if dataset.num_users and lengths.sum():
        indices = np.concatenate(dataset.train_pos)
        digest.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
    digest.update(
        np.ascontiguousarray(dataset.test_items, dtype=np.int64).tobytes()
    )
    return digest.hexdigest()


def cell_cache_key(spec: CellSpec, dataset_fp: str) -> str:
    """Content address of one cell result.

    The key covers everything the result depends on: the code-version
    tag, the cell kind and engine, the full experiment config, the
    evaluation cutoffs, the kind payload and the dataset fingerprint.
    Any difference in any of them yields a different key.

    ``train.kernels`` is deliberately *excluded*: the kernel backends
    are bit-identical by contract (enforced by the differential parity
    suite and the native tier-1 CI leg), so a cell's value cannot
    depend on which backend computed it — and a numpy-run cache must
    keep serving native-backend sweeps verbatim, and vice versa.
    ``sharding`` is excluded for the same reason: the sharded store
    and the multi-process executor are bit-identical to the dense
    single-process path (enforced by the executor parity suite), so a
    dense-run cache serves sharded sweeps verbatim, and vice versa.
    """
    ks = spec.ks if spec.ks is not None else (spec.config.train.top_k,)
    config_record = asdict(spec.config)
    config_record["train"].pop("kernels", None)
    config_record.pop("sharding", None)
    record = {
        "version": CACHE_VERSION,
        "kind": spec.kind,
        "engine": spec.engine,
        "ks": list(ks),
        "payload": list(spec.payload),
        "config": config_record,
        "dataset": dataset_fp,
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------

class SweepRunner:
    """Executes a list of cell specs, from cache and/or a backend.

    The runner owns the *what*: cache keys, hit/miss accounting,
    dataset loading and fingerprinting.  The *how* is delegated to an
    :class:`~repro.experiments.backend.ExecutionBackend`:

    * By default a :class:`~repro.experiments.backend.LocalBackend` is
      built from ``workers`` / ``max_retries`` / ``retry_backoff`` /
      ``cell_timeout``, preserving the historical behaviour exactly —
      ``workers <= 1`` runs every cell inline (the sequential
      reference path), ``workers >= 2`` runs pending cells on a
      self-healing process pool.
    * Pass ``backend=SharedCacheBackend(...)`` (with ``cache_dir``
      set) to make this process one of N independent workers
      cooperatively draining the same grid through lease files in the
      cache directory.

    With ``cache_dir`` set, each finished cell is written to a
    content-addressed JSON entry (atomic, digest-stamped) the moment
    it completes, so an interrupted sweep resumes from what it
    finished, and a repeated sweep is served from cache entirely.
    Entries are verified on read: a torn or bit-flipped entry is
    quarantined (moved aside), counted in ``SweepStats.quarantined``
    and re-executed — never trusted, never fatal.  ``last_stats`` /
    ``total_stats`` expose the full accounting.

    ``dry_run=True`` stops :meth:`run` right after the cache pass: the
    per-cell plan (cached vs pending) is recorded in ``last_plan`` and
    raised as :class:`SweepDryRun` without executing anything.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        cache_dir: str | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        cell_timeout: float | None = None,
        backend: ExecutionBackend | None = None,
        dry_run: bool = False,
    ):
        if backend is None:
            backend = LocalBackend(
                workers=workers,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                cell_timeout=cell_timeout,
            )
        elif isinstance(backend, SharedCacheBackend) and cache_dir is None:
            raise ValueError("SharedCacheBackend requires cache_dir")
        self.backend = backend
        self.workers = workers
        self.cache_dir = cache_dir
        #: Extra pool lifetimes granted to crashed/stalled cells.
        self.max_retries = max_retries
        #: Base of the exponential backoff between pool respawns.
        self.retry_backoff = retry_backoff
        #: Longest the pooled path waits for *any* cell completion
        #: before declaring the pool hung and respawning it; ``None``
        #: waits indefinitely.
        self.cell_timeout = cell_timeout
        self.dry_run = dry_run
        self.last_stats = SweepStats()
        self.total_stats = SweepStats()
        #: Cell plan recorded by the latest dry run (also carried on
        #: the raised :class:`SweepDryRun`).
        self.last_plan: list[dict[str, Any]] = []
        # Datasets this runner generated (and their fingerprints),
        # memoised by their frozen DatasetConfig: a multi-table sweep
        # through one runner generates and fingerprints each shared
        # dataset once, not once per table.
        self._loaded: dict[DatasetConfig, InteractionDataset] = {}
        self._fingerprints: dict[DatasetConfig, str] = {}
        # Corrupt entries moved aside during the current run().
        self._quarantined_this_run = 0

    # -- cache helpers -------------------------------------------------

    def _entry_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _load_cached(self, key: str) -> Any | None:
        entry, status = read_sweep_entry(self._entry_path(key))
        if status == "quarantined":
            self._quarantined_this_run += 1
        if entry is None or entry.get("key") != key:
            return None
        return entry["values"]

    def _store(self, key: str | None, spec: CellSpec, values: Any) -> None:
        if key is None:
            return
        save_sweep_entry(
            self._entry_path(key), key=key, kind=spec.kind, values=values
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        cells: Sequence[CellSpec],
        datasets: Mapping[str, DatasetConfig | InteractionDataset],
    ) -> list[Any]:
        """Execute (or recall) every cell; results align with ``cells``.

        ``datasets`` maps each ``dataset_key`` to either a
        :class:`~repro.config.DatasetConfig` (generated exactly once,
        here) or an already-materialised
        :class:`~repro.datasets.base.InteractionDataset`.
        """
        cells = list(cells)
        loaded: dict[str, InteractionDataset] = {}
        for key, value in datasets.items():
            if isinstance(value, InteractionDataset):
                loaded[key] = value
            else:
                if value not in self._loaded:
                    self._loaded[value] = load_dataset(value)
                loaded[key] = self._loaded[value]
        for spec in cells:
            if spec.dataset_key not in loaded:
                raise KeyError(
                    f"cell references unknown dataset key {spec.dataset_key!r}"
                )

        fingerprints: dict[str, str] = {}
        if self.cache_dir is not None:
            for key, value in datasets.items():
                if isinstance(value, DatasetConfig):
                    if value not in self._fingerprints:
                        self._fingerprints[value] = dataset_fingerprint(
                            loaded[key]
                        )
                    fingerprints[key] = self._fingerprints[value]
                else:
                    # Caller-materialised datasets are hashed per run —
                    # the runner cannot know they were left unmutated.
                    fingerprints[key] = dataset_fingerprint(value)

        self._quarantined_this_run = 0
        results: list[Any] = [None] * len(cells)
        pending: list[tuple[int, str | None]] = []
        hits = 0
        for index, spec in enumerate(cells):
            key = None
            if self.cache_dir is not None:
                key = cell_cache_key(spec, fingerprints[spec.dataset_key])
                cached = self._load_cached(key)
                if cached is not None:
                    results[index] = cached
                    hits += 1
                    continue
            pending.append((index, key))

        if self.dry_run:
            pending_indices = {index for index, _ in pending}
            self.last_plan = [
                {
                    "index": index,
                    "kind": spec.kind,
                    "dataset_key": spec.dataset_key,
                    "key": (
                        cell_cache_key(spec, fingerprints[spec.dataset_key])
                        if self.cache_dir is not None
                        else None
                    ),
                    "cached": index not in pending_indices,
                }
                for index, spec in enumerate(cells)
            ]
            raise SweepDryRun(self.last_plan)

        report = BackendReport()
        if pending:
            try:
                report = self.backend.run_pending(
                    cells=cells,
                    loaded=loaded,
                    pending=pending,
                    results=results,
                    store=self._store,
                    load_cached=(
                        self._load_cached
                        if self.cache_dir is not None
                        else lambda key: None
                    ),
                    entry_path=(
                        self._entry_path if self.cache_dir is not None else None
                    ),
                )
            except SweepExecutionError as exc:
                self._record_stats(
                    len(cells), hits, exc.report, failed=len(exc.failures)
                )
                raise
        self._record_stats(len(cells), hits, report)
        return results

    def _record_stats(
        self, total: int, hits: int, report: BackendReport, *, failed: int = 0
    ) -> None:
        self.last_stats = SweepStats(
            total=total,
            cache_hits=hits,
            executed=report.executed,
            retries=report.retries,
            failed=failed,
            reclaimed=report.reclaimed,
            quarantined=self._quarantined_this_run,
            peer_served=report.peer_served,
        )
        self.total_stats = self.total_stats.merged(self.last_stats)
