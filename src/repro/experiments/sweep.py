"""Parallel sweep orchestrator: process-pool cell execution with caching.

The paper's evaluation is a grid of dozens of *independent* cells
(attacks x models x datasets, defenses x models x attacks, ...).  With
the intra-round engine fully vectorised, wall-clock for regenerating
the tables is dominated by the outer loop over cells — which this
module parallelises one layer up:

* table/figure generators declare their cells as data — a
  :class:`CellSpec` holding one :class:`~repro.config.ExperimentConfig`,
  the key of a shared dataset, the evaluation cutoffs and a cell
  *kind*;
* a :class:`SweepRunner` executes the declared cells either inline
  (``workers <= 1``, the sequential reference path) or on a
  ``ProcessPoolExecutor``: each shared dataset is generated exactly
  once in the parent and shipped to every worker as one pickle-once
  payload through the pool initializer, so no worker ever re-generates
  a dataset;
* a content-addressed on-disk cache (``cache_dir``) keyed by a stable
  hash of the experiment config, the dataset *content* fingerprint,
  the evaluation cutoffs and a code-version tag lets re-runs skip
  completed cells and interrupted sweeps resume — cache entries are
  written through :mod:`repro.persistence` as each cell finishes.

Per-cell determinism already holds (both engines are bit-identical and
seeded), so parallel execution order cannot leak into results: a cell's
value depends only on its spec and its dataset, never on which worker
ran it or when.  The parity suite in ``tests/test_sweep.py`` asserts
byte-identical cells between the pooled and sequential paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.config import DatasetConfig, ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.datasets.loaders import load_dataset
from repro.experiments.runner import Cell, run_cells
from repro.federated.simulation import FederatedSimulation
from repro.metrics.divergence import pairwise_kl, user_coverage_ratio
from repro.persistence import load_sweep_entry, save_sweep_entry

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "CellFailure",
    "SweepExecutionError",
    "SweepStats",
    "SweepRunner",
    "cells_from_values",
    "cell_cache_key",
    "dataset_fingerprint",
    "execute_cell",
    "register_cell_kind",
]

#: Code-relevant version tag baked into every cache key.  Bump whenever
#: a change alters what any cell computes (engine semantics, evaluation
#: maths, cell-kind payload meaning) so stale caches self-invalidate.
#: v2: attack target-step gradients moved to the stacked axis-norm
#: kernel (stacked_step_gradients), which differs from the old per-
#: target 1-D BLAS-dot norm in the last ulp when clipping fires.
#: v3: the kernel dispatch layer pinned sequential accumulation orders
#: for the Krum-family pairwise distances (was batched BLAS GEMM) and
#: the stacked/mining norms (was pairwise-blocked add.reduce), moving
#: defended and attacked cells by last-ulp amounts.
#: v4: ExperimentConfig grew a FaultConfig (hashed via asdict like the
#: rest of the config, so fault parameters enter every key); zero-fault
#: values are unchanged but the key layout is not.
#: v5: ExperimentConfig grew an AsyncConfig (``asynchrony``), so every
#: asynchrony parameter enters every key; synchronous values are
#: unchanged but the key layout is not.
CACHE_VERSION = "sweep-v5"


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell, declared as data.

    ``dataset_key`` names an entry of the dataset mapping passed to
    :meth:`SweepRunner.run` (the paper's tables share one dataset
    across a whole table).  ``ks`` lists the evaluation cutoffs; one
    result pair is produced per cutoff (``None`` means the config's
    ``train.top_k``).  ``kind`` selects the executor: ``"er_hr"`` runs
    the federated simulation and reports ER@K / HR@K percentages,
    ``"pkl_ucr"`` trains a clean FRS and reports the PKL / UCR
    closeness metrics of Table II for each popular-set size in
    ``payload``.
    """

    config: ExperimentConfig
    dataset_key: str = "default"
    ks: tuple[int, ...] | None = None
    kind: str = "er_hr"
    #: Kind-specific extra parameters (hashed into the cache key).
    payload: tuple = ()
    engine: str = "batch"


@dataclass(frozen=True)
class SweepStats:
    """Execution accounting of one (or several accumulated) sweep runs."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Cell executions resubmitted to a respawned pool after a worker
    #: crash, a broken pool, or a completion timeout.
    retries: int = 0
    #: Cells that still had no result when ``max_retries`` ran out
    #: (also enumerated on the raised :class:`SweepExecutionError`).
    failed: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of cells served from the cache (0.0 on empty runs)."""
        return self.cache_hits / self.total if self.total else 0.0

    def merged(self, other: "SweepStats") -> "SweepStats":
        return SweepStats(
            total=self.total + other.total,
            cache_hits=self.cache_hits + other.cache_hits,
            executed=self.executed + other.executed,
            retries=self.retries + other.retries,
            failed=self.failed + other.failed,
        )


@dataclass(frozen=True)
class CellFailure:
    """One cell the self-healing pool could not complete."""

    index: int  # position in the submitted cell list
    kind: str
    attempts: int
    error: str  # last failure observed for this cell


class SweepExecutionError(RuntimeError):
    """Raised when cells remain unfinished after every retry.

    Completed cells are already in the cache (entries are written the
    moment each cell finishes), so rerunning the same sweep resumes
    from them; ``failures`` lists exactly what is missing and why.
    """

    def __init__(self, failures: Sequence[CellFailure]):
        self.failures = tuple(failures)
        detail = "; ".join(
            f"cell {f.index} ({f.kind}) after {f.attempts} attempts: {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed permanently: {detail}"
        )


# ----------------------------------------------------------------------
# Cell executors (must stay top-level: workers import them by name)
# ----------------------------------------------------------------------

def _run_er_hr(spec: CellSpec, dataset: InteractionDataset) -> list[list[float]]:
    """Train one simulation, evaluate every requested cutoff.

    Returns ``[[er_percent, hr_percent], ...]`` — one pair per K, in
    ``spec.ks`` order — exactly the numbers :class:`Cell` formats.
    """
    cells = run_cells(
        spec.config, dataset=dataset, ks=spec.ks, engine=spec.engine
    )
    return [[cell.er, cell.hr] for cell in cells]


def _run_pkl_ucr(spec: CellSpec, dataset: InteractionDataset) -> dict[str, list[float]]:
    """Table II cell: train a clean FRS, measure PKL / UCR per N.

    ``spec.payload`` is the tuple of popular-set sizes N.  The covered
    user set is computed with the vectorised CSR membership test
    (:meth:`~repro.datasets.base.InteractionDataset.covered_users`)
    instead of a per-user Python loop.
    """
    sim = FederatedSimulation(spec.config, dataset=dataset, engine=spec.engine)
    sim.run()
    ranking = dataset.popularity_ranking()
    users = sim.user_embedding_matrix()
    pkl: list[float] = []
    ucr: list[float] = []
    for n in spec.payload:
        popular = ranking[: min(int(n), dataset.num_items)]
        covered = dataset.covered_users(popular)
        item_vecs = sim.model.item_embeddings[popular]
        user_vecs = users[covered] if len(covered) else users
        pkl.append(float(pairwise_kl(item_vecs, user_vecs)))
        ucr.append(float(user_coverage_ratio(dataset, popular)))
    return {"pkl": pkl, "ucr": ucr}


_CELL_KINDS = {
    "er_hr": _run_er_hr,
    "pkl_ucr": _run_pkl_ucr,
}


def register_cell_kind(
    kind: str, executor: Callable[[CellSpec, InteractionDataset], Any]
) -> None:
    """Register a custom cell executor under ``kind``.

    Pool workers see parent-registered kinds through the fork start
    method (the Linux default); on spawn-based platforms custom kinds
    must be registered at module import time so workers re-register
    them.  Values returned by the executor must be JSON-serialisable
    for the cache, like the built-in kinds.
    """
    _CELL_KINDS[kind] = executor


def execute_cell(spec: CellSpec, dataset: InteractionDataset) -> Any:
    """Run one cell spec against its dataset and return its raw values.

    Raw values are plain JSON-serialisable structures (lists / dicts of
    floats) so they round-trip bit-exactly through both pickling (the
    pool) and the JSON cache.
    """
    try:
        executor = _CELL_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {spec.kind!r}; expected one of "
            f"{sorted(_CELL_KINDS)}"
        ) from None
    return executor(spec, dataset)


def cells_from_values(values: Sequence[Sequence[float]]) -> tuple[Cell, ...]:
    """Reconstruct the formatted-cell tuple from an ``er_hr`` raw value."""
    return tuple(Cell(er=pair[0], hr=pair[1]) for pair in values)


# ----------------------------------------------------------------------
# Content-addressed cache keys
# ----------------------------------------------------------------------

def dataset_fingerprint(dataset: InteractionDataset) -> str:
    """Stable content hash of a dataset's interactions and split.

    Hashing the *content* (not the generating config) means any change
    to the dataset — different synthesis code, different raw files on
    disk, a different split — busts every cache key built on it.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{dataset.name}|{dataset.num_users}|{dataset.num_items}".encode()
    )
    # Deliberately reads train_pos directly rather than the memoised
    # train_csr() cache: a caller-materialised dataset mutated between
    # runs must change its fingerprint, and the CSR cache would pin the
    # pre-mutation interactions.
    lengths = np.fromiter(
        (len(items) for items in dataset.train_pos),
        dtype=np.int64,
        count=dataset.num_users,
    )
    digest.update(lengths.tobytes())
    if dataset.num_users and lengths.sum():
        indices = np.concatenate(dataset.train_pos)
        digest.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
    digest.update(
        np.ascontiguousarray(dataset.test_items, dtype=np.int64).tobytes()
    )
    return digest.hexdigest()


def cell_cache_key(spec: CellSpec, dataset_fp: str) -> str:
    """Content address of one cell result.

    The key covers everything the result depends on: the code-version
    tag, the cell kind and engine, the full experiment config, the
    evaluation cutoffs, the kind payload and the dataset fingerprint.
    Any difference in any of them yields a different key.

    ``train.kernels`` is deliberately *excluded*: the kernel backends
    are bit-identical by contract (enforced by the differential parity
    suite and the native tier-1 CI leg), so a cell's value cannot
    depend on which backend computed it — and a numpy-run cache must
    keep serving native-backend sweeps verbatim, and vice versa.
    """
    ks = spec.ks if spec.ks is not None else (spec.config.train.top_k,)
    config_record = asdict(spec.config)
    config_record["train"].pop("kernels", None)
    record = {
        "version": CACHE_VERSION,
        "kind": spec.kind,
        "engine": spec.engine,
        "ks": list(ks),
        "payload": list(spec.payload),
        "config": config_record,
        "dataset": dataset_fp,
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

#: Per-worker dataset table, installed once by the pool initializer.
_WORKER_DATASETS: dict[str, InteractionDataset] | None = None


def _pool_initializer(payload: bytes) -> None:
    """Unpickle the shared datasets once per worker process."""
    global _WORKER_DATASETS
    _WORKER_DATASETS = pickle.loads(payload)


def _pool_execute(index: int, spec: CellSpec) -> tuple[int, Any]:
    """Worker entry point: run one cell against the shipped dataset."""
    assert _WORKER_DATASETS is not None, "pool initializer did not run"
    return index, execute_cell(spec, _WORKER_DATASETS[spec.dataset_key])


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------

class SweepRunner:
    """Executes a list of cell specs, in parallel and/or from cache.

    ``workers <= 1`` runs every cell inline in the calling process (the
    sequential reference path, and the default for table generators so
    plain calls behave exactly as before).  ``workers >= 2`` runs
    pending cells on a process pool; shared datasets are pickled once
    and shipped through the pool initializer.

    With ``cache_dir`` set, each finished cell is written to a
    content-addressed JSON entry the moment it completes, so an
    interrupted sweep resumes from what it finished, and a repeated
    sweep is served from cache entirely.  ``last_stats`` /
    ``total_stats`` expose the hit/executed accounting.

    The pooled path is **self-healing**: a worker crash (a killed
    process breaks the whole ``ProcessPoolExecutor``) or a completion
    stall longer than ``cell_timeout`` no longer kills the sweep.  The
    incomplete cells are resubmitted on a freshly spawned pool, with
    exponential backoff (``retry_backoff * 2**attempt`` seconds), up
    to ``max_retries`` extra pool lifetimes; cells that still have no
    result then are reported in a structured
    :class:`SweepExecutionError`.  Determinism makes retrying free of
    semantics: a cell's value never depends on which pool (or which
    attempt) computed it.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        cache_dir: str | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        cell_timeout: float | None = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        self.workers = workers
        self.cache_dir = cache_dir
        #: Extra pool lifetimes granted to crashed/stalled cells.
        self.max_retries = max_retries
        #: Base of the exponential backoff between pool respawns.
        self.retry_backoff = retry_backoff
        #: Longest the pooled path waits for *any* cell completion
        #: before declaring the pool hung and respawning it; ``None``
        #: waits indefinitely.
        self.cell_timeout = cell_timeout
        self.last_stats = SweepStats()
        self.total_stats = SweepStats()
        # Datasets this runner generated (and their fingerprints),
        # memoised by their frozen DatasetConfig: a multi-table sweep
        # through one runner generates and fingerprints each shared
        # dataset once, not once per table.
        self._loaded: dict[DatasetConfig, InteractionDataset] = {}
        self._fingerprints: dict[DatasetConfig, str] = {}

    # -- cache helpers -------------------------------------------------

    def _entry_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _load_cached(self, key: str) -> Any | None:
        entry = load_sweep_entry(self._entry_path(key))
        if entry is None or entry.get("key") != key:
            return None
        return entry["values"]

    def _store(self, key: str | None, spec: CellSpec, values: Any) -> None:
        if key is None:
            return
        save_sweep_entry(
            self._entry_path(key), key=key, kind=spec.kind, values=values
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        cells: Sequence[CellSpec],
        datasets: Mapping[str, DatasetConfig | InteractionDataset],
    ) -> list[Any]:
        """Execute (or recall) every cell; results align with ``cells``.

        ``datasets`` maps each ``dataset_key`` to either a
        :class:`~repro.config.DatasetConfig` (generated exactly once,
        here) or an already-materialised
        :class:`~repro.datasets.base.InteractionDataset`.
        """
        cells = list(cells)
        loaded: dict[str, InteractionDataset] = {}
        for key, value in datasets.items():
            if isinstance(value, InteractionDataset):
                loaded[key] = value
            else:
                if value not in self._loaded:
                    self._loaded[value] = load_dataset(value)
                loaded[key] = self._loaded[value]
        for spec in cells:
            if spec.dataset_key not in loaded:
                raise KeyError(
                    f"cell references unknown dataset key {spec.dataset_key!r}"
                )

        fingerprints: dict[str, str] = {}
        if self.cache_dir is not None:
            for key, value in datasets.items():
                if isinstance(value, DatasetConfig):
                    if value not in self._fingerprints:
                        self._fingerprints[value] = dataset_fingerprint(
                            loaded[key]
                        )
                    fingerprints[key] = self._fingerprints[value]
                else:
                    # Caller-materialised datasets are hashed per run —
                    # the runner cannot know they were left unmutated.
                    fingerprints[key] = dataset_fingerprint(value)

        results: list[Any] = [None] * len(cells)
        pending: list[tuple[int, str | None]] = []
        hits = 0
        for index, spec in enumerate(cells):
            key = None
            if self.cache_dir is not None:
                key = cell_cache_key(spec, fingerprints[spec.dataset_key])
                cached = self._load_cached(key)
                if cached is not None:
                    results[index] = cached
                    hits += 1
                    continue
            pending.append((index, key))

        retries = 0
        if pending:
            if self.workers >= 2 and len(pending) >= 2:
                retries = self._run_pool(cells, loaded, pending, results, hits)
            else:
                for index, key in pending:
                    spec = cells[index]
                    results[index] = execute_cell(spec, loaded[spec.dataset_key])
                    self._store(key, spec, results[index])

        self.last_stats = SweepStats(
            total=len(cells),
            cache_hits=hits,
            executed=len(pending),
            retries=retries,
        )
        self.total_stats = self.total_stats.merged(self.last_stats)
        return results

    def _run_pool(
        self,
        cells: list[CellSpec],
        loaded: dict[str, InteractionDataset],
        pending: list[tuple[int, str | None]],
        results: list[Any],
        hits: int,
    ) -> int:
        """Run pending cells on a pool, respawning it on crashes.

        One pool lifetime per attempt: every cell still missing a
        result is (re)submitted, completions are cached the moment
        they land, and whatever crashed or stalled rolls over to the
        next attempt after an exponential backoff.  Returns the total
        number of resubmitted cell executions; raises
        :class:`SweepExecutionError` (with ``last_stats`` already
        recorded) once ``max_retries`` pool lifetimes have not been
        enough.
        """
        needed = {cells[index].dataset_key for index, _ in pending}
        payload = pickle.dumps(
            {key: loaded[key] for key in needed},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        remaining = list(pending)
        last_errors: dict[int, str] = {}
        retries = 0
        for attempt in range(self.max_retries + 1):
            if attempt:
                retries += len(remaining)
                delay = self.retry_backoff * (2 ** (attempt - 1))
                if delay:
                    time.sleep(delay)
            remaining = self._pool_attempt(
                cells, payload, remaining, results, last_errors
            )
            if not remaining:
                return retries
        failures = [
            CellFailure(
                index=index,
                kind=cells[index].kind,
                attempts=self.max_retries + 1,
                error=last_errors.get(index, "unknown failure"),
            )
            for index, _ in remaining
        ]
        self.last_stats = SweepStats(
            total=len(results),
            cache_hits=hits,
            executed=len(pending),
            retries=retries,
            failed=len(failures),
        )
        self.total_stats = self.total_stats.merged(self.last_stats)
        raise SweepExecutionError(failures)

    def _pool_attempt(
        self,
        cells: list[CellSpec],
        payload: bytes,
        remaining: list[tuple[int, str | None]],
        results: list[Any],
        last_errors: dict[int, str],
    ) -> list[tuple[int, str | None]]:
        """One pool lifetime; returns the cells that still need a run.

        A single dead worker breaks the whole ``ProcessPoolExecutor``
        (every outstanding future resolves to ``BrokenProcessPool``),
        so anything unfinished when that happens simply rolls over.  A
        stall — ``cell_timeout`` elapsing with *zero* completions — is
        treated the same way, with the hung workers terminated so the
        respawned pool does not compete with them for cores.
        """
        workers = min(self.workers, len(remaining))
        crashed: list[tuple[int, str | None]] = []
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_initializer,
            initargs=(payload,),
        )
        try:
            futures = {
                pool.submit(_pool_execute, index, cells[index]): (index, key)
                for index, key in remaining
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=self.cell_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # cell_timeout with no completion at all: the pool
                    # is hung.  Kill it and roll everything over.
                    for future in outstanding:
                        index, key = futures[future]
                        last_errors[index] = (
                            f"no completion within {self.cell_timeout}s; "
                            "pool presumed hung"
                        )
                        crashed.append((index, key))
                    self._terminate_workers(pool)
                    break
                for future in done:
                    index, key = futures[future]
                    try:
                        _, values = future.result()
                    except Exception as exc:  # noqa: BLE001 — any worker
                        # death surfaces here (BrokenProcessPool for
                        # crashes, the cell's own exception otherwise).
                        last_errors[index] = f"{type(exc).__name__}: {exc}"
                        crashed.append((index, key))
                    else:
                        results[index] = values
                        self._store(key, cells[index], values)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return crashed

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Force-kill a hung pool's worker processes.

        ``shutdown`` alone would leave hung workers running (it only
        refuses new work); terminating them is the only way a stalled
        attempt actually releases its cores.  ``_processes`` is
        CPython's internal table — guarded so a future rename degrades
        to a plain shutdown instead of an error.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers
                pass
