"""Tuned experiment presets for the reproduction harness.

Scale-downs and hyper-parameters were tuned once (see DESIGN.md) so the
*shape* of every table/figure reproduces on one machine in minutes:

* datasets keep the paper's user-item density (sparsity, Table VIII);
* MF-FRS trains with the paper's server rate eta = 1.0;
* DL-FRS uses a rate tuned for the scaled data (the paper's 0.005 is
  tied to its full-size batches);
* on DL-FRS the client-side defense additionally applies Re2 at the
  interaction-function level (see
  :meth:`repro.defenses.ClientRegularizer.param_grad_terms`).
"""

from __future__ import annotations

from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)

__all__ = [
    "EXPERIMENT_SCALES",
    "dataset_config",
    "model_config",
    "train_config",
    "attack_config",
    "defense_config",
    "experiment",
]

#: Default linear scale-down per dataset (users and items multiply by
#: this; interactions by its square to preserve density).
EXPERIMENT_SCALES: dict[str, float] = {
    "ml-100k": 0.2,
    "ml-1m": 0.06,
    "az": 0.06,
}

#: Communication rounds per base model at the preset scales.
_ROUNDS = {"mf": 120, "ncf": 200}
#: Users sampled per round, per dataset (AZ has ~5x the users).
_USERS_PER_ROUND = {"ml-100k": 64, "ml-1m": 96, "az": 160}
#: Server learning rate per base model.
_SERVER_LR = {"mf": 1.0, "ncf": 0.05}
#: Re2 trade-off gamma per base model for the regularization defense.
_DEFENSE_GAMMA = {"mf": 0.5, "ncf": 0.5}


def dataset_config(name: str, *, scale: float | None = None, seed: int = 0) -> DatasetConfig:
    """Dataset preset at its tuned experiment scale."""
    if scale is None:
        scale = EXPERIMENT_SCALES.get(name, 0.2)
    return DatasetConfig(name=name, scale=scale, seed=seed)


def model_config(kind: str, *, embedding_dim: int = 16, seed: int = 0) -> ModelConfig:
    """Base model preset (MF-FRS or DL-FRS)."""
    return ModelConfig(kind=kind, embedding_dim=embedding_dim, seed=seed)


def train_config(
    kind: str,
    *,
    rounds: int | None = None,
    users_per_round: int = 64,
    eval_every: int = 0,
    **overrides,
) -> TrainConfig:
    """Training preset tuned per base model."""
    if kind not in _ROUNDS:
        raise ValueError(f"unknown model kind {kind!r}")
    return TrainConfig(
        rounds=_ROUNDS[kind] if rounds is None else rounds,
        users_per_round=users_per_round,
        lr=_SERVER_LR[kind],
        eval_every=eval_every,
        **overrides,
    )


def attack_config(name: str, *, malicious_ratio: float = 0.05, **overrides) -> AttackConfig:
    """Attack preset: the paper's default 5% malicious users."""
    return AttackConfig(name=name, malicious_ratio=malicious_ratio, **overrides)


def defense_config(name: str, model_kind: str = "mf", **overrides) -> DefenseConfig:
    """Defense preset; gamma is tuned per base model (Section V-B)."""
    if name in ("regularization", "hybrid") and "gamma" not in overrides:
        overrides["gamma"] = _DEFENSE_GAMMA.get(model_kind, 0.5)
    return DefenseConfig(name=name, **overrides)


def experiment(
    dataset: str,
    model_kind: str,
    *,
    attack: str | AttackConfig | None = None,
    defense: str | DefenseConfig = "none",
    seed: int = 0,
    rounds: int | None = None,
    eval_every: int = 0,
    **train_overrides,
) -> ExperimentConfig:
    """Assemble a full experiment config from presets.

    ``attack`` / ``defense`` accept either a preset name or a fully
    custom config object.
    """
    if isinstance(attack, str):
        attack = None if attack == "none" else attack_config(attack)
    if isinstance(defense, str):
        defense = defense_config(defense, model_kind)
    train_overrides.setdefault(
        "users_per_round", _USERS_PER_ROUND.get(dataset, 64)
    )
    return ExperimentConfig(
        dataset=dataset_config(dataset, seed=seed),
        model=model_config(model_kind, seed=seed),
        train=train_config(
            model_kind, rounds=rounds, eval_every=eval_every, **train_overrides
        ),
        attack=attack,
        defense=defense,
        seed=seed,
    )
