"""Negative sampling and per-round local batch construction.

Each client's private training set ``D_i`` is its interacted items
``D_i+`` plus ``q`` times as many sampled uninteracted items ``D_i-``
(Section III-A; the paper uses ``q = 1`` by default and studies larger
``q`` in Section VI-G and supplementary B).

Two code paths produce *bit-identical* batches:

* :func:`sample_negatives` / :func:`sample_local_batch` — the scalar
  per-client reference used by the legacy loop engine;
* :func:`sample_negatives_batch` / :func:`sample_local_batches` — the
  vectorised path used by the batch-client engine.  Each client still
  owns its private RNG stream (so loop/batch trajectories match), but
  the rejection filtering is NumPy-vectorised and the result is packed
  straight into the ragged row-stacked tensors the batch engine trains
  on (client ``k`` owns the contiguous row segment delimited by
  ``lengths`` — a CSR-style layout that, unlike padding to the longest
  client, wastes nothing under long-tail activity).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_negatives",
    "sample_local_batch",
    "sample_negatives_batch",
    "sample_local_batches",
]


def sample_negatives(
    rng: np.random.Generator,
    positive_items: np.ndarray,
    num_items: int,
    count: int,
) -> np.ndarray:
    """Sample ``count`` item ids not present in ``positive_items``.

    Uses rejection sampling with a vectorised fast path, falling back
    to explicit complement enumeration when negatives are scarce
    (e.g. very active users in a small catalogue).
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    positives = set(positive_items.tolist())
    available = num_items - len(positives)
    if available <= 0:
        return np.empty(0, dtype=np.int64)
    if count >= available:
        pool = np.array(
            [j for j in range(num_items) if j not in positives], dtype=np.int64
        )
        return pool if count >= len(pool) else rng.choice(pool, size=count, replace=False)

    # Fast path: oversample, filter, top up if unlucky.
    out: list[int] = []
    seen: set[int] = set()
    need = count
    while need > 0:
        draw = rng.integers(0, num_items, size=max(2 * need, 8))
        for j in draw:
            j = int(j)
            if j in positives or j in seen:
                continue
            seen.add(j)
            out.append(j)
            need -= 1
            if need == 0:
                break
    return np.asarray(out, dtype=np.int64)


def sample_local_batch(
    rng: np.random.Generator,
    positive_items: np.ndarray,
    num_items: int,
    negative_ratio: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Build one round's local training batch for a client.

    Returns ``(items, labels)`` where labels are 1.0 for the client's
    interacted items and 0.0 for the ``negative_ratio * |D_i+|``
    freshly-sampled negatives.
    """
    negatives = sample_negatives(
        rng, positive_items, num_items, negative_ratio * len(positive_items)
    )
    items = np.concatenate([positive_items, negatives])
    labels = np.concatenate(
        [np.ones(len(positive_items)), np.zeros(len(negatives))]
    )
    return items, labels


def _accept_draw(draw: np.ndarray, excluded: np.ndarray) -> np.ndarray:
    """Vectorised acceptance filter for one rejection-sampling draw.

    ``excluded`` is a boolean flag per item id (positives + previously
    accepted negatives).  Keeps, in draw order, the first occurrence of
    every non-excluded value — exactly the scalar loop's
    ``j in positives or j in seen`` semantics.
    """
    order = draw.argsort(kind="stable")
    in_order = draw[order]
    first = np.empty(len(draw), dtype=bool)
    first[0] = True
    np.not_equal(in_order[1:], in_order[:-1], out=first[1:])
    keep = np.zeros(len(draw), dtype=bool)
    keep[order[first]] = True
    keep &= ~excluded[draw]
    return draw[keep]


def sample_negatives_batch(
    rngs: list[np.random.Generator],
    positives_list: list[np.ndarray],
    num_items: int,
    counts: np.ndarray,
) -> list[np.ndarray]:
    """Per-client negative sampling with a vectorised rejection filter.

    Client ``k`` draws from ``rngs[k]`` exactly as
    ``sample_negatives(rngs[k], positives_list[k], num_items, counts[k])``
    would — same generator calls, same accepted sequence — so the
    output is bit-identical to the scalar reference while avoiding its
    per-element Python loop.  Each ``positives_list`` entry must hold
    *distinct* item ids (true for every
    :class:`~repro.datasets.base.InteractionDataset`), which lets the
    availability check skip the scalar reference's set construction.
    """
    out: list[np.ndarray] = []
    excluded = np.zeros(num_items, dtype=bool)  # shared scratch buffer
    for rng, positives, count in zip(rngs, positives_list, counts):
        count = int(count)
        if count <= 0:
            out.append(np.empty(0, dtype=np.int64))
            continue
        excluded[positives] = True
        available = num_items - len(positives)
        if available <= 0 or count >= available:
            # Scarce-negative edge cases: defer to the scalar reference
            # (same rng object, so the stream stays aligned).
            excluded[positives] = False
            out.append(sample_negatives(rng, positives, num_items, count))
            continue
        chunks: list[np.ndarray] = []
        need = count
        while need > 0:
            draw = rng.integers(0, num_items, size=max(2 * need, 8))
            fresh = _accept_draw(draw, excluded)[:need]
            chunks.append(fresh)
            need -= len(fresh)
            if need > 0:
                excluded[fresh] = True
        negatives = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        excluded[positives] = False
        for chunk in chunks[:-1]:
            excluded[chunk] = False
        out.append(negatives)
    return out


def sample_local_batches(
    rngs: list[np.random.Generator],
    positives_list: list[np.ndarray],
    num_items: int,
    negative_ratio: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build every sampled client's local batch as ragged row stacks.

    Returns ``(item_ids, labels, lengths)`` where ``item_ids`` and
    ``labels`` are flat ``(total_rows,)`` arrays and client ``k`` owns
    the contiguous segment ``[sum(lengths[:k]) : sum(lengths[:k+1])]``
    — positives first (label 1.0), then its freshly sampled negatives
    (label 0.0), exactly the rows of :func:`sample_local_batch`.  The
    CSR-style layout wastes no memory on padding however ragged the
    per-client interaction counts are.
    """
    counts = np.array(
        [negative_ratio * len(p) for p in positives_list], dtype=np.int64
    )
    negatives = sample_negatives_batch(rngs, positives_list, num_items, counts)
    num_pos = np.array([len(p) for p in positives_list], dtype=np.int64)
    num_neg = np.array([len(n) for n in negatives], dtype=np.int64)
    lengths = num_pos + num_neg
    chunks: list[np.ndarray] = []
    for positives, negs in zip(positives_list, negatives):
        chunks.append(positives)
        chunks.append(negs)
    item_ids = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    # Label layout: within each client's segment the first num_pos rows
    # are its positives.
    total = int(lengths.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    row_in_segment = np.arange(total) - np.repeat(starts, lengths)
    labels = (row_in_segment < np.repeat(num_pos, lengths)).astype(np.float64)
    return item_ids, labels, lengths
