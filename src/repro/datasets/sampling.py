"""Negative sampling and per-round local batch construction.

Each client's private training set ``D_i`` is its interacted items
``D_i+`` plus ``q`` times as many sampled uninteracted items ``D_i-``
(Section III-A; the paper uses ``q = 1`` by default and studies larger
``q`` in Section VI-G and supplementary B).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_negatives", "sample_local_batch"]


def sample_negatives(
    rng: np.random.Generator,
    positive_items: np.ndarray,
    num_items: int,
    count: int,
) -> np.ndarray:
    """Sample ``count`` item ids not present in ``positive_items``.

    Uses rejection sampling with a vectorised fast path, falling back
    to explicit complement enumeration when negatives are scarce
    (e.g. very active users in a small catalogue).
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    positives = set(positive_items.tolist())
    available = num_items - len(positives)
    if available <= 0:
        return np.empty(0, dtype=np.int64)
    if count >= available:
        pool = np.array(
            [j for j in range(num_items) if j not in positives], dtype=np.int64
        )
        return pool if count >= len(pool) else rng.choice(pool, size=count, replace=False)

    # Fast path: oversample, filter, top up if unlucky.
    out: list[int] = []
    seen: set[int] = set()
    need = count
    while need > 0:
        draw = rng.integers(0, num_items, size=max(2 * need, 8))
        for j in draw:
            j = int(j)
            if j in positives or j in seen:
                continue
            seen.add(j)
            out.append(j)
            need -= 1
            if need == 0:
                break
    return np.asarray(out, dtype=np.int64)


def sample_local_batch(
    rng: np.random.Generator,
    positive_items: np.ndarray,
    num_items: int,
    negative_ratio: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Build one round's local training batch for a client.

    Returns ``(items, labels)`` where labels are 1.0 for the client's
    interacted items and 0.0 for the ``negative_ratio * |D_i+|``
    freshly-sampled negatives.
    """
    negatives = sample_negatives(
        rng, positive_items, num_items, negative_ratio * len(positive_items)
    )
    items = np.concatenate([positive_items, negatives])
    labels = np.concatenate(
        [np.ones(len(positive_items)), np.zeros(len(negatives))]
    )
    return items, labels
