"""Calibrated long-tail synthetic interaction generator.

The paper's phenomena rest on three distributional facts about its
datasets (Fig. 3, Table VIII):

1. item popularity follows a long-tail (Zipf-like) law — the top 15% of
   items collect over half of all interactions;
2. per-user activity is skewed (some users rate a lot, most a little);
3. interactions are *correlated*: users with similar latent tastes
   interact with overlapping item sets, which is what lets popular-item
   embeddings mirror the user-embedding distribution (Property 3).

The generator below reproduces all three: items get Zipf popularity
weights, users get log-normal activity levels, and both live in a small
latent preference space so that co-interaction structure is realistic
rather than independent random sampling.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import InteractionDataset
from repro.rng import spawn

__all__ = ["generate_longtail_dataset"]


def _zipf_weights(num_items: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like base popularity weights, shuffled over item ids.

    Shuffling decouples item *id* from item *rank* so that nothing in
    the library can accidentally exploit id ordering.
    """
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _latent_affinity(
    num_users: int,
    num_items: int,
    latent_dim: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Latent taste vectors for users and items on the unit sphere."""
    users = rng.normal(size=(num_users, latent_dim))
    items = rng.normal(size=(num_items, latent_dim))
    users /= np.linalg.norm(users, axis=1, keepdims=True)
    items /= np.linalg.norm(items, axis=1, keepdims=True)
    return users, items


def generate_longtail_dataset(
    num_users: int,
    num_items: int,
    num_interactions: int,
    *,
    popularity_exponent: float = 1.0,
    latent_dim: int = 4,
    affinity_strength: float = 2.0,
    min_interactions_per_user: int = 3,
    name: str = "synthetic",
    seed: int = 0,
) -> InteractionDataset:
    """Generate an implicit-feedback dataset with long-tail popularity.

    Parameters
    ----------
    num_users, num_items, num_interactions:
        Target sizes; actual interaction count may differ slightly
        because duplicates are removed and per-user minimums enforced.
    popularity_exponent:
        Zipf exponent of the item popularity law. 1.0 reproduces the
        ML-100K-like head/tail split of Fig. 3.
    latent_dim, affinity_strength:
        Size and sharpness of the latent taste space driving user-item
        co-interaction correlation.
    min_interactions_per_user:
        Every user receives at least this many interactions (one is
        held out for the leave-one-out test split).
    """
    if num_interactions < num_users * min_interactions_per_user:
        raise ValueError(
            "num_interactions too small to give every user "
            f"{min_interactions_per_user} interactions"
        )
    rng = spawn(seed, "synthetic", name)
    base_pop = _zipf_weights(num_items, popularity_exponent, rng)
    user_latent, item_latent = _latent_affinity(num_users, num_items, latent_dim, rng)

    # Per-user activity: log-normal, normalised to the interaction budget.
    activity = rng.lognormal(mean=0.0, sigma=0.8, size=num_users)
    activity = activity / activity.sum() * num_interactions
    counts = np.maximum(min_interactions_per_user, np.round(activity)).astype(np.int64)
    counts = np.minimum(counts, num_items - 1)

    per_user_items: list[np.ndarray] = []
    log_pop = np.log(base_pop)
    for user in range(num_users):
        # Mixture of global popularity and personal taste in log space.
        logits = log_pop + affinity_strength * (item_latent @ user_latent[user])
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        chosen = rng.choice(num_items, size=counts[user], replace=False, p=probs)
        per_user_items.append(np.sort(chosen))

    # Leave-one-out split: hold out one uniformly random interaction per
    # user as the test item (He et al. protocol used by the paper).
    train_pos: list[np.ndarray] = []
    test_items = np.full(num_users, -1, dtype=np.int64)
    for user, items in enumerate(per_user_items):
        if len(items) > min_interactions_per_user - 1:
            held = int(rng.integers(len(items)))
            test_items[user] = items[held]
            items = np.delete(items, held)
        train_pos.append(items)

    return InteractionDataset(
        name=name,
        num_users=num_users,
        num_items=num_items,
        train_pos=train_pos,
        test_items=test_items,
    )
