"""Datasets: interaction containers, splits, sampling and generators.

The paper evaluates on MovieLens-100K, MovieLens-1M and Amazon Digital
Music (Table VIII). Raw files are loaded when present on disk
(:mod:`repro.datasets.loaders`); otherwise a calibrated long-tail
synthetic generator (:mod:`repro.datasets.synthetic`) reproduces each
dataset's statistics, optionally scaled down.
"""

from repro.datasets.base import InteractionDataset
from repro.datasets.loaders import DATASET_STATS, DatasetStats, load_dataset
from repro.datasets.sampling import sample_local_batch, sample_negatives
from repro.datasets.synthetic import generate_longtail_dataset

__all__ = [
    "InteractionDataset",
    "DatasetStats",
    "DATASET_STATS",
    "load_dataset",
    "generate_longtail_dataset",
    "sample_negatives",
    "sample_local_batch",
]
