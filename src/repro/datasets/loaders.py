"""Dataset registry: real-file loaders with a synthetic fallback.

Table VIII of the paper gives the statistics of the three evaluation
datasets. When the raw files are available on disk (``u.data`` for
MovieLens-100K, ``ratings.dat`` for ML-1M, a ``.csv`` for Amazon
Digital Music) they are parsed directly; otherwise the calibrated
synthetic generator reproduces the same statistics, optionally scaled
down by a ``scale`` factor for fast experimentation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.config import DatasetConfig
from repro.datasets.base import InteractionDataset
from repro.datasets.synthetic import generate_longtail_dataset
from repro.rng import spawn

__all__ = ["DatasetStats", "DATASET_STATS", "load_dataset", "interactions_to_dataset"]


@dataclass(frozen=True)
class DatasetStats:
    """Size statistics of a supported dataset (paper Table VIII)."""

    num_users: int
    num_items: int
    num_interactions: int
    #: Zipf-like exponent calibrated to reproduce the dataset's
    #: head/tail interaction share (Fig. 3).
    popularity_exponent: float


#: Statistics from Table VIII of the paper.
DATASET_STATS: dict[str, DatasetStats] = {
    "ml-100k": DatasetStats(943, 1_682, 100_000, 1.0),
    "ml-1m": DatasetStats(6_040, 3_706, 1_000_209, 1.0),
    "az": DatasetStats(16_566, 11_797, 169_781, 0.9),
}

#: Candidate raw-file locations, relative to a data root.
_RAW_FILES = {
    "ml-100k": ("ml-100k/u.data", "u.data"),
    "ml-1m": ("ml-1m/ratings.dat", "ratings.dat"),
    "az": ("az/ratings.csv", "Digital_Music.csv", "ratings_Digital_Music.csv"),
}


def interactions_to_dataset(
    users: np.ndarray,
    items: np.ndarray,
    *,
    name: str,
    min_interactions_per_user: int = 3,
    seed: int = 0,
) -> InteractionDataset:
    """Build an :class:`InteractionDataset` from raw (user, item) pairs.

    Raw ids are remapped to dense ranges; users with fewer than
    ``min_interactions_per_user`` interactions are dropped (standard
    pre-processing for leave-one-out evaluation); one interaction per
    remaining user is held out as the test item.
    """
    if len(users) != len(items):
        raise ValueError("users and items must have equal length")
    rng = spawn(seed, "loo-split", name)

    # Dense remap.
    unique_users, user_idx = np.unique(users, return_inverse=True)
    unique_items, item_idx = np.unique(items, return_inverse=True)
    per_user: dict[int, set[int]] = {}
    for u, i in zip(user_idx, item_idx):
        per_user.setdefault(int(u), set()).add(int(i))

    kept = [u for u in range(len(unique_users)) if len(per_user[u]) >= min_interactions_per_user]
    train_pos: list[np.ndarray] = []
    test_items = np.full(len(kept), -1, dtype=np.int64)
    for new_u, old_u in enumerate(kept):
        its = np.array(sorted(per_user[old_u]), dtype=np.int64)
        held = int(rng.integers(len(its)))
        test_items[new_u] = its[held]
        train_pos.append(np.delete(its, held))

    return InteractionDataset(
        name=name,
        num_users=len(kept),
        num_items=len(unique_items),
        train_pos=train_pos,
        test_items=test_items,
    )


def _find_raw_file(name: str, data_root: str) -> str | None:
    for candidate in _RAW_FILES.get(name, ()):
        path = os.path.join(data_root, candidate)
        if os.path.exists(path):
            return path
    return None


def _parse_raw(name: str, path: str) -> tuple[np.ndarray, np.ndarray]:
    """Parse (user, item) pairs from a raw interaction file."""
    users: list[int] = []
    items: list[int] = []
    if name == "ml-100k":
        sep = "\t"
    elif name == "ml-1m":
        sep = "::"
    else:
        sep = ","
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            parts = line.split(sep)
            if len(parts) < 2:
                continue
            try:
                if name == "az":
                    # Amazon CSV: item,user,rating,timestamp or user,item,...
                    users.append(hash(parts[1]) & 0x7FFFFFFF)
                    items.append(hash(parts[0]) & 0x7FFFFFFF)
                else:
                    users.append(int(parts[0]))
                    items.append(int(parts[1]))
            except ValueError:
                continue  # header or malformed row
    return np.asarray(users), np.asarray(items)


def load_dataset(config: DatasetConfig, data_root: str = "data") -> InteractionDataset:
    """Load a dataset per config: real files when present, else synthetic.

    ``config.scale`` shrinks (or grows) the synthetic preset's user /
    item / interaction counts proportionally; real files ignore scale.
    """
    name = config.name
    if name not in DATASET_STATS and name != "custom":
        raise ValueError(
            f"unknown dataset {name!r}; expected one of "
            f"{sorted(DATASET_STATS)} or 'custom'"
        )

    if name in _RAW_FILES:
        path = _find_raw_file(name, data_root)
        if path is not None:
            users, items = _parse_raw(name, path)
            return interactions_to_dataset(
                users,
                items,
                name=name,
                min_interactions_per_user=config.min_interactions_per_user,
                seed=config.seed,
            )

    stats = DATASET_STATS.get(name, DATASET_STATS["ml-100k"])
    num_users = max(16, int(round(stats.num_users * config.scale)))
    num_items = max(32, int(round(stats.num_items * config.scale)))
    # Interactions scale with the *square* of the linear scale so that the
    # user-item matrix density (Table VIII sparsity) is preserved; keeping
    # density faithful keeps the per-round benign gradient pressure on cold
    # target items faithful, which Eq. 11 shows drives attack/defense
    # behaviour.
    floor = num_users * max(config.min_interactions_per_user, 3) * 2
    num_interactions = max(floor, int(round(stats.num_interactions * config.scale**2)))
    return generate_longtail_dataset(
        num_users,
        num_items,
        num_interactions,
        popularity_exponent=config.popularity_exponent
        if config.name == "custom"
        else stats.popularity_exponent,
        min_interactions_per_user=config.min_interactions_per_user,
        name=name,
        seed=config.seed,
    )
