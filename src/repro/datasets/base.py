"""Core interaction dataset container with a leave-one-out split.

Users and items are dense integer ids. Interactions are implicit
feedback (a user interacted with an item or not), matching the paper's
setting: the ground-truth score ``x_ij`` is 1 for interacted pairs and
0 otherwise (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["InteractionDataset"]


@dataclass
class InteractionDataset:
    """Implicit-feedback dataset split leave-one-out per user.

    Attributes
    ----------
    name:
        Human-readable dataset name.
    num_users, num_items:
        Sizes of the dense id spaces.
    train_pos:
        ``train_pos[i]`` is the array of item ids user ``i`` interacted
        with, excluding the held-out test item. Sorted ascending.
    test_items:
        ``test_items[i]`` is the held-out item for user ``i`` (the
        leave-one-out protocol of He et al., used for HR@K), or ``-1``
        when the user has too few interactions to hold one out.
    """

    name: str
    num_users: int
    num_items: int
    train_pos: list[np.ndarray]
    test_items: np.ndarray
    _train_sets: list[set[int]] | None = field(default=None, repr=False)
    _train_csr: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.train_pos) != self.num_users:
            raise ValueError(
                f"train_pos has {len(self.train_pos)} entries for "
                f"{self.num_users} users"
            )
        if len(self.test_items) != self.num_users:
            raise ValueError(
                f"test_items has {len(self.test_items)} entries for "
                f"{self.num_users} users"
            )
        for i, items in enumerate(self.train_pos):
            if len(items) and (items.min() < 0 or items.max() >= self.num_items):
                raise ValueError(f"user {i} has out-of-range item ids")
        tests = self.test_items
        valid = tests[tests >= 0]
        if len(valid) and valid.max() >= self.num_items:
            raise ValueError("test item id out of range")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_csr(
        cls,
        name: str,
        num_users: int,
        num_items: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        test_items: np.ndarray,
    ) -> "InteractionDataset":
        """Build zero-copy from CSR arrays (shared-memory attach path).

        ``train_pos`` becomes a :class:`~repro.federated.shards.CSRRaggedList`
        facade whose per-user entries are views into ``indices`` — no
        million-element Python list, no per-user copies.  The per-user
        validation loop of ``__post_init__`` is skipped: the arrays
        come from an already-validated dataset on the exporting side,
        and a single vectorised range check replaces the loop here.
        """
        from repro.federated.shards import CSRRaggedList

        if len(indptr) != num_users + 1:
            raise ValueError(
                f"indptr has {len(indptr)} entries for {num_users} users"
            )
        if len(test_items) != num_users:
            raise ValueError(
                f"test_items has {len(test_items)} entries for "
                f"{num_users} users"
            )
        if len(indices) and (indices.min() < 0 or indices.max() >= num_items):
            raise ValueError("train item id out of range")
        dataset = cls.__new__(cls)
        dataset.name = name
        dataset.num_users = num_users
        dataset.num_items = num_items
        dataset.train_pos = CSRRaggedList(indptr, indices)
        dataset.test_items = test_items
        dataset._train_sets = None
        dataset._train_csr = (indptr, indices)
        return dataset

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def num_train_interactions(self) -> int:
        """Total number of (user, item) training interactions."""
        return int(sum(len(p) for p in self.train_pos))

    def popularity(self, include_test: bool = False) -> np.ndarray:
        """Per-item interaction counts (the paper's item popularity).

        Popularity is defined as the number of user interactions an item
        receives (Section IV-B). By default only training interactions
        are counted, which is everything a deployed FRS would see.
        """
        if self._train_csr is not None:
            # CSR fast path (each user's items are distinct, so one
            # global bincount equals the per-user accumulation).
            counts = np.bincount(
                self._train_csr[1], minlength=self.num_items
            ).astype(np.int64)
        else:
            counts = np.zeros(self.num_items, dtype=np.int64)
            for items in self.train_pos:
                counts[items] += 1
        if include_test:
            valid = self.test_items[self.test_items >= 0]
            np.add.at(counts, valid, 1)
        return counts

    def popularity_ranking(self) -> np.ndarray:
        """Item ids sorted from most popular to least popular."""
        counts = self.popularity()
        # Stable mergesort keeps ties in item-id order for determinism.
        return np.argsort(-counts, kind="stable")

    def popularity_rank_of(self) -> np.ndarray:
        """``rank[j]`` = popularity rank of item ``j`` (0 = most popular)."""
        ranking = self.popularity_ranking()
        rank = np.empty(self.num_items, dtype=np.int64)
        rank[ranking] = np.arange(self.num_items)
        return rank

    # ------------------------------------------------------------------
    # Membership helpers
    # ------------------------------------------------------------------

    def train_set(self, user: int) -> set[int]:
        """Set view of a user's training items (cached)."""
        if self._train_sets is None:
            self._train_sets = [set(p.tolist()) for p in self.train_pos]
        return self._train_sets[user]

    def has_interacted(self, user: int, item: int) -> bool:
        """Whether ``item`` is in ``user``'s training interactions."""
        return item in self.train_set(user)

    def train_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` CSR view of ``train_pos`` (cached).

        ``indices[indptr[u]:indptr[u + 1]]`` equals ``train_pos[u]``.
        """
        if self._train_csr is None:
            lengths = np.fromiter(
                (len(items) for items in self.train_pos),
                dtype=np.int64,
                count=self.num_users,
            )
            indptr = np.zeros(self.num_users + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            if self.num_users and indptr[-1]:
                indices = np.ascontiguousarray(
                    np.concatenate(self.train_pos), dtype=np.int64
                )
            else:
                indices = np.zeros(0, dtype=np.int64)
            self._train_csr = (indptr, indices)
        return self._train_csr

    def covered_users(self, items: np.ndarray) -> np.ndarray:
        """Users with >= 1 training interaction in ``items`` (ascending).

        One vectorised membership test over the CSR interaction arrays
        followed by a per-user segment reduction — no per-user Python
        loop (the paper's UCR metric and Table II coverage sets).
        """
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if items.size == 0 or self.num_users == 0:
            return np.zeros(0, dtype=np.int64)
        indptr, indices = self.train_csr()
        member = np.isin(indices, items)
        cumulative = np.concatenate(([0], np.cumsum(member)))
        per_user = cumulative[indptr[1:]] - cumulative[indptr[:-1]]
        return np.flatnonzero(per_user > 0).astype(np.int64)

    def train_mask(self) -> np.ndarray:
        """Boolean (num_users, num_items) mask of training interactions."""
        mask = np.zeros((self.num_users, self.num_items), dtype=bool)
        for i, items in enumerate(self.train_pos):
            mask[i, items] = True
        return mask

    def uninteracted_items(self, user: int) -> np.ndarray:
        """Item ids the user has neither trained on nor held out."""
        banned = self.train_set(user) | {int(self.test_items[user])}
        return np.array(
            [j for j in range(self.num_items) if j not in banned], dtype=np.int64
        )

    def coldest_items(self, count: int) -> np.ndarray:
        """The ``count`` least-popular items (typical attack targets)."""
        return self.popularity_ranking()[::-1][:count].copy()
