"""Deterministic random-number utilities.

Every stochastic component in the library (dataset generation, user
sampling, negative sampling, attack initialisation) draws from a
``numpy.random.Generator`` seeded through this module, so that a whole
federated simulation is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed", "derive_seed_batch", "spawn_batch"]

#: Large prime used to mix stream labels into seeds.
_MIX = 0x9E3779B97F4A7C15


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from an integer seed.

    ``None`` produces a non-deterministic generator (fresh OS entropy);
    any integer produces a reproducible PCG64 stream.
    """
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: int | str) -> int:
    """Derive a child seed from a parent seed and a sequence of labels.

    Labels may be integers (e.g. a user id, a round number) or strings
    (e.g. ``"negatives"``). The derivation is a simple splitmix-style
    hash: stable across processes and Python versions, unlike ``hash()``.
    """
    acc = (seed * _MIX) & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        if isinstance(label, str):
            for ch in label.encode("utf-8"):
                acc = ((acc ^ ch) * _MIX) & 0xFFFFFFFFFFFFFFFF
        else:
            acc = ((acc ^ int(label)) * _MIX) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return acc & 0x7FFFFFFF


def spawn(seed: int, *labels: int | str) -> np.random.Generator:
    """Create an independent generator for a labelled sub-stream."""
    return make_rng(derive_seed(seed, *labels))


def derive_seed_batch(
    seed: int,
    prefix: tuple[int | str, ...],
    ids: np.ndarray,
    suffix: tuple[int | str, ...] = (),
) -> np.ndarray:
    """Vectorised :func:`derive_seed` over one integer label position.

    Returns ``derive_seed(seed, *prefix, id, *suffix)`` for every entry
    of ``ids`` as an int64 array, bit-identical to the scalar function.
    The batch engine uses this to derive all sampled clients' per-round
    seeds in one shot instead of hashing label tuples client by client.
    """
    mix = np.uint64(_MIX)
    shift = np.uint64(31)

    def _mix_label(acc: np.ndarray, label: int | str) -> np.ndarray:
        if isinstance(label, str):
            for ch in label.encode("utf-8"):
                acc = (acc ^ np.uint64(ch)) * mix
        else:
            acc = (acc ^ np.uint64(int(label))) * mix
        return acc ^ (acc >> shift)

    with np.errstate(over="ignore"):
        acc = np.full(len(ids), (seed * _MIX) & 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        for label in prefix:
            acc = _mix_label(acc, label)
        acc = (acc ^ np.asarray(ids, dtype=np.uint64)) * mix
        acc = acc ^ (acc >> shift)
        for label in suffix:
            acc = _mix_label(acc, label)
    return (acc & np.uint64(0x7FFFFFFF)).astype(np.int64)


#: Constants of NumPy's ``SeedSequence`` entropy-mixing hash
#: (O'Neill's seed_seq algorithm); used to vectorise seeding below.
_SS_XSHIFT = np.uint32(16)
_SS_INIT_A = np.uint32(0x43B0D7E5)
_SS_MULT_A = np.uint32(0x931E8875)
_SS_INIT_B = np.uint32(0x8B51F9DD)
_SS_MULT_B = np.uint32(0x58F38DED)
_SS_MIX_L = np.uint32(0xCA01F9DD)
_SS_MIX_R = np.uint32(0x4973F715)
_SS_POOL_SIZE = 4


def _seed_sequence_states(seeds: np.ndarray, n_words64: int = 4) -> np.ndarray:
    """Vectorised ``SeedSequence(seed).generate_state(n_words64, uint64)``.

    Replicates NumPy's entropy-pool hash bit for bit for scalar 32-bit
    entropy (which :func:`derive_seed` always produces), for *all*
    seeds at once — the per-seed Python cost of constructing thousands
    of ``SeedSequence`` objects is what this avoids.  Exactness is
    asserted against ``np.random.SeedSequence`` in the test suite.
    """
    seeds = np.asarray(seeds, dtype=np.uint32)
    count = len(seeds)
    with np.errstate(over="ignore"):
        hash_const = np.full(count, _SS_INIT_A, dtype=np.uint32)

        def hashmix(value: np.ndarray) -> np.ndarray:
            nonlocal hash_const
            value = value ^ hash_const
            hash_const = hash_const * _SS_MULT_A
            value = value * hash_const
            return value ^ (value >> _SS_XSHIFT)

        def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            result = x * _SS_MIX_L - y * _SS_MIX_R
            return result ^ (result >> _SS_XSHIFT)

        pool = np.empty((count, _SS_POOL_SIZE), dtype=np.uint32)
        pool[:, 0] = hashmix(seeds)
        for index in range(1, _SS_POOL_SIZE):
            pool[:, index] = hashmix(np.zeros(count, dtype=np.uint32))
        for src in range(_SS_POOL_SIZE):
            for dst in range(_SS_POOL_SIZE):
                if src != dst:
                    pool[:, dst] = mix(pool[:, dst], hashmix(pool[:, src]))

        n32 = 2 * n_words64
        out = np.empty((count, n32), dtype=np.uint32)
        hash_const = np.full(count, _SS_INIT_B, dtype=np.uint32)
        for dst in range(n32):
            value = pool[:, dst % _SS_POOL_SIZE] ^ hash_const
            hash_const = hash_const * _SS_MULT_B
            value = value * hash_const
            out[:, dst] = value ^ (value >> _SS_XSHIFT)
    out64 = out.astype(np.uint64)
    return out64[:, 0::2] | (out64[:, 1::2] << np.uint64(32))


class _PrecomputedSeedSequence(np.random.bit_generator.ISeedSequence):
    """Hands a bit generator pre-hashed ``SeedSequence`` state words.

    Constructing ``PCG64(seed)`` spends ~10us hashing the seed through
    a Python ``SeedSequence``; with the hash vectorised over a whole
    round's clients (:func:`_seed_sequence_states`) this shim feeds
    each ``PCG64`` its precomputed words in ~1us instead.
    """

    __slots__ = ("_state",)

    def __init__(self, state: np.ndarray):
        self._state = state

    def generate_state(self, n_words, dtype=np.uint32):
        return self._state


def spawn_batch(
    seed: int,
    prefix: tuple[int | str, ...],
    ids: np.ndarray,
    suffix: tuple[int | str, ...] = (),
) -> list[np.random.Generator]:
    """One independent generator per id, matching per-id :func:`spawn`.

    ``spawn_batch(s, ("client-round",), ids, (r,))[k]`` produces the
    exact stream of ``spawn(s, "client-round", ids[k], r)``.
    """
    seeds = derive_seed_batch(seed, prefix, ids, suffix)
    states = _seed_sequence_states(seeds)
    pcg = np.random.PCG64
    gen = np.random.Generator
    wrap = _PrecomputedSeedSequence
    return [gen(pcg(wrap(state))) for state in states]
