"""Deterministic random-number utilities.

Every stochastic component in the library (dataset generation, user
sampling, negative sampling, attack initialisation) draws from a
``numpy.random.Generator`` seeded through this module, so that a whole
federated simulation is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_rng",
    "spawn",
    "derive_seed",
    "derive_seed_batch",
    "spawn_batch",
    "spawn_first_uniform",
    "spawn_normal_rows",
]

#: Large prime used to mix stream labels into seeds.
_MIX = 0x9E3779B97F4A7C15


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from an integer seed.

    ``None`` produces a non-deterministic generator (fresh OS entropy);
    any integer produces a reproducible PCG64 stream.
    """
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: int | str) -> int:
    """Derive a child seed from a parent seed and a sequence of labels.

    Labels may be integers (e.g. a user id, a round number) or strings
    (e.g. ``"negatives"``). The derivation is a simple splitmix-style
    hash: stable across processes and Python versions, unlike ``hash()``.
    """
    acc = (seed * _MIX) & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        if isinstance(label, str):
            for ch in label.encode("utf-8"):
                acc = ((acc ^ ch) * _MIX) & 0xFFFFFFFFFFFFFFFF
        else:
            acc = ((acc ^ int(label)) * _MIX) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return acc & 0x7FFFFFFF


def spawn(seed: int, *labels: int | str) -> np.random.Generator:
    """Create an independent generator for a labelled sub-stream."""
    return make_rng(derive_seed(seed, *labels))


def derive_seed_batch(
    seed: int,
    prefix: tuple[int | str, ...],
    ids: np.ndarray,
    suffix: tuple[int | str, ...] = (),
) -> np.ndarray:
    """Vectorised :func:`derive_seed` over one integer label position.

    Returns ``derive_seed(seed, *prefix, id, *suffix)`` for every entry
    of ``ids`` as an int64 array, bit-identical to the scalar function.
    The batch engine uses this to derive all sampled clients' per-round
    seeds in one shot instead of hashing label tuples client by client.
    """
    mix = np.uint64(_MIX)
    shift = np.uint64(31)

    def _mix_label(acc: np.ndarray, label: int | str) -> np.ndarray:
        if isinstance(label, str):
            for ch in label.encode("utf-8"):
                acc = (acc ^ np.uint64(ch)) * mix
        else:
            acc = (acc ^ np.uint64(int(label))) * mix
        return acc ^ (acc >> shift)

    with np.errstate(over="ignore"):
        acc = np.full(len(ids), (seed * _MIX) & 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        for label in prefix:
            acc = _mix_label(acc, label)
        acc = (acc ^ np.asarray(ids, dtype=np.uint64)) * mix
        acc = acc ^ (acc >> shift)
        for label in suffix:
            acc = _mix_label(acc, label)
    return (acc & np.uint64(0x7FFFFFFF)).astype(np.int64)


#: Constants of NumPy's ``SeedSequence`` entropy-mixing hash
#: (O'Neill's seed_seq algorithm); used to vectorise seeding below.
_SS_XSHIFT = np.uint32(16)
_SS_INIT_A = np.uint32(0x43B0D7E5)
_SS_MULT_A = np.uint32(0x931E8875)
_SS_INIT_B = np.uint32(0x8B51F9DD)
_SS_MULT_B = np.uint32(0x58F38DED)
_SS_MIX_L = np.uint32(0xCA01F9DD)
_SS_MIX_R = np.uint32(0x4973F715)
_SS_POOL_SIZE = 4


def _seed_sequence_states(seeds: np.ndarray, n_words64: int = 4) -> np.ndarray:
    """Vectorised ``SeedSequence(seed).generate_state(n_words64, uint64)``.

    Replicates NumPy's entropy-pool hash bit for bit for scalar 32-bit
    entropy (which :func:`derive_seed` always produces), for *all*
    seeds at once — the per-seed Python cost of constructing thousands
    of ``SeedSequence`` objects is what this avoids.  Exactness is
    asserted against ``np.random.SeedSequence`` in the test suite.
    """
    seeds = np.asarray(seeds, dtype=np.uint32)
    count = len(seeds)
    with np.errstate(over="ignore"):
        hash_const = np.full(count, _SS_INIT_A, dtype=np.uint32)

        def hashmix(value: np.ndarray) -> np.ndarray:
            nonlocal hash_const
            value = value ^ hash_const
            hash_const = hash_const * _SS_MULT_A
            value = value * hash_const
            return value ^ (value >> _SS_XSHIFT)

        def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            result = x * _SS_MIX_L - y * _SS_MIX_R
            return result ^ (result >> _SS_XSHIFT)

        pool = np.empty((count, _SS_POOL_SIZE), dtype=np.uint32)
        pool[:, 0] = hashmix(seeds)
        for index in range(1, _SS_POOL_SIZE):
            pool[:, index] = hashmix(np.zeros(count, dtype=np.uint32))
        for src in range(_SS_POOL_SIZE):
            for dst in range(_SS_POOL_SIZE):
                if src != dst:
                    pool[:, dst] = mix(pool[:, dst], hashmix(pool[:, src]))

        n32 = 2 * n_words64
        out = np.empty((count, n32), dtype=np.uint32)
        hash_const = np.full(count, _SS_INIT_B, dtype=np.uint32)
        for dst in range(n32):
            value = pool[:, dst % _SS_POOL_SIZE] ^ hash_const
            hash_const = hash_const * _SS_MULT_B
            value = value * hash_const
            out[:, dst] = value ^ (value >> _SS_XSHIFT)
    out64 = out.astype(np.uint64)
    return out64[:, 0::2] | (out64[:, 1::2] << np.uint64(32))


class _PrecomputedSeedSequence(np.random.bit_generator.ISeedSequence):
    """Hands a bit generator pre-hashed ``SeedSequence`` state words.

    Constructing ``PCG64(seed)`` spends ~10us hashing the seed through
    a Python ``SeedSequence``; with the hash vectorised over a whole
    round's clients (:func:`_seed_sequence_states`) this shim feeds
    each ``PCG64`` its precomputed words in ~1us instead.
    """

    __slots__ = ("_state",)

    def __init__(self, state: np.ndarray):
        self._state = state

    def generate_state(self, n_words, dtype=np.uint32):
        return self._state


def spawn_batch(
    seed: int,
    prefix: tuple[int | str, ...],
    ids: np.ndarray,
    suffix: tuple[int | str, ...] = (),
) -> list[np.random.Generator]:
    """One independent generator per id, matching per-id :func:`spawn`.

    ``spawn_batch(s, ("client-round",), ids, (r,))[k]`` produces the
    exact stream of ``spawn(s, "client-round", ids[k], r)``.
    """
    seeds = derive_seed_batch(seed, prefix, ids, suffix)
    states = _seed_sequence_states(seeds)
    pcg = np.random.PCG64
    gen = np.random.Generator
    wrap = _PrecomputedSeedSequence
    return [gen(pcg(wrap(state))) for state in states]


def spawn_normal_rows(
    seed: int,
    prefix: tuple[int | str, ...],
    ids: np.ndarray,
    columns: int,
    scale: float = 1.0,
    suffix: tuple[int | str, ...] = (),
) -> np.ndarray:
    """Stack of per-stream normal draws: one ``(columns,)`` row per id.

    Row ``k`` equals ``spawn(seed, *prefix, ids[k], *suffix).normal(
    scale=scale, size=columns)`` bit for bit: the seed hashing and
    ``SeedSequence`` entropy pools are fully vectorised, each stream's
    ziggurat draws fill its preallocated row directly, and the scale is
    applied as one whole-matrix multiply (``scale * z`` is the exact
    per-element arithmetic of ``Generator.normal`` with ``loc=0``).
    The per-user cost is one ``PCG64`` construction plus one
    ``standard_normal`` fill — several times cheaper than the
    ``spawn`` + ``normal`` pair, which is what makes struct-of-arrays
    client-state construction fast at production user counts.
    """
    states = _seed_sequence_states(derive_seed_batch(seed, prefix, ids, suffix))
    out = np.empty((len(ids), columns))
    pcg = np.random.PCG64
    gen = np.random.Generator
    shim = _PrecomputedSeedSequence(None)
    f64 = np.float64
    for row, state in zip(out, states):
        shim._state = state
        gen(pcg(shim)).standard_normal(None, f64, row)
    if scale != 1.0:
        out *= scale
    return out


# ----------------------------------------------------------------------
# Vectorised PCG64 (XSL-RR 128/64) for single-draw streams
# ----------------------------------------------------------------------

#: The 128-bit LCG multiplier of PCG64, split into 64-bit halves.
_PCG_MULT_HI = np.uint64(2549297995355413924)
_PCG_MULT_LO = np.uint64(4865540595714422341)
_U64_LOW32 = np.uint64(0xFFFFFFFF)
_U64_32 = np.uint64(32)


def _mul64(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Full 64x64 -> 128-bit product as ``(high, low)`` uint64 arrays."""
    a_lo = a & _U64_LOW32
    a_hi = a >> _U64_32
    b_lo = b & _U64_LOW32
    b_hi = b >> _U64_32
    with np.errstate(over="ignore"):
        ll = a_lo * b_lo
        lh = a_lo * b_hi
        hl = a_hi * b_lo
        hh = a_hi * b_hi
        mid = (ll >> _U64_32) + (lh & _U64_LOW32) + (hl & _U64_LOW32)
        low = (mid << _U64_32) | (ll & _U64_LOW32)
        high = hh + (lh >> _U64_32) + (hl >> _U64_32) + (mid >> _U64_32)
    return high, low


def _pcg64_step(
    hi: np.ndarray, lo: np.ndarray, inc_hi: np.ndarray, inc_lo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One 128-bit LCG step: ``state = state * MULT + inc (mod 2**128)``."""
    with np.errstate(over="ignore"):
        prod_hi, prod_lo = _mul64(lo, _PCG_MULT_LO)
        prod_hi = prod_hi + lo * _PCG_MULT_HI + hi * _PCG_MULT_LO
        new_lo = prod_lo + inc_lo
        carry = (new_lo < prod_lo).astype(np.uint64)
        new_hi = prod_hi + inc_hi + carry
    return new_hi, new_lo


def _pcg64_first_raw(words: np.ndarray) -> np.ndarray:
    """First ``next_uint64`` output of ``PCG64`` seeded from state words.

    ``words`` is the ``(count, 4)`` array of ``SeedSequence`` words that
    :func:`_seed_sequence_states` produces (the exact input NumPy's
    ``PCG64(seed)`` consumes: seed high/low then increment high/low).
    Replicates ``pcg64_srandom`` plus one generate step of the XSL-RR
    output function, vectorised over all streams; exactness against
    ``PCG64.random_raw`` is asserted in the test suite.
    """
    s_hi, s_lo = words[:, 0].copy(), words[:, 1].copy()
    i_hi, i_lo = words[:, 2], words[:, 3]
    one = np.uint64(1)
    with np.errstate(over="ignore"):
        inc_hi = (i_hi << one) | (i_lo >> np.uint64(63))
        inc_lo = (i_lo << one) | one
        # srandom: state = 0; step (-> inc); state += seed; step.
        acc_lo = inc_lo + s_lo
        carry = (acc_lo < inc_lo).astype(np.uint64)
        acc_hi = inc_hi + s_hi + carry
        hi, lo = _pcg64_step(acc_hi, acc_lo, inc_hi, inc_lo)
        # next64: step again, then output XSL-RR: rotr64(hi ^ lo, hi >> 58).
        hi, lo = _pcg64_step(hi, lo, inc_hi, inc_lo)
        value = hi ^ lo
        rot = hi >> np.uint64(58)
        out = (value >> rot) | (value << ((np.uint64(64) - rot) & np.uint64(63)))
    return out


def spawn_first_uniform(
    seed: int,
    prefix: tuple[int | str, ...],
    ids: np.ndarray,
    low: float = 0.0,
    high: float = 1.0,
    suffix: tuple[int | str, ...] = (),
) -> np.ndarray:
    """Vectorised first ``uniform(low, high)`` draw of every stream.

    Entry ``k`` equals ``spawn(seed, *prefix, ids[k], *suffix).uniform(
    low, high)`` bit for bit: ``Generator.uniform`` maps one raw PCG64
    word to ``low + (high - low) * ((raw >> 11) * 2**-53)``, and the raw
    word itself comes from the vectorised PCG64 above — no per-stream
    ``Generator`` objects at all, which is what makes per-client scalar
    draws (e.g. the inconsistent-learning-rate scenario) O(vector ops)
    instead of O(users) Python calls.
    """
    words = _seed_sequence_states(derive_seed_batch(seed, prefix, ids, suffix))
    raw = _pcg64_first_raw(words)
    doubles = (raw >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)
    return low + (high - low) * doubles
