"""Deterministic random-number utilities.

Every stochastic component in the library (dataset generation, user
sampling, negative sampling, attack initialisation) draws from a
``numpy.random.Generator`` seeded through this module, so that a whole
federated simulation is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed"]

#: Large prime used to mix stream labels into seeds.
_MIX = 0x9E3779B97F4A7C15


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from an integer seed.

    ``None`` produces a non-deterministic generator (fresh OS entropy);
    any integer produces a reproducible PCG64 stream.
    """
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: int | str) -> int:
    """Derive a child seed from a parent seed and a sequence of labels.

    Labels may be integers (e.g. a user id, a round number) or strings
    (e.g. ``"negatives"``). The derivation is a simple splitmix-style
    hash: stable across processes and Python versions, unlike ``hash()``.
    """
    acc = (seed * _MIX) & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        if isinstance(label, str):
            for ch in label.encode("utf-8"):
                acc = ((acc ^ ch) * _MIX) & 0xFFFFFFFFFFFFFFFF
        else:
            acc = ((acc ^ int(label)) * _MIX) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return acc & 0x7FFFFFFF


def spawn(seed: int, *labels: int | str) -> np.random.Generator:
    """Create an independent generator for a labelled sub-stream."""
    return make_rng(derive_seed(seed, *labels))
