"""Team-level struct-of-arrays execution of the malicious population.

The reference adversary is one Python object per malicious client:
``participate`` is called in a loop, each PIECK client owns a private
Δ-Norm tracker holding its own copy of the ``(num_items, dim)`` item
matrix, and each upload materialises a
:class:`~repro.federated.payload.ClientUpdate`.  At the ROADMAP's
production scale (~10k malicious clients at 1% of a million users)
those per-object costs — not the attack math — dominate the round.

:class:`MaliciousCohort` mirrors the benign
:class:`~repro.federated.state.ClientStateStore`: it *adopts* the
registry-built client objects (so construction-time RNG draws and any
genuinely per-client warm state are untouched) and owns the team-level
state as flat arrays:

* ``times_sampled`` — the per-client participation counters behind
  ``_participation_scale``, bumped and converted to upload scales in
  one vectorised pass per round;
* a :class:`~repro.attacks.mining.CohortMiner` (PIECK only) — stacked
  Δ-Norm accumulators plus the shared per-round observation ledger:
  ``||v_j^r − v_j^{r'}||`` is computed once per distinct previous
  round and fancy-indexed into each sampled client's row, with O(1)
  item-matrix copies per round instead of O(num_malicious);
* per-round stacked target gradients — each payload's target rows run
  through the row-wise
  :func:`~repro.attacks.base.stacked_step_gradients` kernel, and the
  per-client gradient blocks are stacked into one
  ``(clients, targets, dim)`` tensor and scaled by the client scales
  in one broadcast multiply (clipping included).

Attack math still runs through the same
:meth:`~repro.attacks.base.MaliciousClient._round_payload` hooks the
object path uses, which is what makes the two paths bit-identical by
construction (asserted end-to-end by ``tests/test_attack_cohort.py``):

* ``fedattack`` is fully batched — team-wide ``spawn_batch`` RNG
  streams, one ``sample_local_batches`` stack and one
  ``batch_local_step`` over all sampled clients;
* ``pieck_ipe`` rounds are deterministic in the mined set, so the
  payload is computed once per *distinct* mined P and fanned out;
* ``pieck_uea``, ``fedrecattack``, ``pipattack``, ``a_ra`` and
  ``a_hum`` keep genuinely per-client inner loops (private RNG
  streams, warm-started surrogates/classifiers/refiners) and batch
  the surrounding stages.

The resulting uploads are :class:`CohortUpload` rows — zero-copy views
into the round's stacked arrays that the batch engine splices directly
into its :class:`~repro.federated.update_batch.UpdateBatch`; no
``ClientUpdate`` is materialised anywhere on this path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.base import AttackPayload, MaliciousClient
from repro.attacks.baselines.fedattack import FedAttack
from repro.attacks.mining import CohortMiner
from repro.attacks.pieck_ipe import PieckIPE
from repro.attacks.pieck_uea import PieckUEA
from repro.config import TrainConfig
from repro.datasets.sampling import sample_local_batches
from repro.federated.payload import clip_scale
from repro.models.base import RecommenderModel, segment_starts
from repro.rng import spawn_batch

__all__ = ["CohortUpload", "MaliciousCohort"]


@dataclass
class CohortUpload:
    """One malicious client's upload as views into the round's stacks.

    Duck-type-compatible with the attributes the batch engine's splice
    reads from a :class:`~repro.federated.payload.ClientUpdate`
    (``user_id`` / ``item_ids`` / ``item_grads`` / ``param_grads`` /
    ``malicious``), but without the per-object validation, copies or
    dataclass machinery — ``item_ids`` and ``item_grads`` are slices
    of the cohort's stacked round arrays.
    """

    user_id: int
    item_ids: np.ndarray
    item_grads: np.ndarray
    param_grads: list[np.ndarray] = field(default_factory=list)
    malicious: bool = True


class MaliciousCohort:
    """Struct-of-arrays state and batched rounds for one attacker team.

    Built over the homogeneous client list produced by
    :func:`~repro.attacks.registry.build_malicious_clients`.  The
    cohort owns the participation counters and (for PIECK) all mining
    state; the adopted objects' own ``_times_sampled`` counters and
    miners are never advanced, so a team must be driven *either*
    through the cohort *or* through per-object ``participate`` calls —
    never both (the simulation builds one cohort per batch-engine run
    and the loop engine none).
    """

    def __init__(self, clients: list[MaliciousClient]):
        if not clients:
            raise ValueError("a cohort needs at least one malicious client")
        kinds = {type(client) for client in clients}
        if len(kinds) != 1:
            raise ValueError(
                f"cohort clients must share one attack class, got {kinds}"
            )
        self.clients = list(clients)
        first = clients[0]
        # The batched passes assume one attacker team: shared config,
        # targets, seed and (for IPE's payload dedup) ablation toggles.
        # The registry guarantees this; a hand-built heterogeneous list
        # would get silently wrong uploads, so verify it up front.
        for client in clients[1:]:
            if (
                (client.config is not first.config and client.config != first.config)
                or not np.array_equal(client.targets, first.targets)
                or client.team_size != first.team_size
                or getattr(client, "_seed", None) != getattr(first, "_seed", None)
                or getattr(client, "num_items", None)
                != getattr(first, "num_items", None)
                or getattr(client, "metric", None) != getattr(first, "metric", None)
                or getattr(client, "use_weights", None)
                != getattr(first, "use_weights", None)
                or getattr(client, "use_partition", None)
                != getattr(first, "use_partition", None)
            ):
                raise ValueError(
                    "cohort clients must form one homogeneous attacker team "
                    "(same config, targets, seed and attack toggles)"
                )
        self.config = first.config
        self.targets = first.targets
        self.team_size = first.team_size
        #: Per-client participation counters (struct-of-arrays mirror
        #: of ``MaliciousClient._times_sampled``).
        self.times_sampled = np.zeros(len(clients), dtype=np.int64)
        #: Stacked Algorithm 1 state + shared observation ledger for
        #: PIECK teams; ``None`` for attacks that do not mine.
        self.miner: CohortMiner | None = None
        if isinstance(first, (PieckIPE, PieckUEA)):
            self.miner = CohortMiner(
                first.miner.num_items,
                self.config.mining_rounds,
                self.config.num_popular,
                len(clients),
            )
        #: Distinct-payload evaluations in the last round (telemetry:
        #: for PIECK-IPE this is the number of distinct mined sets the
        #: round actually optimised, not the number of clients).
        self.last_round_payloads = 0

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def compute_uploads(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        rows: np.ndarray,
    ) -> list[CohortUpload | None]:
        """All sampled malicious clients' uploads for one round.

        ``rows`` are cohort-local client indices in sampled-position
        order (each at most once per round — the server samples
        without replacement).  Returns one entry per input row;
        ``None`` marks a client that uploads nothing this round (a
        PIECK miner still accumulating observations).
        """
        rows = np.asarray(rows, dtype=np.int64)
        uploads: list[CohortUpload | None] = [None] * len(rows)
        self.last_round_payloads = 0
        if not len(rows):
            return uploads

        # Participation accounting, vectorised: same arithmetic as
        # ``_participation_scale`` for every sampled client at once.
        self.times_sampled[rows] += 1
        rates = self.times_sampled[rows] / max(round_idx + 1, 1)
        scales = 1.0 / np.maximum(rates * self.team_size, 1.0)

        if self.miner is not None:
            self.miner.observe(rows, model.item_embeddings, round_idx)
            active = np.flatnonzero(self.miner.ready[rows])
        else:
            active = np.arange(len(rows))
        if not len(active):
            return uploads

        if isinstance(self.clients[0], FedAttack):
            self._fedattack_uploads(
                model, train_cfg, round_idx, rows, active, scales, uploads
            )
        else:
            self._delta_uploads(
                model, train_cfg, round_idx, rows, active, scales, uploads
            )
        return uploads

    # ------------------------------------------------------------------
    # Delta-based attacks (everything except FedAttack)
    # ------------------------------------------------------------------

    def _delta_uploads(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        rows: np.ndarray,
        active: np.ndarray,
        scales: np.ndarray,
        uploads: list[CohortUpload | None],
    ) -> None:
        """Per-client payloads, then one stacked scale/clip pass.

        PIECK clients receive their mined set from the cohort miner;
        IPE payloads — deterministic in that set — are computed once
        per distinct mined P and shared across the group.
        """
        dedup = isinstance(self.clients[0], PieckIPE)
        cache: dict[bytes, AttackPayload | None] = {}
        payloads: list[AttackPayload] = []
        payload_rows: list[int] = []
        for j in active.tolist():
            client = self.clients[rows[j]]
            popular = self.miner.mined[rows[j]] if self.miner is not None else None
            if dedup:
                key = popular.tobytes()
                if key in cache:
                    payload = cache[key]
                else:
                    payload = client._round_payload(
                        model, train_cfg, round_idx, popular=popular
                    )
                    cache[key] = payload
                    self.last_round_payloads += 1
            else:
                payload = client._round_payload(
                    model, train_cfg, round_idx, popular=popular
                )
                self.last_round_payloads += 1
            if payload is not None:
                payloads.append(payload)
                payload_rows.append(j)
        if not payloads:
            return

        # One broadcast multiply applies every client's participation
        # scale to the stacked (clients, targets, dim) gradient block —
        # the batched counterpart of ``scale * grads`` per client.  The
        # scales are cast to the gradient dtype first: a Python-float
        # scale leaves a reduced-precision upload at its own precision
        # on the object path, and a float64 scales array must not
        # promote it here.
        grads = np.stack([payload.item_grads for payload in payloads])
        row_scales = scales[payload_rows].astype(grads.dtype, copy=False)
        grads = row_scales[:, None, None] * grads
        params = [
            [grad.dtype.type(scales[j]) * grad for grad in payload.param_grads]
            for j, payload in zip(payload_rows, payloads)
        ]
        for k, j in enumerate(payload_rows):
            item_grads, param_grads = self._clip(grads[k], params[k])
            uploads[j] = CohortUpload(
                user_id=self.clients[rows[j]].user_id,
                item_ids=payloads[k].item_ids,
                item_grads=item_grads,
                param_grads=param_grads,
            )

    # ------------------------------------------------------------------
    # FedAttack: the whole team's local steps as one tensor pass
    # ------------------------------------------------------------------

    def _fedattack_uploads(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        rows: np.ndarray,
        active: np.ndarray,
        scales: np.ndarray,
        uploads: list[CohortUpload | None],
    ) -> None:
        """Batched inverted local steps for every sampled client.

        Exactly the benign engine's stack recipe with flipped labels:
        per-client RNG streams via ``spawn_batch`` (bit-identical to
        each client's ``spawn(seed, "fedattack", user_id, round)``),
        one ragged ``sample_local_batches`` stack over the fake
        profiles, and one ``batch_local_step`` whose per-segment
        reductions resolve item and interaction-parameter gradients
        per client.
        """
        clients: list[FedAttack] = [self.clients[rows[j]] for j in active]
        user_ids = np.array([client.user_id for client in clients], dtype=np.int64)
        rngs = spawn_batch(
            clients[0]._seed, ("fedattack",), user_ids, (round_idx,)
        )
        item_ids, labels, lengths = sample_local_batches(
            rngs,
            [client.fake_positives for client in clients],
            clients[0].num_items,
            train_cfg.negative_ratio,
        )
        item_vecs = model.item_embeddings[item_ids]
        user_vecs = np.stack([client.user_embedding for client in clients])
        # Label inversion is FedAttack's whole trick; the rest is a
        # verbatim benign local step, so the stacked benign kernel
        # applies unchanged.
        result = model.batch_local_step(user_vecs, item_vecs, 1.0 - labels, lengths)
        self.last_round_payloads = len(clients)

        # Scales are applied at the gradient dtype (see _delta_uploads):
        # reduced-precision models upload at their own precision on
        # both paths.
        seg_scales = scales[active]
        row_scales = np.repeat(seg_scales, lengths).astype(
            result.item_grads.dtype, copy=False
        )
        item_grads = result.item_grads * row_scales[:, None]
        param_stacks = [
            seg_scales.astype(stack.dtype, copy=False).reshape(
                (len(clients),) + (1,) * (stack.ndim - 1)
            )
            * stack
            for stack in result.param_grads
        ]
        starts = segment_starts(lengths)
        for k, j in enumerate(active.tolist()):
            seg = slice(int(starts[k]), int(starts[k]) + int(lengths[k]))
            grads, params = self._clip(
                item_grads[seg], [stack[k] for stack in param_stacks]
            )
            uploads[j] = CohortUpload(
                user_id=int(user_ids[k]),
                item_ids=item_ids[seg],
                item_grads=grads,
                param_grads=params,
            )

    # ------------------------------------------------------------------
    # Shared finalisation
    # ------------------------------------------------------------------

    def _clip(
        self, item_grads: np.ndarray, param_grads: list[np.ndarray]
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Apply ``ClientUpdate.clipped`` to one client's round slice.

        Shares the single :func:`~repro.federated.payload.clip_scale`
        definition with the materialised path; the slice is contiguous
        and the flat pairwise reduction depends only on the element
        count, so the norm is bit-identical to the reference.
        """
        scale = clip_scale(item_grads, param_grads, self.config.grad_clip)
        if scale is None:
            return item_grads, param_grads
        return item_grads * scale, [grad * scale for grad in param_grads]
