"""Pseudo-user refinement for PIECK-UEA (Section IV-D, strengthened).

Raw popular-item embeddings approximate user embeddings well while the
FRS trains with the standard sampling ratio (Property 3, Table II), but
the approximation degrades when heavy negative sampling (large ``q``,
supplementary B) pushes *item* embeddings into a different region than
*user* embeddings — the cosine between the mined popular centroid and
the user centroid drops sharply, and poison optimised against raw
popular embeddings then promotes the target in a direction real users
do not occupy.

The refiner closes that gap using only attacker-side knowledge: each
malicious client locally trains a handful of fake user embeddings whose
positives are the mined popular items and whose negatives are sampled
from the remaining items — exactly the local training a benign user who
loves the popular catalogue would run. Because the recommender model is
symmetric, the refined vectors land in the benign-user embedding region
by construction, for MF-FRS and DL-FRS alike (the gradients flow
through :meth:`RecommenderModel.backward`, never through a model-
specific formula).

No prior knowledge is consumed: the positives come from Algorithm 1's
Δ-Norm mining and the procedure runs entirely inside the malicious
client between the rounds it is sampled.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import RecommenderModel
from repro.models.losses import sigmoid
from repro.rng import spawn

__all__ = ["PseudoUserRefiner"]


class PseudoUserRefiner:
    """Locally trained fake user embeddings anchored on mined populars.

    The refiner keeps ``count`` pseudo-user vectors and warm-starts
    them across calls: every :meth:`refine` runs a few BCE steps
    against the *current* global model, so the vectors track the
    drifting item space exactly like a real user's private embedding
    does between rounds.
    """

    def __init__(
        self,
        num_items: int,
        embedding_dim: int,
        popular_ids: np.ndarray,
        *,
        count: int = 8,
        steps: int = 40,
        lr: float = 0.5,
        negative_ratio: int = 4,
        init_scale: float = 0.1,
        seed: int = 0,
    ):
        if count < 1:
            raise ValueError("need at least one pseudo-user")
        if len(popular_ids) == 0:
            raise ValueError("popular_ids must not be empty")
        self.popular_ids = np.asarray(popular_ids, dtype=np.int64)
        self.count = count
        self.steps = max(steps, 1)
        self.lr = lr
        self.negative_ratio = max(negative_ratio, 1)
        self._rng = spawn(seed, "pseudo-user-refiner")
        self._vecs = self._rng.normal(0.0, init_scale, (count, embedding_dim))
        self._negative_pool = np.setdiff1d(
            np.arange(num_items, dtype=np.int64), self.popular_ids
        )
        if len(self._negative_pool) == 0:
            # Degenerate catalogue: every item was mined as popular.
            self._negative_pool = self.popular_ids

    @property
    def vectors(self) -> np.ndarray:
        """Current pseudo-user embeddings, shape (count, dim)."""
        return self._vecs.copy()

    def refine(self, model: RecommenderModel) -> np.ndarray:
        """Run warm-started BCE steps against the current global model.

        Positives are the mined popular items (label 1); negatives are a
        fresh sample of ``negative_ratio`` times as many other items
        (label 0), re-drawn per step like a benign client's local
        dataset. Returns the refined pseudo-user matrix.
        """
        num_pos = len(self.popular_ids)
        num_neg = min(
            self.negative_ratio * num_pos, len(self._negative_pool)
        )
        labels = np.concatenate([np.ones(num_pos), np.zeros(num_neg)])
        for _ in range(self.steps):
            negatives = self._rng.choice(
                self._negative_pool, size=num_neg, replace=False
            )
            item_ids = np.concatenate([self.popular_ids, negatives])
            item_vecs = model.item_embeddings[item_ids]
            batch = len(item_ids)
            # One aligned forward/backward over all pseudo-users at once.
            users = np.repeat(self._vecs, batch, axis=0)
            items = np.tile(item_vecs, (self.count, 1))
            logits, cache = model.forward(users, items)
            targets = np.tile(labels, self.count)
            dlogits = (sigmoid(logits) - targets) / batch
            bundle = model.backward(cache, dlogits)
            user_grads = bundle.users.reshape(self.count, batch, -1).sum(axis=1)
            self._vecs = self._vecs - self.lr * user_grads
        return self.vectors
