"""PIECK-UEA: user embedding approximation (Section IV-D, Algorithm 3).

Property 3: in the symmetric FRS model, mined popular items' embeddings
distribute like user embeddings (validated by PKL/UCR, Table II). UEA
therefore substitutes the popular embeddings for the inaccessible
benign user embeddings in the promotion loss (Eq. 4 -> Eq. 10) and
derives poisonous gradients for the target items through the model's
interaction function. The approximating embeddings are constants —
only target item gradients are uploaded.

Unlike IPE, the UEA round is genuinely per-client: the inner
optimisation draws pseudo-user batches from the client's private
``(seed, "uea", user_id, round_idx)`` stream, and the ``"refined"``
pseudo-user source keeps warm-started per-client fake profiles.  The
cohort path therefore runs :meth:`PieckUEA._round_payload` per sampled
client (with the mined set injected from its struct-of-arrays miner)
and batches only the surrounding stages — mining, participation
scaling, and the final target-step gradient stack.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackPayload, PieckClient
from repro.attacks.mining import RoundSnapshotCache
from repro.attacks.refinement import PseudoUserRefiner
from repro.config import AttackConfig, TrainConfig
from repro.models.base import RecommenderModel
from repro.models.losses import sigmoid
from repro.rng import spawn

__all__ = ["PieckUEA"]


class PieckUEA(PieckClient):
    """Algorithm 3: mine P, approximate users with P, promote targets."""

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        *,
        seed: int = 0,
        snapshots: RoundSnapshotCache | None = None,
    ):
        super().__init__(user_id, targets, config, num_items, snapshots=snapshots)
        self._seed = seed
        self._num_items = num_items
        self._refiner: PseudoUserRefiner | None = None

    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        popular_ids = self._popular_excluding_targets(popular)
        pseudo_users = self._pseudo_users(model, popular_ids)
        reference_norm = float(np.mean(np.linalg.norm(pseudo_users, axis=1)))
        rng = spawn(self._seed, "uea", self.user_id, round_idx)

        popular_vecs = model.item_embeddings[popular_ids]
        deltas: list[np.ndarray] = []
        for target in self._targets_to_train():
            old = model.item_embeddings[target].copy()
            new = self._optimise_target(model, old, pseudo_users, popular_vecs, rng)
            deltas.append(new - old)
        deltas = self._expand_deltas(deltas)

        grads = self._target_step_gradients(
            model, deltas, train_cfg.lr, reference_norm
        )
        return AttackPayload(self.targets, grads)

    # ------------------------------------------------------------------

    def _pseudo_users(
        self, model: RecommenderModel, popular_ids: np.ndarray
    ) -> np.ndarray:
        """The user-embedding stand-ins the promotion loss optimises over.

        ``uea_pseudo_source == "popular"`` is Eq. 10 verbatim; the
        default ``"refined"`` locally trains fake user profiles on the
        mined populars (see :mod:`repro.attacks.refinement`), which
        keeps the approximation faithful even when heavy negative
        sampling separates item and user geometry.
        """
        if self.config.uea_pseudo_source == "popular":
            return model.item_embeddings[popular_ids]
        if self._refiner is None:
            self._refiner = PseudoUserRefiner(
                self._num_items,
                model.embedding_dim,
                popular_ids,
                count=self.config.uea_refine_count,
                steps=self.config.uea_refine_steps,
                lr=self.config.uea_refine_lr,
                negative_ratio=self.config.uea_refine_negative_ratio,
                seed=self._seed * 1_000_003 + self.user_id,
            )
        return self._refiner.refine(model)

    def _optimise_target(
        self,
        model: RecommenderModel,
        start: np.ndarray,
        pseudo_users: np.ndarray,
        popular_vecs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Inner optimisation of Eq. 10 over batches of pseudo-users.

        Uses normalised gradient steps sized relative to the pseudo-user
        norm scale, so the same attack configuration is effective for
        both MF-FRS and DL-FRS regardless of the interaction function's
        gradient magnitudes (the model-agnostic property of PIECK).
        """
        vec = start.copy()
        reference_norm = float(np.mean(np.linalg.norm(pseudo_users, axis=1)))
        # Re-anchor a previously-poisoned embedding into the pseudo-user
        # norm range; otherwise sigmoid saturation freezes its direction
        # while the popular/user distribution keeps drifting.
        cap = self.config.norm_cap_factor * float(
            np.linalg.norm(pseudo_users, axis=1).max()
        )
        norm = np.linalg.norm(vec)
        if cap > 0 and norm > cap:
            vec *= cap / norm
        # Optimise to convergence: each "round" (inner_steps, the paper's
        # round size) takes several normalised sub-steps, stopping early
        # once the promotion margin is met for the sampled batch. The
        # per-round *upload* is still bounded by the caller, so running
        # the local optimisation to convergence is free for stability.
        steps = max(self.config.inner_steps, 1) * 10
        step_size = 0.15 * reference_norm
        batch_size = min(max(self.config.uea_batch_size, 1), len(pseudo_users))
        margin = self.config.promotion_margin
        if self.config.adaptive_margin:
            # Track the converging FRS: aim above the best score any
            # mined popular item achieves for the pseudo-users.
            popular_logits, _ = model.forward(
                np.repeat(pseudo_users, len(popular_vecs), axis=0),
                np.tile(popular_vecs, (len(pseudo_users), 1)),
            )
            per_item = popular_logits.reshape(len(pseudo_users), len(popular_vecs))
            margin += float(per_item.mean(axis=0).max())
        for _ in range(steps):
            if batch_size < len(pseudo_users):
                rows = rng.choice(len(pseudo_users), size=batch_size, replace=False)
                users = pseudo_users[rows]
            else:
                users = pseudo_users
            item_vecs = np.broadcast_to(vec, users.shape).copy()
            logits, cache = model.forward(users, item_vecs)
            # Eq. 10 penalises every pseudo-user's score, so converge on
            # the worst one — a high *mean* can hide an embedding that
            # points away from a large part of the user distribution.
            if float(logits.min()) >= margin:
                break
            # d/d logit of -mean log sigmoid(logit - margin); labels are 1.
            dlogits = (sigmoid(logits - margin) - 1.0) / len(logits)
            bundle = model.backward(cache, dlogits)
            grad = bundle.items.sum(axis=0)
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm < 1e-12:
                break
            vec = vec - step_size * grad / grad_norm
        return vec
