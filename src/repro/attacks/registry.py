"""Attack registry: build the malicious client population by name.

Construction is always per-object — every client's initialisation RNG
draws (fake profiles, surrogate embeddings, masked priors) happen here
exactly once, in client order — and the resulting homogeneous team can
then be executed two ways: per-object ``participate`` calls (the
reference loop engine), or adopted whole by a
:class:`~repro.attacks.cohort.MaliciousCohort`
(:func:`build_malicious_cohort`, the batch engine's default), which
owns the team-level struct-of-arrays state while the attack math keeps
running through the same objects.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import MaliciousClient
from repro.attacks.baselines.fedattack import FedAttack
from repro.attacks.baselines.fedrecattack import FedRecAttack
from repro.attacks.baselines.interaction import AHum, ARa
from repro.attacks.baselines.pipattack import PipAttack
from repro.attacks.cohort import MaliciousCohort
from repro.attacks.mining import RoundSnapshotCache
from repro.attacks.pieck_ipe import PieckIPE
from repro.attacks.pieck_uea import PieckUEA
from repro.config import AttackConfig
from repro.datasets.base import InteractionDataset
from repro.rng import spawn

__all__ = [
    "ATTACK_NAMES",
    "build_malicious_clients",
    "build_malicious_cohort",
    "num_malicious_for_ratio",
]

#: All attacks runnable by name ("none" means no malicious users).
ATTACK_NAMES = (
    "none",
    "fedattack",
    "fedrecattack",
    "pipattack",
    "a_ra",
    "a_hum",
    "pieck_ipe",
    "pieck_uea",
)

#: How many benign users FedRecAttack is assumed to partially know.
_FEDREC_KNOWN_USERS = 32
#: Fraction of a known user's interactions that are public.
_FEDREC_KNOWN_FRACTION = 0.5
#: Popular/unpopular label split used by PipAttack (top 15%, Fig. 3).
_PIP_POPULAR_SHARE = 0.15


def num_malicious_for_ratio(num_benign: int, ratio: float) -> int:
    """Malicious user count so that |U-tilde| / |U| equals ``ratio``.

    The paper's p-tilde is measured against the *total* user population
    (benign + injected), hence the ``ratio / (1 - ratio)`` conversion.
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError("malicious ratio must lie in [0, 1)")
    if ratio == 0.0:
        return 0
    return max(1, int(round(num_benign * ratio / (1.0 - ratio))))


def _fedrec_known_interactions(
    dataset: InteractionDataset, masked: bool, rng: np.random.Generator
) -> list[np.ndarray]:
    """Public interaction sets: real samples, or random noise when masked."""
    count = min(_FEDREC_KNOWN_USERS, dataset.num_users)
    users = rng.choice(dataset.num_users, size=count, replace=False)
    known: list[np.ndarray] = []
    for user in users:
        items = dataset.train_pos[int(user)]
        take = max(1, int(round(len(items) * _FEDREC_KNOWN_FRACTION)))
        if masked:
            known.append(rng.choice(dataset.num_items, size=take, replace=False))
        else:
            known.append(rng.choice(items, size=min(take, len(items)), replace=False))
    return known


def _pip_labels(
    dataset: InteractionDataset, masked: bool, rng: np.random.Generator
) -> np.ndarray:
    """Binary popularity labels: true top-15%, or shuffled when masked."""
    ranking = dataset.popularity_ranking()
    labels = np.zeros(dataset.num_items)
    head = max(1, int(round(dataset.num_items * _PIP_POPULAR_SHARE)))
    labels[ranking[:head]] = 1.0
    if masked:
        rng.shuffle(labels)
    return labels


def build_malicious_clients(
    name: str,
    *,
    dataset: InteractionDataset,
    config: AttackConfig,
    targets: np.ndarray,
    embedding_dim: int,
    num_malicious: int,
    first_user_id: int,
    masked_prior: bool = True,
    seed: int = 0,
) -> list[MaliciousClient]:
    """Instantiate ``num_malicious`` attack clients of the named attack.

    ``masked_prior`` selects the paper's fair-comparison mode (Table
    III) in which FedRecAttack's interactions and PipAttack's
    popularity levels are withheld from the attacker.

    PIECK teams share one :class:`~repro.attacks.mining.
    RoundSnapshotCache`: co-sampled miners retain a single copy of the
    round's item matrix between them instead of one copy each.  To run
    the team through the batched cohort path instead of per-object
    ``participate`` calls, hand the returned list to
    :func:`build_malicious_cohort` (or construct
    :class:`~repro.attacks.cohort.MaliciousCohort` directly).
    """
    if name not in ATTACK_NAMES:
        raise ValueError(f"unknown attack {name!r}; expected one of {ATTACK_NAMES}")
    if name == "none" or num_malicious == 0:
        return []

    rng = spawn(seed, "attack-build", name)
    snapshots = RoundSnapshotCache() if name in ("pieck_ipe", "pieck_uea") else None
    clients: list[MaliciousClient] = []
    for index in range(num_malicious):
        user_id = first_user_id + index
        if name == "fedattack":
            clients.append(
                FedAttack(
                    user_id,
                    targets,
                    config,
                    dataset.num_items,
                    embedding_dim=embedding_dim,
                    seed=seed,
                )
            )
        elif name == "pieck_ipe":
            clients.append(
                PieckIPE(
                    user_id, targets, config, dataset.num_items, snapshots=snapshots
                )
            )
        elif name == "pieck_uea":
            clients.append(
                PieckUEA(
                    user_id,
                    targets,
                    config,
                    dataset.num_items,
                    seed=seed,
                    snapshots=snapshots,
                )
            )
        elif name == "fedrecattack":
            known = _fedrec_known_interactions(dataset, masked_prior, rng)
            clients.append(
                FedRecAttack(
                    user_id,
                    targets,
                    config,
                    dataset.num_items,
                    known,
                    embedding_dim=embedding_dim,
                    seed=seed,
                )
            )
        elif name == "pipattack":
            labels = _pip_labels(dataset, masked_prior, rng)
            clients.append(
                PipAttack(
                    user_id,
                    targets,
                    config,
                    dataset.num_items,
                    labels,
                    embedding_dim=embedding_dim,
                    seed=seed,
                )
            )
        elif name == "a_ra":
            clients.append(
                ARa(
                    user_id,
                    targets,
                    config,
                    dataset.num_items,
                    embedding_dim=embedding_dim,
                    seed=seed,
                )
            )
        elif name == "a_hum":
            clients.append(
                AHum(
                    user_id,
                    targets,
                    config,
                    dataset.num_items,
                    embedding_dim=embedding_dim,
                    seed=seed,
                )
            )
    for client in clients:
        client.team_size = len(clients)
    return clients


def build_malicious_cohort(name: str, **kwargs) -> MaliciousCohort | None:
    """Build the named attack team and wrap it in a batched cohort.

    Accepts exactly the keyword arguments of
    :func:`build_malicious_clients`; returns ``None`` for
    ``name="none"`` or an empty team.  The cohort executes all sampled
    clients of a round in one struct-of-arrays pass
    (:meth:`~repro.attacks.cohort.MaliciousCohort.compute_uploads`)
    and is bit-identical to driving the same clients through
    ``participate`` one by one.
    """
    clients = build_malicious_clients(name, **kwargs)
    return MaliciousCohort(clients) if clients else None
