"""Targeted model-poisoning attacks against FRS.

The package implements the paper's contribution — PIECK with its two
variants (Sections IV-B to IV-D) — and the four top-tier baselines it
compares against (FedRecAttack, PipAttack, A-ra, A-hum), each with the
"prior knowledge masked" mode used for Table III's fair comparison.
"""

from repro.attacks.base import (
    MaliciousClient,
    bounded_step_gradient,
    delta_as_gradient,
    select_target_items,
)
from repro.attacks.mining import DeltaNormTracker, PopularItemMiner
from repro.attacks.pieck_ipe import PieckIPE, ipe_loss_and_grad
from repro.attacks.pieck_uea import PieckUEA
from repro.attacks.registry import ATTACK_NAMES, build_malicious_clients

__all__ = [
    "MaliciousClient",
    "delta_as_gradient",
    "bounded_step_gradient",
    "select_target_items",
    "DeltaNormTracker",
    "PopularItemMiner",
    "PieckIPE",
    "PieckUEA",
    "ipe_loss_and_grad",
    "ATTACK_NAMES",
    "build_malicious_clients",
]
