"""Targeted model-poisoning attacks against FRS.

The package implements the paper's contribution — PIECK with its two
variants (Sections IV-B to IV-D) — and the four top-tier baselines it
compares against (FedRecAttack, PipAttack, A-ra, A-hum), each with the
"prior knowledge masked" mode used for Table III's fair comparison.

Each attack exists in two bit-identical executions: per-object
:class:`MaliciousClient` ``participate`` calls (the reference), and
the team-level struct-of-arrays :class:`MaliciousCohort` that runs all
sampled clients of a round in one batched pass (the batch engine's
default).
"""

from repro.attacks.base import (
    AttackPayload,
    MaliciousClient,
    PieckClient,
    bounded_step_gradient,
    delta_as_gradient,
    select_target_items,
    stacked_step_gradients,
)
from repro.attacks.cohort import CohortUpload, MaliciousCohort
from repro.attacks.mining import (
    CohortMiner,
    DeltaNormTracker,
    PopularItemMiner,
    RoundSnapshotCache,
)
from repro.attacks.pieck_ipe import PieckIPE, ipe_loss_and_grad
from repro.attacks.pieck_uea import PieckUEA
from repro.attacks.registry import (
    ATTACK_NAMES,
    build_malicious_clients,
    build_malicious_cohort,
)

__all__ = [
    "AttackPayload",
    "MaliciousClient",
    "PieckClient",
    "delta_as_gradient",
    "bounded_step_gradient",
    "stacked_step_gradients",
    "select_target_items",
    "CohortMiner",
    "CohortUpload",
    "DeltaNormTracker",
    "MaliciousCohort",
    "PopularItemMiner",
    "RoundSnapshotCache",
    "PieckIPE",
    "PieckUEA",
    "ipe_loss_and_grad",
    "ATTACK_NAMES",
    "build_malicious_clients",
    "build_malicious_cohort",
]
