"""Malicious-client interface and shared attack utilities.

The attacker model follows Section III-B: malicious clients know the
server learning rate and the model structure, and see the global model
only in rounds where they are sampled. They cannot read benign users'
embeddings, gradients, interactions or popularity levels.

Every attack's round is factored into the same three stages so that
the per-object reference path and the team-level batched path
(:class:`~repro.attacks.cohort.MaliciousCohort`) share one
implementation of the attack math:

1. **participation accounting** — ``_participation_scale`` (object
   path) or the cohort's vectorised ``times_sampled`` counters;
2. **payload** — ``_round_payload`` computes the *unscaled* upload
   (item ids, gradient rows, optional interaction-parameter
   gradients); this is the per-attack hook;
3. **finalise** — the payload is scaled by the participation scale and
   (optionally) norm-clipped; the object path wraps it in a
   :class:`~repro.federated.payload.ClientUpdate`, the cohort splices
   the stacked rows straight into the round's
   :class:`~repro.federated.update_batch.UpdateBatch`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.attacks.mining import PopularItemMiner, RoundSnapshotCache
from repro.config import AttackConfig, TrainConfig
from repro.federated.payload import ClientUpdate
from repro.models.base import RecommenderModel

__all__ = [
    "AttackPayload",
    "MaliciousClient",
    "PieckClient",
    "delta_as_gradient",
    "bounded_step_gradient",
    "stacked_step_gradients",
    "select_target_items",
]


@dataclass
class AttackPayload:
    """One client's unscaled upload for one round.

    ``item_ids`` / ``item_grads`` are row-aligned; ``param_grads``
    covers the learnable interaction function (DL-FRS only).  The
    participation scale and the optional ``grad_clip`` are applied by
    the caller — the object path in
    :meth:`MaliciousClient.participate`, the batched path in
    :meth:`~repro.attacks.cohort.MaliciousCohort.compute_uploads` —
    so the payload itself is engine-agnostic.
    """

    item_ids: np.ndarray
    item_grads: np.ndarray
    param_grads: list[np.ndarray] = field(default_factory=list)


class MaliciousClient(ABC):
    """A malicious user injected by the attacker.

    ``participate`` is called only in rounds where the server samples
    this user; it may return ``None`` to upload nothing (e.g. while the
    PIECK miner is still accumulating Δ-Norm observations).

    Batch-engine contract: uploads must be ordinary
    :class:`ClientUpdate` objects (row-aligned ``item_ids`` /
    ``item_grads`` float64 arrays, unique ids — which
    ``ClientUpdate.__post_init__`` enforces), because the vectorised
    engine splices them verbatim into the round's fused gradient
    scatter at the client's sampled position.  ``participate`` may not
    assume it runs interleaved with benign clients — the batch engine
    runs all malicious participants before the benign tensor pass
    (the global model is frozen within a round, so this is
    order-equivalent) — and must key any per-round randomness on
    ``(seed, user_id, round_idx)`` streams, never on call order.

    Cohort contract: when a team of clients is adopted by a
    :class:`~repro.attacks.cohort.MaliciousCohort`, the cohort owns
    the participation counters and (for PIECK) the mining state; the
    per-attack math still runs through this class's
    :meth:`_round_payload`, so the two paths cannot drift.
    """

    def __init__(self, user_id: int, targets: np.ndarray, config: AttackConfig):
        self.user_id = user_id
        self.targets = np.asarray(targets, dtype=np.int64)
        self.config = config
        #: Number of malicious clients controlled by the same attacker
        #: (set by the registry). Known to the attacker by construction.
        self.team_size = 1
        self._times_sampled = 0

    def _participation_scale(self, round_idx: int) -> float:
        """1 / E[co-sampled malicious clients], estimated online.

        When several of the attacker's clients land in the same round,
        their uploads sum at the server; without coordination the target
        overshoots its poisoned optimum by that factor every round and
        oscillates. Each client observes its own sampling rate, knows
        the team size, and scales its upload so the *expected* combined
        push equals one intended step. Uses only attacker-side
        knowledge (Section III-B). Call exactly once per participation.
        """
        self._times_sampled += 1
        rate = self._times_sampled / max(round_idx + 1, 1)
        return 1.0 / max(rate * self.team_size, 1.0)

    # ------------------------------------------------------------------
    # The round template (object path)
    # ------------------------------------------------------------------

    def participate(
        self, model: RecommenderModel, train_cfg: TrainConfig, round_idx: int
    ) -> ClientUpdate | None:
        """Observe the global model and optionally upload poison."""
        scale = self._participation_scale(round_idx)
        if not self._observe_model(model, round_idx):
            return None
        payload = self._round_payload(model, train_cfg, round_idx)
        if payload is None:
            return None
        return self._make_update(
            payload.item_ids,
            scale * payload.item_grads,
            [scale * grad for grad in payload.param_grads],
        )

    def _observe_model(self, model: RecommenderModel, round_idx: int) -> bool:
        """Pre-payload model observation; ``False`` skips the upload.

        The default attacker needs no warm-up; PIECK overrides this
        with the Algorithm 1 mining gate (observe, and upload only
        once the popular set is frozen).
        """
        return True

    @abstractmethod
    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        """The attack's unscaled upload for this round (or ``None``).

        ``popular`` lets the cohort inject the client's mined popular
        set from its struct-of-arrays miner; object-path PIECK clients
        read their own ``self.miner`` when it is ``None``.  Non-mining
        attacks ignore it.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _targets_to_train(self) -> np.ndarray:
        """Targets whose deltas are derived this round (supp. C).

        Under ``"one_then_copy"`` only the first target is optimised;
        :meth:`_expand_deltas` replicates its delta across the rest.
        """
        if self.config.multi_target_strategy == "one_then_copy":
            return self.targets[:1]
        return self.targets

    def _expand_deltas(self, deltas: list[np.ndarray]) -> list[np.ndarray]:
        """Complete the per-target delta list for ``one_then_copy``."""
        if self.config.multi_target_strategy == "one_then_copy":
            return [deltas[0]] * len(self.targets)
        return deltas

    def _target_step_gradients(
        self,
        model: RecommenderModel,
        deltas: list[np.ndarray],
        server_lr: float,
        reference_norm: float,
    ) -> np.ndarray:
        """Stack bounded-step gradients steering each target by its delta.

        One :func:`stacked_step_gradients` call over the whole target
        stack.  The kernel is row-wise, and the cohort path uses the
        exact same call per payload, so the two paths are bit-identical
        row for row.
        """
        max_step = self.config.step_norm_factor * reference_norm
        old = model.item_embeddings[self.targets]
        return stacked_step_gradients(
            old, old + np.stack(deltas), server_lr, max_step
        )

    def _make_update(
        self,
        item_ids: np.ndarray,
        item_grads: np.ndarray,
        param_grads: list[np.ndarray] | None = None,
    ) -> ClientUpdate:
        update = ClientUpdate(
            user_id=self.user_id,
            item_ids=item_ids,
            item_grads=item_grads,
            param_grads=param_grads or [],
            malicious=True,
        )
        if self.config.grad_clip > 0:
            update = update.clipped(self.config.grad_clip)
        return update


class PieckClient(MaliciousClient):
    """Shared PIECK machinery: the Algorithm 1 miner and its gate.

    Both PIECK variants first mine the popular set P; ``participate``
    keeps counting participations during mining (the scale estimator
    sees every sampled round) but uploads nothing while the miner is
    still accumulating.  The round whose observation *freezes* P is
    the first attacking round: the gate re-checks readiness after
    observing, so the client proceeds straight to its upload.

    ``snapshots`` is the team-shared :class:`RoundSnapshotCache`: all
    of one attacker's miners observing the same round retain one copy
    of the received item matrix between them.
    """

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        *,
        snapshots: RoundSnapshotCache | None = None,
    ):
        super().__init__(user_id, targets, config)
        self.miner = PopularItemMiner(
            num_items, config.mining_rounds, config.num_popular
        )
        self._snapshots = snapshots

    def _observe_model(self, model: RecommenderModel, round_idx: int) -> bool:
        if not self.miner.ready:
            snapshot = (
                self._snapshots.get(model.item_embeddings, round_idx)
                if self._snapshots is not None
                else None
            )
            self.miner.observe(model.item_embeddings, snapshot=snapshot)
        return self.miner.ready

    def _popular_excluding_targets(
        self, popular: np.ndarray | None = None
    ) -> np.ndarray:
        """The mined set P with the attack's own targets removed.

        Falls back to the full mined set when every mined item is a
        target (degenerate catalogues).  ``popular`` overrides the
        object-path miner with a cohort-mined row.
        """
        if popular is None:
            popular = self.miner.popular_items()
        mask = ~np.isin(popular, self.targets)
        filtered = popular[mask]
        return filtered if len(filtered) else popular


def bounded_step_gradient(
    old: np.ndarray, new: np.ndarray, server_lr: float, max_step: float
) -> np.ndarray:
    """Gradient steering ``old`` towards ``new`` by at most ``max_step``.

    Uploading the full jump ``(old - new) / eta`` is unstable: when ``k``
    malicious clients land in the same round their uploads sum and the
    parameter overshoots to ``(1 - k) * old + k * new``, which diverges
    for ``k >= 2``. Capping each client's contribution to a bounded step
    keeps the dynamics stable while many poisonous gradients still
    dominate the count for cold items (Eq. 11).
    """
    delta = new - old
    norm = float(np.linalg.norm(delta))
    if max_step > 0 and norm > max_step:
        delta = delta * (max_step / norm)
    return delta_as_gradient(old, old + delta, server_lr)


def stacked_step_gradients(
    old_rows: np.ndarray,
    new_rows: np.ndarray,
    server_lr: float,
    max_step: float,
) -> np.ndarray:
    """Row-stacked :func:`bounded_step_gradient` in one tensor pass.

    ``old_rows`` / ``new_rows`` are ``(rows, dim)`` stacks of current
    and desired embeddings; every row is clipped and encoded
    independently, so any row-wise restacking (per-target within one
    client, or all sampled clients' targets at once in the cohort
    path) produces identical values — the invariant the object/cohort
    parity suite rests on.  Dispatched through :mod:`repro.kernels`,
    whose contract accumulates each row's squared components
    sequentially over the feature axis — a per-row order independent
    of the surrounding stack (unlike NumPy's 1-D ``linalg.norm``
    BLAS-dot fast path) that the native port replays exactly.
    """
    if server_lr <= 0:
        raise ValueError("server learning rate must be positive")
    return kernels.stacked_step_gradients(
        old_rows, new_rows, server_lr, max_step
    )


def delta_as_gradient(old: np.ndarray, new: np.ndarray, server_lr: float) -> np.ndarray:
    """Encode a desired parameter move as an uploadable gradient.

    The server updates ``param <- param - eta * Agg(grads)``; since the
    attacker knows ``eta`` (attacker knowledge item 1 in Section III-B),
    uploading ``(old - new) / eta`` steers the parameter towards ``new``
    when the poisonous gradient dominates the aggregate — which Eq. 11
    shows it does for cold target items.
    """
    if server_lr <= 0:
        raise ValueError("server learning rate must be positive")
    return (old - new) / server_lr


def select_target_items(
    dataset, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Randomly pick cold target items, following FedRecAttack's protocol.

    The paper samples targets from the *uninteracted* items so that
    comparisons are fair; we sample among zero-popularity items and fall
    back to the coldest tail when every item has interactions.
    """
    popularity = dataset.popularity()
    cold = np.flatnonzero(popularity == 0)
    if len(cold) >= count:
        return np.sort(rng.choice(cold, size=count, replace=False))
    tail = dataset.coldest_items(max(count * 4, count))
    return np.sort(rng.choice(tail, size=count, replace=False))
