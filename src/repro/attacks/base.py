"""Malicious-client interface and shared attack utilities.

The attacker model follows Section III-B: malicious clients know the
server learning rate and the model structure, and see the global model
only in rounds where they are sampled. They cannot read benign users'
embeddings, gradients, interactions or popularity levels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.config import AttackConfig, TrainConfig
from repro.federated.payload import ClientUpdate
from repro.models.base import RecommenderModel

__all__ = [
    "MaliciousClient",
    "delta_as_gradient",
    "bounded_step_gradient",
    "select_target_items",
]


class MaliciousClient(ABC):
    """A malicious user injected by the attacker.

    ``participate`` is called only in rounds where the server samples
    this user; it may return ``None`` to upload nothing (e.g. while the
    PIECK miner is still accumulating Δ-Norm observations).

    Batch-engine contract: uploads must be ordinary
    :class:`ClientUpdate` objects (row-aligned ``item_ids`` /
    ``item_grads`` float64 arrays, unique ids — which
    ``ClientUpdate.__post_init__`` enforces), because the vectorised
    engine splices them verbatim into the round's fused gradient
    scatter at the client's sampled position.  ``participate`` may not
    assume it runs interleaved with benign clients — the batch engine
    runs all malicious participants before the benign tensor pass
    (the global model is frozen within a round, so this is
    order-equivalent) — and must key any per-round randomness on
    ``(seed, user_id, round_idx)`` streams, never on call order.
    """

    def __init__(self, user_id: int, targets: np.ndarray, config: AttackConfig):
        self.user_id = user_id
        self.targets = np.asarray(targets, dtype=np.int64)
        self.config = config
        #: Number of malicious clients controlled by the same attacker
        #: (set by the registry). Known to the attacker by construction.
        self.team_size = 1
        self._times_sampled = 0

    def _participation_scale(self, round_idx: int) -> float:
        """1 / E[co-sampled malicious clients], estimated online.

        When several of the attacker's clients land in the same round,
        their uploads sum at the server; without coordination the target
        overshoots its poisoned optimum by that factor every round and
        oscillates. Each client observes its own sampling rate, knows
        the team size, and scales its upload so the *expected* combined
        push equals one intended step. Uses only attacker-side
        knowledge (Section III-B). Call exactly once per participation.
        """
        self._times_sampled += 1
        rate = self._times_sampled / max(round_idx + 1, 1)
        return 1.0 / max(rate * self.team_size, 1.0)

    @abstractmethod
    def participate(
        self, model: RecommenderModel, train_cfg: TrainConfig, round_idx: int
    ) -> ClientUpdate | None:
        """Observe the global model and optionally upload poison."""

    def _target_step_gradients(
        self,
        model: RecommenderModel,
        deltas: list[np.ndarray],
        server_lr: float,
        reference_norm: float,
        scale: float = 1.0,
    ) -> np.ndarray:
        """Stack bounded-step gradients steering each target by its delta.

        ``scale`` divides the work among co-sampled teammates (see
        :meth:`_participation_scale`).
        """
        max_step = self.config.step_norm_factor * reference_norm
        return scale * np.stack(
            [
                bounded_step_gradient(
                    model.item_embeddings[target],
                    model.item_embeddings[target] + delta,
                    server_lr,
                    max_step,
                )
                for target, delta in zip(self.targets, deltas)
            ]
        )

    def _make_update(
        self,
        item_ids: np.ndarray,
        item_grads: np.ndarray,
        param_grads: list[np.ndarray] | None = None,
    ) -> ClientUpdate:
        update = ClientUpdate(
            user_id=self.user_id,
            item_ids=item_ids,
            item_grads=item_grads,
            param_grads=param_grads or [],
            malicious=True,
        )
        if self.config.grad_clip > 0:
            update = update.clipped(self.config.grad_clip)
        return update


def bounded_step_gradient(
    old: np.ndarray, new: np.ndarray, server_lr: float, max_step: float
) -> np.ndarray:
    """Gradient steering ``old`` towards ``new`` by at most ``max_step``.

    Uploading the full jump ``(old - new) / eta`` is unstable: when ``k``
    malicious clients land in the same round their uploads sum and the
    parameter overshoots to ``(1 - k) * old + k * new``, which diverges
    for ``k >= 2``. Capping each client's contribution to a bounded step
    keeps the dynamics stable while many poisonous gradients still
    dominate the count for cold items (Eq. 11).
    """
    delta = new - old
    norm = float(np.linalg.norm(delta))
    if max_step > 0 and norm > max_step:
        delta = delta * (max_step / norm)
    return delta_as_gradient(old, old + delta, server_lr)


def delta_as_gradient(old: np.ndarray, new: np.ndarray, server_lr: float) -> np.ndarray:
    """Encode a desired parameter move as an uploadable gradient.

    The server updates ``param <- param - eta * Agg(grads)``; since the
    attacker knows ``eta`` (attacker knowledge item 1 in Section III-B),
    uploading ``(old - new) / eta`` steers the parameter towards ``new``
    when the poisonous gradient dominates the aggregate — which Eq. 11
    shows it does for cold target items.
    """
    if server_lr <= 0:
        raise ValueError("server learning rate must be positive")
    return (old - new) / server_lr


def select_target_items(
    dataset, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Randomly pick cold target items, following FedRecAttack's protocol.

    The paper samples targets from the *uninteracted* items so that
    comparisons are fair; we sample among zero-popularity items and fall
    back to the coldest tail when every item has interactions.
    """
    popularity = dataset.popularity()
    cold = np.flatnonzero(popularity == 0)
    if len(cold) >= count:
        return np.sort(rng.choice(cold, size=count, replace=False))
    tail = dataset.coldest_items(max(count * 4, count))
    return np.sort(rng.choice(tail, size=count, replace=False))
