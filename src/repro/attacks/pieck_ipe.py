"""PIECK-IPE: item popularity enhancement (Section IV-C, Algorithm 2).

After mining the popular set P, each malicious client aligns the
embeddings of the target items with the mined popular items via the
sign-partitioned, rank-weighted cosine loss of Eq. 8, and uploads the
resulting embedding move as poisonous gradients for the targets only.

The whole round is deterministic in ``(model, config, P)``: no
per-client RNG, no warm-started state.  The cohort path exploits this
by computing :meth:`PieckIPE._round_payload` once per *distinct* mined
set and fanning the result out to every client that mined the same P
— see :class:`~repro.attacks.cohort.MaliciousCohort`.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackPayload, PieckClient
from repro.attacks.mining import RoundSnapshotCache
from repro.config import AttackConfig, TrainConfig
from repro.metrics.divergence import softmax
from repro.models.base import RecommenderModel

__all__ = ["ipe_loss_and_grad", "PieckIPE"]

_EPS = 1e-12


def _inverse_rank_weights(size: int) -> np.ndarray:
    """Normalised inverse-rank weights: most popular item weighs most."""
    weights = np.arange(size, 0, -1, dtype=np.float64)
    return weights / weights.sum()


def ipe_loss_and_grad(
    target_vec: np.ndarray,
    popular_matrix: np.ndarray,
    *,
    lam: float = 0.5,
    metric: str = "pcos",
    use_weights: bool = True,
    use_partition: bool = True,
) -> tuple[float, np.ndarray]:
    """The L_IPE alignment loss (Eq. 8) and its gradient w.r.t. the target.

    ``popular_matrix`` rows are the mined popular items' embeddings in
    mined order (most popular first). The three keyword toggles
    correspond exactly to the Table VI ablation axes:

    * ``metric="pkl"`` replaces weighted cosine alignment by softmax-KL
      minimisation;
    * ``use_weights=False`` drops the inverse-rank weights kappa;
    * ``use_partition=False`` skips the P+/P- sign split.
    """
    if not 0.0 < lam <= 1.0:
        raise ValueError("lambda must lie in (0, 1]")
    if metric not in ("pcos", "pkl"):
        raise ValueError(f"unknown metric {metric!r}")
    popular = np.asarray(popular_matrix, dtype=np.float64)
    target = np.asarray(target_vec, dtype=np.float64)
    if popular.ndim != 2 or popular.shape[1] != target.shape[0]:
        raise ValueError("popular_matrix must be (N, d) matching the target")

    if metric == "pkl":
        # Ablation: align distributions by minimising mean KL(v_k || v_j).
        p = softmax(popular)
        q = softmax(target)
        kl = np.sum(p * (np.log(p + _EPS) - np.log(q + _EPS)), axis=1)
        loss = float(np.mean(kl))
        grad = (q[None, :] - p).mean(axis=0)
        return loss, grad

    target_norm = np.linalg.norm(target) + _EPS
    pop_norms = np.linalg.norm(popular, axis=1) + _EPS
    cosines = popular @ target / (pop_norms * target_norm)
    # d cos(v_k, v_j) / d v_j for every popular item k.
    cos_grads = popular / (pop_norms[:, None] * target_norm) - (
        cosines[:, None] * target[None, :] / target_norm**2
    )

    if use_partition:
        subsets = [np.flatnonzero(cosines > 0.0), np.flatnonzero(cosines <= 0.0)]
    else:
        subsets = [np.arange(len(popular))]

    loss = 0.0
    grad = np.zeros_like(target)
    for subset in subsets:
        if len(subset) == 0:
            continue
        if use_weights:
            weights = _inverse_rank_weights(len(subset))
        else:
            weights = np.full(len(subset), 1.0 / len(subset))
        # Eq. 8 divides by lambda^{-1} * |P*|, i.e. multiplies by lambda/|P*|.
        scale = lam / len(subset)
        loss -= scale * float(weights @ cosines[subset])
        grad -= scale * (weights[:, None] * cos_grads[subset]).sum(axis=0)
    return loss, grad


class PieckIPE(PieckClient):
    """Algorithm 2: mine P, then upload popularity-enhancing gradients."""

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        *,
        metric: str | None = None,
        use_weights: bool | None = None,
        use_partition: bool | None = None,
        snapshots: RoundSnapshotCache | None = None,
    ):
        super().__init__(user_id, targets, config, num_items, snapshots=snapshots)
        # Keyword overrides win; otherwise the Table VI ablation
        # toggles come from the attack config itself.
        self.metric = config.ipe_metric if metric is None else metric
        self.use_weights = (
            config.ipe_use_weights if use_weights is None else use_weights
        )
        self.use_partition = (
            config.ipe_use_partition if use_partition is None else use_partition
        )

    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        popular_ids = self._popular_excluding_targets(popular)
        popular_vecs = model.item_embeddings[popular_ids]
        reference_norm = float(np.mean(np.linalg.norm(popular_vecs, axis=1)))

        deltas: list[np.ndarray] = []
        for target in self._targets_to_train():
            old = model.item_embeddings[target].copy()
            new = self._optimise_target(old, popular_vecs)
            deltas.append(new - old)
        deltas = self._expand_deltas(deltas)

        grads = self._target_step_gradients(
            model, deltas, train_cfg.lr, reference_norm
        )
        return AttackPayload(self.targets, grads)

    # ------------------------------------------------------------------

    def _optimise_target(self, start: np.ndarray, popular: np.ndarray) -> np.ndarray:
        vec = start.copy()
        pop_norms = np.linalg.norm(popular, axis=1)
        reference_norm = float(
            _inverse_rank_weights(len(popular)) @ pop_norms
        )
        # Re-anchor: shrink a previously-poisoned embedding back into the
        # popular-norm range so the cosine gradients stay informative.
        cap = self.config.norm_cap_factor * max(reference_norm, _EPS)
        norm = np.linalg.norm(vec)
        if norm > cap:
            vec *= cap / norm
        for _ in range(max(self.config.inner_steps, 1)):
            _, grad = ipe_loss_and_grad(
                vec,
                popular,
                lam=self.config.ipe_lambda,
                metric=self.metric,
                use_weights=self.use_weights,
                use_partition=self.use_partition,
            )
            vec = vec - self.config.inner_lr * grad
        if self.config.ipe_match_norm:
            # Alignment includes magnitude: in MF-FRS an item's popularity
            # largely lives in its embedding norm.
            vec *= reference_norm / max(np.linalg.norm(vec), _EPS)
        return vec
