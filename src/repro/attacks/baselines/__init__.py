"""Baseline targeted model-poisoning attacks (Table I / Table III).

Each baseline supports the paper's fair-comparison mode in which its
required prior knowledge is *masked* (FedRecAttack loses the public
interactions, PipAttack loses the popularity levels) — the setting used
in Table III — as well as the original with-prior mode for reference.
"""

from repro.attacks.baselines.fedattack import FedAttack
from repro.attacks.baselines.fedrecattack import FedRecAttack
from repro.attacks.baselines.interaction import AHum, ARa
from repro.attacks.baselines.pipattack import PipAttack

__all__ = ["FedAttack", "FedRecAttack", "PipAttack", "ARa", "AHum"]
