"""FedRecAttack (Rong et al., ICDE 2022): user embedding approximation
from a public fraction of benign interactions.

The attacker maintains surrogate embeddings for the users whose
interactions it (partially) knows, refits them against the current item
matrix each time it participates, and promotes the target items for the
surrogate users. With the prior knowledge masked — the paper's fair
Table III setting — the "known" interactions are random noise, the
surrogates approximate nobody, and the attack collapses (ER ~ 0).

The surrogate refit warm-starts across rounds (per-client mutable
state), so the cohort path runs :meth:`FedRecAttack._round_payload`
per sampled client and batches only the participation scaling and the
final target-step gradient stack.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackPayload, MaliciousClient
from repro.config import AttackConfig, TrainConfig
from repro.models.base import RecommenderModel
from repro.models.losses import sigmoid
from repro.rng import spawn

__all__ = ["FedRecAttack"]


class FedRecAttack(MaliciousClient):
    """Targeted poisoning via surrogate users fitted on public interactions.

    Parameters
    ----------
    known_interactions:
        One array of item ids per (partially) known benign user. In the
        masked mode the registry passes uniformly random item sets here.
    """

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        known_interactions: list[np.ndarray],
        *,
        embedding_dim: int,
        fit_steps: int = 5,
        fit_lr: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(user_id, targets, config)
        if not known_interactions:
            raise ValueError("FedRecAttack needs at least one known user")
        self.known_interactions = known_interactions
        rng = spawn(seed, "fedrecattack-init", user_id)
        self.surrogate_users = rng.normal(
            scale=0.1, size=(len(known_interactions), embedding_dim)
        )
        self.fit_steps = fit_steps
        self.fit_lr = fit_lr
        self._seed = seed

    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        self._refit_surrogates(model)
        deltas: list[np.ndarray] = []
        for target in self._targets_to_train():
            old = model.item_embeddings[target].copy()
            new = self._promote(model, old)
            deltas.append(new - old)
        deltas = self._expand_deltas(deltas)
        reference_norm = float(
            np.mean(np.linalg.norm(self.surrogate_users, axis=1))
        )
        grads = self._target_step_gradients(
            model, deltas, train_cfg.lr, reference_norm
        )
        return AttackPayload(self.targets, grads)

    # ------------------------------------------------------------------

    def _refit_surrogates(self, model: RecommenderModel) -> None:
        """SGD-fit each surrogate user to its known positive interactions."""
        for row, items in enumerate(self.known_interactions):
            if len(items) == 0:
                continue
            item_vecs = model.item_embeddings[items]
            user = self.surrogate_users[row]
            for _ in range(self.fit_steps):
                user_mat = np.broadcast_to(user, item_vecs.shape).copy()
                logits, cache = model.forward(user_mat, item_vecs)
                dlogits = (sigmoid(logits) - 1.0) / len(logits)
                bundle = model.backward(cache, dlogits)
                user = user - self.fit_lr * bundle.users.sum(axis=0)
            self.surrogate_users[row] = user

    def _promote(self, model: RecommenderModel, start: np.ndarray) -> np.ndarray:
        """Inner-optimise the target embedding to score high for surrogates."""
        vec = start.copy()
        users = self.surrogate_users
        steps = max(self.config.inner_steps, 1)
        reference_norm = float(np.mean(np.linalg.norm(users, axis=1))) + 1e-12
        step_size = self.config.inner_lr * reference_norm / steps
        margin = self.config.promotion_margin
        for _ in range(steps):
            item_vecs = np.broadcast_to(vec, users.shape).copy()
            logits, cache = model.forward(users, item_vecs)
            dlogits = (sigmoid(logits - margin) - 1.0) / len(logits)
            bundle = model.backward(cache, dlogits)
            grad = bundle.items.sum(axis=0)
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm < 1e-12:
                break
            vec = vec - step_size * grad / grad_norm
        return vec
