"""A-ra and A-hum (Rong et al., IJCAI 2022): interaction function poisoning.

Both approximate benign users with randomly initialised embeddings and
poison the *learnable interaction function* of DL-FRS to score the
target items high for those users. A-hum additionally mines "hard"
users — gradient-descending the random embeddings to dislike the target
— and also derives item-embedding gradients from them, which is why it
retains partial effectiveness on MF-FRS (Table III) while A-ra, whose
parameters are null there, does not.

The simulated users come from each client's private per-round RNG
stream, so the cohort path runs :meth:`ARa._round_payload` per sampled
client and batches only the participation scaling and the final
target-step gradient stack.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackPayload, MaliciousClient
from repro.config import AttackConfig, TrainConfig
from repro.models.base import RecommenderModel
from repro.models.losses import sigmoid
from repro.rng import spawn

__all__ = ["ARa", "AHum"]


class ARa(MaliciousClient):
    """A-ra: random user approximation + interaction-function poisoning.

    Both the target item embeddings and the interaction parameters are
    poisoned towards high target scores for the *random* approximated
    users. On MF-FRS the parameter branch is null (no learnable
    interaction function) and the item branch promotes towards
    zero-mean random users — which is why Table III shows A-ra
    ineffective there while reaching 100% ER on DL-FRS.
    """

    #: Whether this attack also uploads target item-embedding gradients.
    poison_items = True
    #: Amplification of the uploaded promotion-loss parameter gradients.
    param_grad_scale = 1.0

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        *,
        embedding_dim: int,
        num_simulated_users: int = 32,
        seed: int = 0,
    ):
        super().__init__(user_id, targets, config)
        self.embedding_dim = embedding_dim
        self.num_simulated_users = num_simulated_users
        self._seed = seed

    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        rng = spawn(self._seed, "ara", self.user_id, round_idx)
        users = self._simulated_users(model, rng)

        param_grads = self._poison_params(model, users, train_cfg.lr)
        if not self.poison_items:
            if not param_grads:
                return None  # MF-FRS: nothing to poison (null parameters).
            empty = np.empty((0, model.embedding_dim))
            return AttackPayload(np.empty(0, dtype=np.int64), empty, param_grads)

        deltas: list[np.ndarray] = []
        for target in self._targets_to_train():
            old = model.item_embeddings[target].copy()
            new = self._promote_item(model, old, users)
            deltas.append(new - old)
        deltas = self._expand_deltas(deltas)
        reference_norm = float(np.mean(np.linalg.norm(users, axis=1)))
        grads = self._target_step_gradients(
            model, deltas, train_cfg.lr, reference_norm
        )
        return AttackPayload(self.targets, grads, param_grads)

    # ------------------------------------------------------------------

    def _simulated_users(
        self, model: RecommenderModel, rng: np.random.Generator
    ) -> np.ndarray:
        """Randomly initialised stand-ins for benign user embeddings."""
        return rng.normal(scale=0.1, size=(self.num_simulated_users, self.embedding_dim))

    def _poison_params(
        self, model: RecommenderModel, users: np.ndarray, server_lr: float
    ) -> list[np.ndarray]:
        """Poisonous interaction-parameter gradients for target promotion.

        Uploads the (amplified) raw gradient of the promotion loss. The
        sigmoid slack makes this self-limiting: once the tower scores
        the targets high for the approximated users the gradients
        vanish, so the poisoning cannot saturate or kill the ReLU tower
        the way unbounded parameter pushes would. MF-FRS has no
        interaction parameters, so this returns an empty list there.
        """
        params = model.interaction_params()
        if not params:
            return []
        margin = self.config.promotion_margin
        totals = [np.zeros_like(p) for p in params]
        for target_vec in model.item_embeddings[self.targets]:
            item_vecs = np.broadcast_to(target_vec, users.shape).copy()
            logits, cache = model.forward(users, item_vecs)
            dlogits = (sigmoid(logits - margin) - 1.0) / len(logits)
            bundle = model.backward(cache, dlogits)
            for total, grad in zip(totals, bundle.params):
                total += grad / len(self.targets)
        return [total * self.param_grad_scale for total in totals]

    def _promote_item(
        self, model: RecommenderModel, start: np.ndarray, users: np.ndarray
    ) -> np.ndarray:
        """Inner-optimise a target item embedding for the simulated users."""
        vec = start.copy()
        steps = max(self.config.inner_steps, 1)
        reference_norm = float(np.mean(np.linalg.norm(users, axis=1))) + 1e-12
        step_size = self.config.inner_lr * reference_norm / steps
        margin = self.config.promotion_margin
        for _ in range(steps):
            item_vecs = np.broadcast_to(vec, users.shape).copy()
            logits, cache = model.forward(users, item_vecs)
            dlogits = (sigmoid(logits - margin) - 1.0) / len(logits)
            bundle = model.backward(cache, dlogits)
            grad = bundle.items.sum(axis=0)
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm < 1e-12:
                break
            vec = vec - step_size * grad / grad_norm
        return vec


class AHum(ARa):
    """A-hum: A-ra plus hard-user mining and item-embedding poisoning."""

    poison_items = True

    def __init__(self, *args, hard_mining_steps: int = 5, hard_mining_lr: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        self.hard_mining_steps = hard_mining_steps
        self.hard_mining_lr = hard_mining_lr

    def _simulated_users(
        self, model: RecommenderModel, rng: np.random.Generator
    ) -> np.ndarray:
        """Mine hard users: descend random embeddings to dislike the target.

        Users who rate the target poorly produce the strongest promotion
        gradients — the original attack's key refinement over A-ra.
        """
        users = super()._simulated_users(model, rng)
        initial_norms = np.linalg.norm(users, axis=1)
        target_vec = model.item_embeddings[self.targets[0]]
        for _ in range(self.hard_mining_steps):
            item_vecs = np.broadcast_to(target_vec, users.shape).copy()
            logits, cache = model.forward(users, item_vecs)
            # Minimise the raw logit: push each user to dislike the target.
            bundle = model.backward(cache, np.ones_like(logits) / len(logits))
            users = users - self.hard_mining_lr * bundle.users
        # Re-normalise: hard mining should change the users' *direction*,
        # not inflate their magnitude (inflated pseudo-users produce
        # oversized poison gradients that destabilise the tower).
        norms = np.linalg.norm(users, axis=1) + 1e-12
        users = users * (initial_norms / norms)[:, None]
        return users
