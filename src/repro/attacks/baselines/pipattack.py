"""PipAttack (Zhang et al., WSDM 2022): popularity-level enhancement.

PipAttack assumes the attacker knows items' popularity levels. It
trains a popularity classifier on the current item embeddings and
poisons the target items towards the "popular" class, plus an explicit
promotion term for the attacker's own (malicious) user embedding.
With the popularity prior masked (random labels — the paper's fair
Table III setting) the classifier learns noise and the popularity
alignment carries no signal.

The classifier warm-starts across rounds and the masked labels differ
per client, so the cohort path runs :meth:`PipAttack._round_payload`
per sampled client and batches only the participation scaling and the
final target-step gradient stack.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackPayload, MaliciousClient
from repro.config import AttackConfig, TrainConfig
from repro.models.base import RecommenderModel
from repro.models.losses import sigmoid
from repro.rng import spawn

__all__ = ["PipAttack"]


class PipAttack(MaliciousClient):
    """Popularity-classifier-guided target promotion.

    Parameters
    ----------
    popularity_labels:
        Binary per-item labels (1 = popular). True top-15% labels in the
        with-prior mode; a random permutation of them in masked mode.
    """

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        popularity_labels: np.ndarray,
        *,
        embedding_dim: int,
        classifier_epochs: int = 20,
        classifier_lr: float = 0.5,
        promotion_weight: float = 0.3,
        seed: int = 0,
    ):
        super().__init__(user_id, targets, config)
        labels = np.asarray(popularity_labels, dtype=np.float64)
        if labels.shape != (num_items,):
            raise ValueError("popularity_labels must have one entry per item")
        self.labels = labels
        self.classifier_epochs = classifier_epochs
        self.classifier_lr = classifier_lr
        self.promotion_weight = promotion_weight
        rng = spawn(seed, "pipattack-init", user_id)
        self.own_embedding = rng.normal(scale=0.1, size=embedding_dim)
        self._weights = np.zeros(embedding_dim)
        self._bias = 0.0

    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        self._fit_classifier(model.item_embeddings)
        deltas: list[np.ndarray] = []
        for target in self._targets_to_train():
            old = model.item_embeddings[target].copy()
            new = self._poison_target(model, old)
            deltas.append(new - old)
        deltas = self._expand_deltas(deltas)
        reference_norm = float(
            np.mean(np.linalg.norm(model.item_embeddings, axis=1))
        )
        grads = self._target_step_gradients(
            model, deltas, train_cfg.lr, reference_norm
        )
        return AttackPayload(self.targets, grads)

    # ------------------------------------------------------------------

    def _fit_classifier(self, item_matrix: np.ndarray) -> None:
        """Logistic-regression popularity estimator on item embeddings."""
        w = self._weights
        b = self._bias
        n = len(item_matrix)
        for _ in range(self.classifier_epochs):
            probs = sigmoid(item_matrix @ w + b)
            error = (probs - self.labels) / n
            w = w - self.classifier_lr * (item_matrix.T @ error)
            b = b - self.classifier_lr * float(error.sum())
        self._weights = w
        self._bias = b

    def _poison_target(self, model: RecommenderModel, start: np.ndarray) -> np.ndarray:
        """Push the target towards the popular class + explicit promotion."""
        vec = start.copy()
        steps = max(self.config.inner_steps, 1)
        reference_norm = (
            float(np.mean(np.linalg.norm(model.item_embeddings, axis=1))) + 1e-12
        )
        step_size = self.config.inner_lr * reference_norm / steps
        margin = self.config.promotion_margin
        for _ in range(steps):
            # Popularity-alignment: ascend log P(popular | vec).
            prob = sigmoid(np.array([vec @ self._weights + self._bias]))[0]
            pop_grad = -(1.0 - prob) * self._weights

            # Explicit promotion for the attacker's own embedding.
            item_vec = vec[None, :]
            logits, cache = model.forward(self.own_embedding[None, :], item_vec)
            dlogits = sigmoid(logits - margin) - 1.0
            bundle = model.backward(cache, dlogits)
            promo_grad = bundle.items[0]

            grad = pop_grad + self.promotion_weight * promo_grad
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm < 1e-12:
                break
            vec = vec - step_size * grad / grad_norm
        return vec
