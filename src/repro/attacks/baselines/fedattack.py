"""FedAttack (Wu et al., KDD 2022): untargeted hard-sampling poisoning.

The paper's related work (Section II) contrasts *targeted* attacks —
its focus — with untargeted ones that only degrade recommendation
quality. FedAttack is the canonical untargeted FRS attack: malicious
clients behave like regular participants but invert their local
training signal by treating the globally hardest samples adversarially
(here realised as sign-flipped local gradients, its strongest form).

Including it lets the harness demonstrate the stealth contrast the
paper draws: targeted PIECK leaves HR intact while FedAttack shows up
directly in recommendation quality.

Because the round is exactly a benign local step with flipped labels,
the cohort path batches whole teams through the same stacked
primitives the benign engine uses (``spawn_batch`` RNG streams,
``sample_local_batches``, ``RecommenderModel.batch_local_step``) — see
:meth:`~repro.attacks.cohort.MaliciousCohort.compute_uploads`.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackPayload, MaliciousClient
from repro.config import AttackConfig, TrainConfig
from repro.datasets.sampling import sample_local_batch
from repro.models.base import RecommenderModel
from repro.models.losses import bce_loss_and_grad
from repro.rng import spawn

__all__ = ["FedAttack"]


class FedAttack(MaliciousClient):
    """Untargeted degradation via inverted local training gradients."""

    def __init__(
        self,
        user_id: int,
        targets: np.ndarray,
        config: AttackConfig,
        num_items: int,
        *,
        embedding_dim: int,
        fake_profile_size: int = 16,
        seed: int = 0,
    ):
        super().__init__(user_id, targets, config)
        self.num_items = num_items
        rng = spawn(seed, "fedattack-init", user_id)
        # A fake user profile: random "interacted" items and embedding.
        size = min(fake_profile_size, num_items)
        self.fake_positives = np.sort(
            rng.choice(num_items, size=size, replace=False)
        )
        self.user_embedding = rng.normal(scale=0.1, size=embedding_dim)
        self._seed = seed

    def _round_payload(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        round_idx: int,
        popular: np.ndarray | None = None,
    ) -> AttackPayload | None:
        rng = spawn(self._seed, "fedattack", self.user_id, round_idx)
        item_ids, labels = sample_local_batch(
            rng, self.fake_positives, self.num_items, train_cfg.negative_ratio
        )
        item_vecs = model.item_embeddings[item_ids]
        logits, cache = model.forward(self.user_embedding, item_vecs)
        # Invert the supervision: hard-sample style label flipping.
        _, dlogits = bce_loss_and_grad(logits, 1.0 - labels)
        bundle = model.backward(cache, dlogits)
        return AttackPayload(item_ids, bundle.items, list(bundle.params))
