"""Popular item mining from embedding changes (Algorithm 1, Section IV-B).

The core observation of the paper: popular items' embeddings undergo
larger and longer-lasting changes during FRS training (Properties 1-2),
so accumulating the per-item L2 change of the received item matrix
across the rounds a client is sampled (Δ-Norm, Eq. 7) ranks popular
items at the top — with no prior knowledge whatsoever.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DeltaNormTracker", "PopularItemMiner"]


class DeltaNormTracker:
    """Accumulates per-item Δ-Norm across successive model observations.

    ``observe`` is called with the item embedding matrix the client
    received this round; the first call initialises the baseline
    (Algorithm 1 line 3) and each later call adds
    ``||v_j^r - v_j^{r-1}||_2`` per item (line 4).
    """

    def __init__(self, num_items: int):
        self.num_items = num_items
        self.accumulated = np.zeros(num_items)
        self.observations = 0
        self._last: np.ndarray | None = None

    @property
    def num_deltas(self) -> int:
        """How many Δ-Norm increments have been accumulated."""
        return max(self.observations - 1, 0)

    def observe(self, item_matrix: np.ndarray) -> None:
        """Record one received item embedding matrix."""
        if item_matrix.shape[0] != self.num_items:
            raise ValueError(
                f"expected {self.num_items} items, got {item_matrix.shape[0]}"
            )
        if self._last is not None:
            self.accumulated += np.linalg.norm(item_matrix - self._last, axis=1)
        self._last = item_matrix.copy()
        self.observations += 1

    def top_items(self, count: int) -> np.ndarray:
        """Item ids with the highest accumulated Δ-Norm, descending."""
        count = min(count, self.num_items)
        order = np.argsort(-self.accumulated, kind="stable")
        return order[:count]


class PopularItemMiner:
    """Algorithm 1: mine the popular set P after R-tilde accumulations.

    The miner is *ready* once it has seen ``mining_rounds + 1`` model
    snapshots (i.e. accumulated ``mining_rounds`` Δ-Norm increments);
    afterwards the mined set is frozen, matching Algorithm 1's
    one-shot output.
    """

    def __init__(self, num_items: int, mining_rounds: int, num_popular: int):
        if mining_rounds < 1:
            raise ValueError("mining_rounds must be >= 1")
        if num_popular < 1:
            raise ValueError("num_popular must be >= 1")
        self.mining_rounds = mining_rounds
        self.num_popular = num_popular
        self._tracker = DeltaNormTracker(num_items)
        self._mined: np.ndarray | None = None

    @property
    def ready(self) -> bool:
        """Whether the popular set has been mined."""
        return self._mined is not None

    def observe(self, item_matrix: np.ndarray) -> None:
        """Feed one received item matrix; freezes P when R-tilde is hit."""
        if self.ready:
            return
        self._tracker.observe(item_matrix)
        if self._tracker.num_deltas >= self.mining_rounds:
            self._mined = self._tracker.top_items(self.num_popular)

    def popular_items(self) -> np.ndarray:
        """The mined popular set P, most-popular-first (by Δ-Norm)."""
        if self._mined is None:
            raise RuntimeError("popular items not mined yet (miner not ready)")
        return self._mined
