"""Popular item mining from embedding changes (Algorithm 1, Section IV-B).

The core observation of the paper: popular items' embeddings undergo
larger and longer-lasting changes during FRS training (Properties 1-2),
so accumulating the per-item L2 change of the received item matrix
across the rounds a client is sampled (Δ-Norm, Eq. 7) ranks popular
items at the top — with no prior knowledge whatsoever.

Two executions of Algorithm 1 live here:

* the per-client objects (:class:`DeltaNormTracker` wrapped by
  :class:`PopularItemMiner`) — the reference implementation, one miner
  per malicious client, fed through ``participate``;
* the team-level :class:`CohortMiner` — struct-of-arrays state (one
  ``(num_clients, num_items)`` accumulator matrix, vectorised
  observation counters) plus a shared per-round observation ledger:
  each round's received item matrix is snapshotted **once** for the
  whole team, ``||v_j^r − v_j^{r'}||`` is computed once per distinct
  previous-observation round ``r'`` and fancy-indexed into every
  sampled client's accumulator row.  Bit-identical to running one
  :class:`DeltaNormTracker` per client (asserted by the property suite
  in ``tests/test_attack_cohort.py``) at O(1) item-matrix copies per
  round instead of O(num_malicious).

Same-round snapshot sharing for the per-client objects is provided by
:class:`RoundSnapshotCache`: trackers observing the same round share
one copy of the item matrix instead of each taking their own.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

__all__ = [
    "DeltaNormTracker",
    "PopularItemMiner",
    "RoundSnapshotCache",
    "CohortMiner",
]


class DeltaNormTracker:
    """Accumulates per-item Δ-Norm across successive model observations.

    ``observe`` is called with the item embedding matrix the client
    received this round; the first call initialises the baseline
    (Algorithm 1 line 3) and each later call adds
    ``||v_j^r - v_j^{r-1}||_2`` per item (line 4).
    """

    def __init__(self, num_items: int):
        self.num_items = num_items
        self.accumulated = np.zeros(num_items)
        self.observations = 0
        self._last: np.ndarray | None = None
        self._order: np.ndarray | None = None

    @property
    def num_deltas(self) -> int:
        """How many Δ-Norm increments have been accumulated."""
        return max(self.observations - 1, 0)

    def observe(
        self, item_matrix: np.ndarray, snapshot: np.ndarray | None = None
    ) -> None:
        """Record one received item embedding matrix.

        ``snapshot`` may carry an already-materialised private copy of
        ``item_matrix`` (same values, safe to retain) so that many
        trackers observing the same round share **one** copy — without
        it every tracker takes its own ``item_matrix.copy()``, which at
        N malicious clients means N redundant ``(num_items, dim)``
        matrices per round (see :class:`RoundSnapshotCache`).
        """
        if item_matrix.shape[0] != self.num_items:
            raise ValueError(
                f"expected {self.num_items} items, got {item_matrix.shape[0]}"
            )
        if self._last is not None:
            # The per-item ||v_j^r - v_j^{r-1}|| vector is the dispatched
            # row_diff_norms kernel (sequential per-row accumulation).
            self.accumulated += kernels.row_diff_norms(item_matrix, self._last)
        self._last = item_matrix.copy() if snapshot is None else snapshot
        self.observations += 1
        self._order = None

    def top_items(self, count: int) -> np.ndarray:
        """Item ids with the highest accumulated Δ-Norm, descending.

        The requested prefix of the descending order is cached between
        observations: repeated calls on a frozen accumulator (e.g.
        analysis code reading a mined ranking every round) do not
        re-sort.  Only the prefix is retained — a full ``(num_items,)``
        permutation per tracker would dwarf the mined set at catalogue
        scale — so a *larger* request after a smaller one re-sorts
        once.
        """
        count = min(count, self.num_items)
        if self._order is None or len(self._order) < count:
            self._order = np.argsort(-self.accumulated, kind="stable")[
                :count
            ].copy()
        return self._order[:count]


class PopularItemMiner:
    """Algorithm 1: mine the popular set P after R-tilde accumulations.

    The miner is *ready* once it has seen ``mining_rounds + 1`` model
    snapshots (i.e. accumulated ``mining_rounds`` Δ-Norm increments);
    afterwards the mined set is frozen, matching Algorithm 1's
    one-shot output.
    """

    def __init__(self, num_items: int, mining_rounds: int, num_popular: int):
        if mining_rounds < 1:
            raise ValueError("mining_rounds must be >= 1")
        if num_popular < 1:
            raise ValueError("num_popular must be >= 1")
        self.num_items = num_items
        self.mining_rounds = mining_rounds
        self.num_popular = num_popular
        self._tracker = DeltaNormTracker(num_items)
        self._mined: np.ndarray | None = None

    @property
    def ready(self) -> bool:
        """Whether the popular set has been mined."""
        return self._mined is not None

    def observe(
        self, item_matrix: np.ndarray, snapshot: np.ndarray | None = None
    ) -> None:
        """Feed one received item matrix; freezes P when R-tilde is hit.

        ``snapshot`` is passed through to the tracker (see
        :meth:`DeltaNormTracker.observe`) so a whole malicious team can
        share one per-round item-matrix copy.
        """
        if self.ready:
            return
        self._tracker.observe(item_matrix, snapshot=snapshot)
        if self._tracker.num_deltas >= self.mining_rounds:
            self._mined = self._tracker.top_items(self.num_popular)

    def popular_items(self) -> np.ndarray:
        """The mined popular set P, most-popular-first (by Δ-Norm)."""
        if self._mined is None:
            raise RuntimeError("popular items not mined yet (miner not ready)")
        return self._mined


class RoundSnapshotCache:
    """One shared item-matrix copy per round for a team of trackers.

    The registry hands every PIECK client of one attacker team the same
    cache; each ``participate`` call fetches the round's shared
    snapshot and passes it into its miner, so N co-sampled miners
    retain one copy instead of N.  Keyed by the round index (the global
    model is frozen within a round, so all same-round observers receive
    identical matrices); earlier rounds' copies stay alive exactly as
    long as some tracker still holds them as its baseline — ordinary
    reference counting, no bookkeeping here.
    """

    def __init__(self):
        self._round: int | None = None
        self._copy: np.ndarray | None = None
        #: Total copies materialised — O(rounds observed), never
        #: O(clients); benchmarks assert this stays flat in team size.
        self.copies = 0

    def get(self, item_matrix: np.ndarray, round_idx: int) -> np.ndarray:
        """The shared private copy of this round's item matrix."""
        if self._round != round_idx:
            self._copy = item_matrix.copy()
            self._round = round_idx
            self.copies += 1
        return self._copy


class CohortMiner:
    """Struct-of-arrays Algorithm 1 for a whole malicious team.

    Mirrors one :class:`DeltaNormTracker` + :class:`PopularItemMiner`
    per client as flat arrays:

    * ``accumulated`` — ``(num_clients, num_items)``; row ``i`` is
      client ``i``'s Δ-Norm accumulator (Eq. 7);
    * ``observations`` / ``last_round`` — per-client observation count
      and the round of the client's previous observation;
    * ``ready`` / ``mined`` — frozen-set flags and the mined popular
      ids (``min(num_popular, num_items)`` wide, mined order).

    The **shared observation ledger** is the pair of dicts
    ``_snapshots`` / ``_refs``: round ``r``'s received item matrix is
    copied once (Algorithm 1 line 3, for every sampled client at once)
    and kept alive only while some still-mining client's last
    observation was round ``r``.  Each ``observe`` computes
    ``||v_j^r − v_j^{r'}||`` (line 4) once per *distinct* previous
    round ``r'`` among the sampled clients and adds the resulting
    vector into every matching accumulator row — the arithmetic is the
    per-client reference's, executed once per distinct input instead
    of once per client.
    """

    def __init__(
        self,
        num_items: int,
        mining_rounds: int,
        num_popular: int,
        num_clients: int,
    ):
        if mining_rounds < 1:
            raise ValueError("mining_rounds must be >= 1")
        if num_popular < 1:
            raise ValueError("num_popular must be >= 1")
        self.num_items = num_items
        self.mining_rounds = mining_rounds
        self.num_popular = min(num_popular, num_items)
        self.accumulated = np.zeros((num_clients, num_items))
        self.observations = np.zeros(num_clients, dtype=np.int64)
        self.last_round = np.full(num_clients, -1, dtype=np.int64)
        self.ready = np.zeros(num_clients, dtype=bool)
        self.mined = np.full((num_clients, self.num_popular), -1, dtype=np.int64)
        self._snapshots: dict[int, np.ndarray] = {}
        self._refs: dict[int, int] = {}
        #: Item-matrix copies taken so far — grows with *rounds*, not
        #: with the team size (the bench's O(1)-copies assertion).
        self.snapshot_copies = 0

    @property
    def all_ready(self) -> bool:
        """Whether every client's popular set is frozen."""
        return bool(self.ready.all())

    def live_snapshots(self) -> int:
        """How many round snapshots the ledger currently retains."""
        return len(self._snapshots)

    def observe(
        self, rows: np.ndarray, item_matrix: np.ndarray, round_idx: int
    ) -> None:
        """Feed this round's item matrix to the sampled clients ``rows``.

        Already-ready rows are skipped (their sets are frozen, exactly
        like :meth:`PopularItemMiner.observe` returning early).
        """
        rows = np.asarray(rows, dtype=np.int64)
        rows = rows[~self.ready[rows]]
        if not len(rows):
            return
        if item_matrix.shape[0] != self.num_items:
            raise ValueError(
                f"expected {self.num_items} items, got {item_matrix.shape[0]}"
            )

        # Algorithm 1 line 4: one Δ-Norm vector per distinct previous
        # observation round, fancy-indexed into every matching row.
        seen_before = rows[self.observations[rows] > 0]
        prev_rounds = self.last_round[seen_before]
        for prev in np.unique(prev_rounds).tolist():
            matching = seen_before[prev_rounds == prev]
            norms = kernels.row_diff_norms(item_matrix, self._snapshots[prev])
            self.accumulated[matching] += norms
            self._refs[prev] -= len(matching)

        self.observations[rows] += 1
        num_deltas = self.observations[rows] - 1
        freezing = rows[num_deltas >= self.mining_rounds]
        staying = rows[num_deltas < self.mining_rounds]

        # Algorithm 1 line 3: one shared baseline copy for every client
        # that still needs a next-round delta.
        if len(staying):
            if round_idx not in self._snapshots:
                self._snapshots[round_idx] = item_matrix.copy()
                self._refs[round_idx] = 0
                self.snapshot_copies += 1
            self._refs[round_idx] += len(staying)
            self.last_round[staying] = round_idx

        if len(freezing):
            order = np.argsort(-self.accumulated[freezing], axis=1, kind="stable")
            self.mined[freezing] = order[:, : self.num_popular]
            self.ready[freezing] = True

        for key in [k for k, refs in self._refs.items() if refs <= 0]:
            del self._snapshots[key]
            del self._refs[key]
