"""Configuration dataclasses shared across the library.

The configuration hierarchy mirrors the structure of the paper's
experiments:

* :class:`DatasetConfig` — which dataset, at what scale (Table VIII);
* :class:`ModelConfig` — MF-FRS or DL-FRS base model (Section III-A);
* :class:`TrainConfig` — federated training loop hyper-parameters;
* :class:`AttackConfig` — attacker knobs shared by all attacks
  (Section III-B, IV);
* :class:`DefenseConfig` — defense knobs (Section V);
* :class:`FaultConfig` — failure-model knobs (client dropout,
  stragglers, payload corruption, server quorum / sanity bounds);
* :class:`AsyncConfig` — asynchronous-federation knobs (traffic
  process, compute/network latency, churn, FedBuff-style buffered
  aggregation with staleness discounting, round deadlines);
* :class:`ShardingConfig` — shared-memory state sharding and the
  multi-process round executor (pure throughput knobs);
* :class:`ExperimentConfig` — one full experiment = all of the above.

All dataclasses are frozen: configs are values, never mutated in place.
Use :func:`dataclasses.replace` to derive variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "DatasetConfig",
    "ModelConfig",
    "TrainConfig",
    "AttackConfig",
    "DefenseConfig",
    "FaultConfig",
    "AsyncConfig",
    "ShardingConfig",
    "ExperimentConfig",
    "replace",
]

#: Re-exported for convenience so callers need not import dataclasses.
replace = dataclasses.replace


@dataclass(frozen=True)
class DatasetConfig:
    """Dataset selection and synthesis parameters.

    ``name`` is one of the calibrated presets (``"ml-100k"``, ``"ml-1m"``,
    ``"az"``) or ``"custom"``. ``scale`` multiplies the preset's user /
    item / interaction counts so the full experiment harness can run
    scaled-down (the paper's qualitative results are scale-invariant).
    """

    name: str = "ml-100k"
    scale: float = 1.0
    #: Zipf-like exponent of the item popularity distribution.
    popularity_exponent: float = 1.0
    #: Minimum number of train interactions per user after the split.
    min_interactions_per_user: int = 3
    seed: int = 0


@dataclass(frozen=True)
class ModelConfig:
    """Base recommender model (Section III-A).

    ``kind`` is ``"mf"`` (matrix factorisation, fixed dot product) or
    ``"ncf"`` (neural collaborative filtering, learnable MLP tower,
    Eq. 1). ``mlp_layers`` lists hidden sizes of the ``L`` MLP layers
    used only by NCF.
    """

    kind: str = "mf"
    embedding_dim: int = 16
    mlp_layers: tuple[int, ...] = (32, 16)
    init_scale: float = 0.1
    seed: int = 0


@dataclass(frozen=True)
class TrainConfig:
    """Federated training hyper-parameters (Section III-A).

    ``negative_ratio`` is the sampling ratio ``q`` of uninteracted to
    interacted items in each client's local dataset. ``client_lr`` is
    the learning rate used by clients to update their private user
    embedding; by default it equals the server learning rate ``lr``
    (the paper's standard consistent-rate setting, supplementary D).
    """

    rounds: int = 200
    users_per_round: int = 256
    lr: float = 0.05
    client_lr: float | None = None
    #: When set, each client draws its own fixed learning rate
    #: log-uniformly from this (low, high) range — the "dynamic
    #: inconsistent rates" scenario of supplementary Table X.
    client_lr_range: tuple[float, float] | None = None
    negative_ratio: int = 1
    loss: str = "bce"  # "bce" or "bpr" (supplementary E)
    eval_every: int = 0  # 0 = evaluate only at the end
    eval_num_negatives: int = 99
    top_k: int = 10
    #: Users scored per block during evaluation. Evaluation streams
    #: over user blocks (peak memory O(block x items) instead of
    #: O(users x items)) with results independent of the block size;
    #: ``None`` picks a memory-bounded default from the catalogue size.
    eval_chunk_users: int | None = None
    #: Kernel backend for the dispatched hot kernels
    #: (:mod:`repro.kernels`): ``"numpy"`` (reference), ``"native"``
    #: (compiled C, bit-identical by contract), or ``None`` to defer to
    #: the ``REPRO_KERNELS`` environment variable.  A pure throughput
    #: knob — results never depend on it, so sweep cache keys exclude
    #: it.  Requesting ``"native"`` without the native toolchain raises
    #: at simulation construction instead of silently falling back.
    kernels: str | None = None

    @property
    def effective_client_lr(self) -> float:
        """Client-side learning rate (defaults to the server rate)."""
        return self.lr if self.client_lr is None else self.client_lr


@dataclass(frozen=True)
class AttackConfig:
    """Attacker knobs shared by all targeted attacks (Sections III-B, IV).

    ``malicious_ratio`` is the proportion of injected malicious users
    (p-tilde in the paper). ``mining_rounds`` is R-tilde in Algorithm 1
    and ``num_popular`` is N, the mined popular set size. The inner
    optimisation (``inner_steps`` / ``inner_lr``) realises the paper's
    "multiple rounds in batches" refinement of the poisonous gradients
    (Section VI-F); the resulting embedding delta is uploaded as a
    gradient scaled by the known server learning rate.

    Execution note: under ``engine="batch"`` the whole malicious team
    runs as one struct-of-arrays
    :class:`~repro.attacks.cohort.MaliciousCohort` — ``mining_rounds``
    then drives the team's shared per-round observation ledger
    (:class:`~repro.attacks.mining.CohortMiner`) rather than one
    Δ-Norm tracker per client, bit-identically.
    """

    name: str = "pieck_uea"
    malicious_ratio: float = 0.05
    num_targets: int = 1
    target_items: tuple[int, ...] | None = None
    mining_rounds: int = 2
    num_popular: int = 10
    inner_steps: int = 3
    inner_lr: float = 1.0
    #: Weight-decay strength lambda in Eq. 8 (PIECK-IPE only).
    ipe_lambda: float = 0.5
    #: L_IPE ablation toggles (Table VI), config-driven so ablation
    #: cells are fully determined by their :class:`ExperimentConfig`
    #: (and hence content-addressable by the sweep cache): the
    #: alignment metric (``"pcos"`` or ``"pkl"``), the inverse-rank
    #: weights kappa, and the P+/P- sign partition of Eq. 8.
    ipe_metric: str = "pcos"
    ipe_use_weights: bool = True
    ipe_use_partition: bool = True
    #: Popular-item batch size per inner UEA step (Section VI-F notes a
    #: default batch size of 5 and round size of 3).
    uea_batch_size: int = 5
    #: Promotion margin: the inner optimisation pushes target logits to
    #: saturate around ``margin + 4`` instead of 4, so the promoted item
    #: clears the personalised top-K threshold of most users.
    promotion_margin: float = 2.0
    #: Adaptive margin (PIECK-UEA): offset the margin by the best score
    #: any mined popular item achieves against the pseudo-users, so the
    #: promotion keeps tracking the growing personalised score scale as
    #: the FRS converges. Needs no prior knowledge — the attacker reads
    #: everything from the received global model.
    adaptive_margin: bool = True
    #: Before each inner optimisation the target embedding is shrunk to
    #: at most this multiple of the popular-item norm scale. Without
    #: re-anchoring, sigmoid saturation freezes the poisoned embedding
    #: in a stale direction while the popular/user direction keeps
    #: rotating during training.
    norm_cap_factor: float = 1.5
    #: PIECK-IPE: also match the target's embedding *norm* to the mined
    #: popular items (in MF-FRS popularity largely lives in the norm, so
    #: cosine-only alignment cannot lift a target into anyone's top-K).
    ipe_match_norm: bool = True
    #: Each uploaded poisonous gradient moves the target at most this
    #: multiple of the popular-norm scale per contributing client. A
    #: bounded step keeps the attack stable when several malicious
    #: clients are sampled into the same round (their uploads sum at the
    #: server), while preserving the count dominance that defeats
    #: robust aggregation (Eq. 11).
    step_norm_factor: float = 1.0
    #: Multi-target strategy: "together" or "one_then_copy" (supp. C).
    multi_target_strategy: str = "one_then_copy"
    #: PIECK-UEA pseudo-user source: "popular" uses the raw mined
    #: popular embeddings (Eq. 10 verbatim, the paper's attack and the
    #: default); "refined" locally trains fake user embeddings anchored
    #: on the mined populars, which stays effective even when heavy
    #: negative sampling decouples item and user geometry (supp. B,
    #: Table VII's q=10 column) — see :mod:`repro.attacks.refinement`.
    uea_pseudo_source: str = "popular"
    #: Number of refined pseudo-users maintained per malicious client.
    uea_refine_count: int = 8
    #: Warm-started BCE steps run against the current global model on
    #: each participation.
    uea_refine_steps: int = 40
    #: Local learning rate of the refinement steps.
    uea_refine_lr: float = 0.5
    #: Negative sampling ratio of the fake local profiles.
    uea_refine_negative_ratio: int = 4
    #: Upper bound on the norm of uploaded poisonous gradients
    #: (0 = unbounded). Used by stealthier baselines.
    grad_clip: float = 0.0
    seed: int = 0


@dataclass(frozen=True)
class DefenseConfig:
    """Defense selection and knobs (Section V).

    ``name`` identifies a server-side robust aggregator
    (``norm_bound``, ``median``, ``trimmed_mean``, ``krum``,
    ``multi_krum``, ``bulyan``), the paper's client-side defense
    (``regularization``), or ``none``. ``beta`` / ``gamma`` are the
    trade-off weights of the Re1 / Re2 terms in Eq. 16; ``num_popular``
    and ``mining_rounds`` configure the benign clients' own popular
    item mining.
    """

    name: str = "none"
    beta: float = 0.5
    gamma: float = 0.5
    num_popular: int = 10
    mining_rounds: int = 2
    #: NormBound clipping threshold; <=0 selects a heuristic default.
    norm_bound: float = 0.0
    #: Assumed malicious fraction for TrimmedMean / MultiKrum / Bulyan.
    assumed_malicious_ratio: float = 0.05
    #: Row-norm clip factor for the coordinated defense's server-side
    #: ItemScaleClip (multiple of the flood-robust median-of-medians
    #: row scale). Containment needs the bound *below* the benign
    #: median: a cold target has almost no benign pushback (Eq. 11),
    #: so any headroom above the benign scale lets poison drift in.
    scale_clip_factor: float = 0.5


@dataclass(frozen=True)
class FaultConfig:
    """Failure-model knobs for the fault-tolerant federation runtime.

    The default instance is the *zero-fault* configuration: no fault is
    ever injected, no quorum is enforced, and the simulation is
    bit-identical to a runtime without the fault layer (asserted by the
    parity suites).  All faults are scheduled by a deterministic
    :class:`~repro.federated.faults.FaultPlan` derived from the run's
    seed with the same spawn discipline as the client RNG streams, so
    the same seed always produces the same fault schedule.

    Per sampled client each round, at most one fault fires:

    * **dropout** (probability ``dropout_rate``) — the client trains
      locally but its upload never reaches the server;
    * **straggler** (probability ``straggler_rate``) — the upload is
      deferred 1..``straggler_max_delay`` rounds and applied *stale*,
      scaled by ``staleness_discount ** delay`` (a FedAsync-style
      polynomial staleness discount);
    * **corruption** (probability ``corruption_rate``) — the upload's
      gradient rows are corrupted in transit per ``corruption_mode``:
      ``"nan"`` / ``"inf"`` overwrite them with non-finite values (the
      server sanity gate rejects these, counted), ``"overscale"``
      multiplies them by ``corruption_scale`` (rejected only when
      ``max_upload_norm`` is set).

    Server-side degradation knobs:

    * ``min_quorum`` — a round aggregates only when at least this many
      uploads survive the sanity gate; otherwise the whole round is
      skipped and counted in ``quorum_failed_rounds`` (0 disables);
    * ``max_upload_norm`` — uploads whose total L2 norm exceeds this
      bound are rejected by the sanity gate (0 disables).  The
      non-finite gate needs no knob: it is always on.
    """

    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    #: Straggler delay is drawn uniformly from {1, ..., max_delay}.
    straggler_max_delay: int = 2
    #: Per-round-of-delay multiplier applied to a stale upload.
    staleness_discount: float = 0.5
    corruption_rate: float = 0.0
    corruption_mode: str = "nan"  # "nan" | "inf" | "overscale"
    corruption_scale: float = 1e6
    min_quorum: int = 0
    max_upload_norm: float = 0.0

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "straggler_rate", "corruption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        total = self.dropout_rate + self.straggler_rate + self.corruption_rate
        if total > 1.0:
            raise ValueError(
                f"fault rates must sum to at most 1.0, got {total}"
            )
        if self.straggler_max_delay < 1:
            raise ValueError("straggler_max_delay must be >= 1")
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError("staleness_discount must be in (0, 1]")
        if self.corruption_mode not in ("nan", "inf", "overscale"):
            raise ValueError(
                f"unknown corruption_mode {self.corruption_mode!r}; "
                f"expected 'nan', 'inf' or 'overscale'"
            )
        if self.min_quorum < 0:
            raise ValueError("min_quorum must be >= 0")
        if self.max_upload_norm < 0:
            raise ValueError("max_upload_norm must be >= 0")

    @property
    def injects_faults(self) -> bool:
        """Whether any fault is ever injected (drives plan creation)."""
        return (
            self.dropout_rate > 0.0
            or self.straggler_rate > 0.0
            or self.corruption_rate > 0.0
        )

    @property
    def enabled(self) -> bool:
        """Whether this config departs from the ideal synchronous run."""
        return (
            self.injects_faults
            or self.min_quorum > 0
            or self.max_upload_norm > 0.0
        )


@dataclass(frozen=True)
class AsyncConfig:
    """Asynchronous-federation knobs for the event-driven engine.

    With ``enabled=False`` (the default) the simulation runs the
    classic synchronous round loop and this config is inert.  With
    ``enabled=True`` the run executes on the event-driven
    :class:`~repro.federated.async_engine.AsyncFederationEngine`:
    client *waves* dispatch on a virtual clock every
    ``round_interval`` time units, each client's upload lands after a
    sampled traffic offset + compute latency + network delay (all
    drawn from ``spawn(seed, "async-plan", wave)`` — the same spawn
    discipline as every other stream, so the whole schedule is a pure
    function of ``(seed, config, wave)``), churned clients never
    upload, and the server aggregates FedBuff-style: a round closes
    when ``buffer_size`` uploads are buffered *or* its deadline
    expires, whichever comes first, with uploads delayed past their
    origin model version scaled by ``staleness_discount ** delay``.

    The *default parameter values are the degenerate configuration*:
    instant traffic, zero latency, zero churn, ``buffer_size=0`` (=
    the full cohort) and ``round_deadline == round_interval``
    reproduce the synchronous batch engine bit for bit — asserted by
    the sync-equivalence suite.  Every parameter here affects results,
    so the whole config enters sweep cache keys.
    """

    enabled: bool = False
    #: Traffic process spreading a wave's uploads over virtual time:
    #: ``"instant"`` (all at dispatch), ``"poisson"`` (exponential
    #: inter-arrival gaps at ``arrival_rate`` clients per time unit),
    #: or ``"trace"`` (offsets cycled from ``trace_offsets``).
    traffic: str = "instant"
    arrival_rate: float = 8.0
    trace_offsets: tuple[float, ...] = ()
    #: Mean of the exponential per-client compute latency (0 = none).
    compute_mean: float = 0.0
    #: Mean of the exponential per-client network delay (0 = none).
    network_mean: float = 0.0
    #: Probability a dispatched client churns mid-round: it trains
    #: locally (private state advances) but its upload is cancelled.
    churn_rate: float = 0.0
    #: FedBuff K — uploads buffered before aggregation fires.  0 means
    #: "the wave cohort size" (i.e. ``min(users_per_round, |U|)``).
    buffer_size: int = 0
    #: Virtual time between client-wave dispatches.
    round_interval: float = 1.0
    #: A round aggregates whatever it has this long after its first
    #: dispatch/arrival, even below ``buffer_size``.
    round_deadline: float = 1.0
    #: Per-version-of-delay multiplier on a stale upload
    #: (``staleness_discount ** delay``, applied in the gradient's own
    #: dtype — the same arithmetic as the fault layer's
    #: :class:`~repro.federated.faults.DeferredUpload`).
    staleness_discount: float = 0.5
    #: Uploads staler than this many versions are dropped (and
    #: counted) instead of applied; 0 = unbounded.
    max_staleness: int = 0

    def __post_init__(self) -> None:
        if self.traffic not in ("instant", "poisson", "trace"):
            raise ValueError(
                f"unknown traffic process {self.traffic!r}; "
                f"expected 'instant', 'poisson' or 'trace'"
            )
        if self.traffic == "trace" and not self.trace_offsets:
            raise ValueError("traffic='trace' needs non-empty trace_offsets")
        if any(offset < 0 for offset in self.trace_offsets):
            raise ValueError("trace_offsets must be >= 0")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")
        if self.compute_mean < 0 or self.network_mean < 0:
            raise ValueError("latency means must be >= 0")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError(
                f"churn_rate must be in [0, 1], got {self.churn_rate}"
            )
        if self.buffer_size < 0:
            raise ValueError("buffer_size must be >= 0")
        if self.round_interval <= 0:
            raise ValueError("round_interval must be > 0")
        if self.round_deadline <= 0:
            raise ValueError("round_deadline must be > 0")
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError("staleness_discount must be in (0, 1]")
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")


@dataclass(frozen=True)
class ShardingConfig:
    """Shared-memory state sharding and the multi-process round executor.

    With ``num_shards=0`` (the default) the simulation keeps the dense
    in-process :class:`~repro.federated.state.ClientStateStore`.  With
    ``num_shards >= 1`` client state lives in a
    :class:`~repro.federated.shards.ShardedStateStore`: ``num_shards``
    contiguous user-id ranges, each backed by named
    ``multiprocessing.shared_memory`` segments (``shared_memory=True``)
    or anonymous private mappings (``shared_memory=False``, usable only
    by fork-inherited children).  ``round_workers >= 2`` additionally
    routes benign round computation through the
    :class:`~repro.federated.batch_engine.ProcessRoundExecutor` — a
    pool of forked worker processes that each attach only their shards.

    Every field here is a *pure throughput knob*: the sharded store and
    the multi-process executor are bit-identical to the dense
    single-process reference (asserted by the parity suites), so — like
    ``train.kernels`` — this whole config is excluded from sweep cache
    keys and from the checkpoint config digest.  A checkpoint written
    by a dense run resumes under a sharded one and vice versa.
    """

    #: Number of contiguous user-range shards; 0 = dense in-process
    #: store (sharding off).
    num_shards: int = 0
    #: Worker processes for the multi-process round executor; 0 or 1 =
    #: compute rounds in-process (sharded store only).
    round_workers: int = 0
    #: Back segments with named POSIX shared memory (attachable by
    #: unrelated processes, survives exec) instead of anonymous
    #: fork-shared mappings.
    shared_memory: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 0:
            raise ValueError("num_shards must be >= 0")
        if self.round_workers < 0:
            raise ValueError("round_workers must be >= 0")
        if self.round_workers >= 2 and self.num_shards == 0:
            raise ValueError(
                "round_workers >= 2 requires a sharded store "
                "(num_shards >= 1)"
            )

    @property
    def enabled(self) -> bool:
        """Whether client state is sharded at all."""
        return self.num_shards >= 1

    @property
    def uses_executor(self) -> bool:
        """Whether rounds run on the multi-process executor."""
        return self.round_workers >= 2

    def resolved_shards(self, num_users: int) -> int:
        """Effective shard count, capped at one user per shard."""
        return max(1, min(self.num_shards, max(1, num_users)))


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete experiment: dataset + model + training + attack + defense."""

    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    attack: AttackConfig | None = None
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    #: Failure model; the default is the zero-fault (ideal synchronous)
    #: configuration, bit-identical to a runtime without the fault
    #: layer.  Fault parameters affect results, so they enter the sweep
    #: cache key (unlike ``train.kernels``).
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Asynchrony model (named ``asynchrony`` because ``async`` is a
    #: keyword); disabled by default.  Like ``faults``, every parameter
    #: affects results and enters the sweep cache key.
    asynchrony: AsyncConfig = field(default_factory=AsyncConfig)
    #: Shared-memory sharding / multi-process execution.  A pure
    #: throughput knob like ``train.kernels``: excluded from sweep
    #: cache keys and the checkpoint config digest because results are
    #: bit-identical whatever its value.
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    seed: int = 0
