"""Minimal MLP substrate with exact forward/backward in NumPy.

This is the learnable-interaction-function building block of DL-FRS
(Eq. 1 in the paper): a stack of ReLU layers followed by a projection
vector ``h``. Gradients are derived by hand and checked against
numerical differentiation in the test suite.

:meth:`MLPTower.forward` is row-wise, so the batch-client engine feeds
it all sampled clients' rows in one flattened call;
:meth:`MLPTower.backward_segmented` is the matching backward pass that
resolves the parameter gradients per client segment (federated clients
upload *per-client* parameter gradients, not one fused sum).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Linear", "MLPTower"]


class Linear:
    """Fully-connected layer ``z = x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, scale: float = 0.1):
        self.weight = rng.normal(scale=scale, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the affine map to a batch ``x`` of shape (n, in_dim)."""
        return x @ self.weight + self.bias

    def backward(
        self, x: np.ndarray, dz: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop through the layer.

        Given the layer input ``x`` and upstream gradient ``dz`` (both
        batched), returns ``(dx, dW, db)``.
        """
        dx = dz @ self.weight.T
        dw = x.T @ dz
        db = dz.sum(axis=0)
        return dx, dw, db


class MLPTower:
    """ReLU MLP stack with a final scalar projection (Eq. 1).

    ``logit = h . relu(W_L ... relu(W_1 x + b_1) ... + b_L)``

    Parameters are exposed as a flat list (``param_list``) in a stable
    order so that federated aggregation can treat them uniformly.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: tuple[int, ...],
        rng: np.random.Generator,
        scale: float = 0.1,
    ):
        self.layers: list[Linear] = []
        prev = input_dim
        for width in hidden_dims:
            self.layers.append(Linear(prev, width, rng, scale))
            prev = width
        self.projection = rng.normal(scale=scale, size=prev)

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------

    def param_list(self) -> list[np.ndarray]:
        """All learnable arrays: W_1, b_1, ..., W_L, b_L, h (live views)."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.append(layer.weight)
            params.append(layer.bias)
        params.append(self.projection)
        return params

    def set_params(self, params: list[np.ndarray]) -> None:
        """Overwrite parameters in place from a matching flat list."""
        expected = self.param_list()
        if len(params) != len(expected):
            raise ValueError(
                f"expected {len(expected)} parameter arrays, got {len(params)}"
            )
        for current, new in zip(expected, params):
            if current.shape != new.shape:
                raise ValueError(
                    f"parameter shape mismatch: {current.shape} vs {new.shape}"
                )
            current[...] = new

    def zero_like_params(self) -> list[np.ndarray]:
        """Zero-filled arrays matching ``param_list`` shapes."""
        return [np.zeros_like(p) for p in self.param_list()]

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Compute logits for a batch ``x`` of shape (n, input_dim).

        Returns ``(logits, cache)`` where ``cache`` holds the
        activations needed by :meth:`backward`.
        """
        cache = [x]
        current = x
        for layer in self.layers:
            current = np.maximum(layer.forward(current), 0.0)
            cache.append(current)
        logits = cache[-1] @ self.projection
        return logits, cache

    def backward(
        self, cache: list[np.ndarray], dlogits: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Backprop from logit gradients to input and parameter gradients.

        Returns ``(dx, param_grads)`` with ``param_grads`` ordered like
        :meth:`param_list`.
        """
        final_act = cache[-1]
        dproj = final_act.T @ dlogits
        dact = np.outer(dlogits, self.projection)

        layer_grads: list[tuple[np.ndarray, np.ndarray]] = []
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            act_out = cache[index + 1]
            act_in = cache[index]
            dz = dact * (act_out > 0.0)
            dact, dw, db = layer.backward(act_in, dz)
            layer_grads.append((dw, db))
        layer_grads.reverse()

        param_grads: list[np.ndarray] = []
        for dw, db in layer_grads:
            param_grads.append(dw)
            param_grads.append(db)
        param_grads.append(dproj)
        return dact, param_grads

    def backward_segmented(
        self,
        cache: list[np.ndarray],
        dlogits: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Backward pass resolving parameter gradients per client segment.

        ``cache``/``dlogits`` come from one flattened :meth:`forward`
        over all clients' stacked rows; segment ``k`` owns rows
        ``starts[k] : starts[k] + lengths[k]``.  The row-wise parts of
        the backward pass (ReLU masking, ``dz @ W.T``) run once over the
        whole stack; only the per-parameter reductions (``x.T @ dz``,
        ``dz.sum(axis=0)``) run per segment, on each segment's exact
        rows, making every per-client gradient bit-identical to
        :meth:`backward` on that client alone.

        Returns ``(dx, param_stacks)`` where ``dx`` covers all rows and
        ``param_stacks`` is ordered like :meth:`param_list` with one
        leading ``(num_segments,)`` axis.
        """
        num_segments = len(starts)
        segs = [
            slice(int(s), int(s) + int(n)) for s, n in zip(starts, lengths)
        ]
        final_act = cache[-1]
        dproj = np.empty((num_segments, len(self.projection)))
        for k, seg in enumerate(segs):
            dproj[k] = final_act[seg].T @ dlogits[seg]
        dact = np.outer(dlogits, self.projection)

        stacks_reversed: list[tuple[np.ndarray, np.ndarray]] = []
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            act_out = cache[index + 1]
            act_in = cache[index]
            dz = dact * (act_out > 0.0)
            dw = np.empty((num_segments,) + layer.weight.shape)
            db = np.empty((num_segments,) + layer.bias.shape)
            for k, seg in enumerate(segs):
                dw[k] = act_in[seg].T @ dz[seg]
                db[k] = dz[seg].sum(axis=0)
            dact = dz @ layer.weight.T
            stacks_reversed.append((dw, db))
        stacks_reversed.reverse()

        param_stacks: list[np.ndarray] = []
        for dw, db in stacks_reversed:
            param_stacks.append(dw)
            param_stacks.append(db)
        param_stacks.append(dproj)
        return dact, param_stacks
