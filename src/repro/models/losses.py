"""Loss functions with analytic gradients w.r.t. model logits.

All models output raw *logits*; predicted scores are ``sigmoid(logit)``
so that scores fall in [0, 1] as the paper's BCE formulation requires
(Eq. 2). Working in logit space gives the numerically stable
log-sum-exp forms below.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

__all__ = [
    "sigmoid",
    "log_sigmoid",
    "bce_loss_and_grad",
    "bce_grad_segmented",
    "bpr_loss_and_grad",
    "bpr_grad_segmented",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Preserves floating input dtypes (reduced-precision logits produce
    reduced-precision probabilities, keeping the whole gradient path —
    and therefore client uploads — at the model's own precision);
    anything else is computed in float64.
    """
    dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    out = np.empty_like(x, dtype=dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))``."""
    return -np.logaddexp(0.0, -x)


def bce_loss_and_grad(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy (Eq. 2) and its gradient w.r.t. logits.

    The mean over the local batch matches the ``1/|D_i|`` factor in the
    paper's per-client loss. Gradient: ``(sigmoid(logit) - label) / n``.
    """
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must have matching shapes")
    n = max(len(logits), 1)
    # BCE(logit, y) = -y*log(sig) - (1-y)*log(1-sig)
    #              = logaddexp(0, logit) - y*logit   (stable form)
    loss = float(np.mean(np.logaddexp(0.0, logits) - labels * logits))
    probs = sigmoid(logits)
    # 0/1 labels cast exactly, keeping reduced-precision logit
    # gradients at their own precision; float64 results unchanged.
    grad = (probs - labels.astype(probs.dtype)) / n
    return loss, grad


def bce_grad_segmented(
    logits: np.ndarray, labels: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """BCE logit gradients for a ragged row-stack of per-client batches.

    ``logits``/``labels`` are flat ``(total_rows,)`` arrays where
    client ``k`` owns a contiguous segment of ``lengths[k]`` rows.
    Every row receives ``(sigmoid(logit) - label) / lengths[k]`` — the
    same value :func:`bce_loss_and_grad` produces for that client's
    scalar batch, because dividing by the identical float64 divisor is
    the identical IEEE operation.  Returns the flat gradient aligned
    with ``logits``.
    """
    probs = sigmoid(logits)
    # Exactly-cast 0/1 labels keep reduced-precision logit gradients at
    # their own precision (int or float64 arrays would promote float32
    # to float64); the per-segment division is the dispatched
    # segment_div kernel, whose divisors are cast the same exact way.
    return kernels.segment_div(probs - labels.astype(probs.dtype), lengths)


def bpr_loss_and_grad(
    pos_logits: np.ndarray, neg_logits: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Bayesian Personalised Ranking loss (supplementary E).

    BPR maximises ``log sigmoid(s_pos - s_neg)`` over paired positive /
    negative items. Returns ``(loss, d/d pos_logits, d/d neg_logits)``.
    """
    if pos_logits.shape != neg_logits.shape:
        raise ValueError("BPR requires paired positives and negatives")
    n = max(len(pos_logits), 1)
    diff = pos_logits - neg_logits
    loss = float(np.mean(np.logaddexp(0.0, -diff)))
    # d/d diff of -log sigmoid(diff) is sigmoid(diff) - 1.
    ddiff = (sigmoid(diff) - 1.0) / n
    return loss, ddiff, -ddiff


def bpr_grad_segmented(
    pos_logits: np.ndarray, neg_logits: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """BPR logit gradients for ragged row-stacks of per-client pairs.

    ``pos_logits``/``neg_logits`` are flat ``(total_pairs,)`` arrays in
    which client ``k`` owns a contiguous segment of ``lengths[k]``
    paired rows.  Each pair receives ``(sigmoid(diff) - 1) /
    lengths[k]`` — the same value :func:`bpr_loss_and_grad` computes
    for that client's pairs alone, because dividing by the identical
    float64 divisor is the identical IEEE operation.  Returns
    ``(d/d pos_logits, d/d neg_logits)`` aligned with the inputs.
    """
    diff = pos_logits - neg_logits
    probs = sigmoid(diff)
    # The per-segment division is the dispatched segment_div kernel,
    # which casts the divisors to the gradient dtype for the same
    # dtype-preservation reason as in :func:`bce_grad_segmented`.
    ddiff = kernels.segment_div(probs - 1.0, lengths)
    return ddiff, -ddiff
