"""Abstract recommender model interface shared by MF-FRS and DL-FRS.

The interface is deliberately low-level: callers pass explicit user
vectors and item vectors, so the same code paths serve

* benign client training (real user embedding, local item batch),
* PIECK-UEA, which substitutes *popular item embeddings* for the
  private user embeddings it cannot see (Eq. 10), and
* evaluation, which scores whole user x item matrices.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import kernels

__all__ = [
    "GradientBundle",
    "BatchStepResult",
    "RecommenderModel",
    "build_model",
    "segment_starts",
    "segment_sums",
]


def segment_starts(lengths: np.ndarray) -> np.ndarray:
    """Row offset of each client's segment in a ragged row-stack.

    The single definition of the CSR-style offset rule used everywhere
    a ragged stack is consumed (NCF's segmented backward, the batch
    engine's upload splicing).
    """
    return np.concatenate(([0], np.cumsum(lengths)[:-1]))


def segment_sums(
    rows: np.ndarray, lengths: np.ndarray, dim: int
) -> np.ndarray:
    """Sum each client's contiguous row segment of a ragged stack.

    Equivalent to ``rows[start_k : start_k + lengths[k]].sum(axis=0)``
    per client, because that is the per-client reduction the loop
    engine performs.  Dispatched through :mod:`repro.kernels`: both
    backends accumulate each segment's rows sequentially in row order
    (NumPy's outer-axis summation order), making each segment's result
    bit-identical to the reference regardless of what surrounds it.
    """
    return kernels.segment_sums(rows, lengths, dim)


@dataclass
class GradientBundle:
    """Gradients from one backward pass through the interaction function.

    ``users`` / ``items`` are per-row gradients w.r.t. the user / item
    vectors fed to ``forward``; ``params`` are gradients of the global
    learnable interaction parameters (empty for MF-FRS, whose dot
    product is fixed — the key fact that defeats A-ra / A-hum there).
    """

    users: np.ndarray
    items: np.ndarray
    params: list[np.ndarray] = field(default_factory=list)


@dataclass
class BatchStepResult:
    """Gradients of one vectorised local step over stacked clients.

    The batch-client engine stacks every sampled participant's local
    batch into one ragged row-stack (client ``k`` owns a contiguous
    segment of ``lengths[k]`` rows); this is the per-client-resolved
    result.  ``user_grads`` is ``(clients, dim)`` (already summed over
    each client's rows), ``item_grads`` is ``(total_rows, dim)``
    row-aligned with the stacked item ids, and ``param_grads`` holds
    one stacked array of shape ``(clients, *param_shape)`` per
    learnable interaction parameter — the same per-client values the
    loop engine uploads one
    :class:`~repro.federated.payload.ClientUpdate` at a time.
    """

    user_grads: np.ndarray
    item_grads: np.ndarray
    param_grads: list[np.ndarray] = field(default_factory=list)


class RecommenderModel(ABC):
    """Base model: item embedding table + interaction function.

    The *global model* of the FRS is exactly this object's state: the
    item embedding matrix, plus (for DL-FRS) the MLP tower parameters.
    User embeddings never live here — they are private to clients
    (Section III-A).
    """

    def __init__(self, num_items: int, embedding_dim: int):
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.item_embeddings = np.zeros((num_items, embedding_dim))

    # ------------------------------------------------------------------
    # Interaction function
    # ------------------------------------------------------------------

    @abstractmethod
    def forward(
        self, user_vecs: np.ndarray, item_vecs: np.ndarray
    ) -> tuple[np.ndarray, Any]:
        """Compute logits for row-aligned user/item vector pairs.

        ``user_vecs`` may be a single (d,) vector broadcast over all
        items, or an (n, d) batch aligned with ``item_vecs`` (n, d).
        Returns ``(logits, cache)``; the predicted score of the paper
        is ``sigmoid(logits)``.
        """

    @abstractmethod
    def backward(self, cache: Any, dlogits: np.ndarray) -> GradientBundle:
        """Backprop logit gradients to user/item/parameter gradients."""

    @abstractmethod
    def score_matrix(self, user_matrix: np.ndarray) -> np.ndarray:
        """Logits for every (user, item) pair: shape (U, num_items)."""

    def score_blocks(self, user_matrix: np.ndarray, block_users: int):
        """Yield ``(lo, hi, scores)`` score blocks over user-row ranges.

        The streaming-evaluation hook: callers that only reduce over
        scores (ranking metrics) iterate blocks of at most
        ``block_users`` rows, keeping peak memory at
        ``O(block x num_items)`` instead of ``O(U x num_items)``.
        Scoring is row-wise in every model, so block boundaries do not
        change any score; the default simply calls
        :meth:`score_matrix` per slice and models with cheaper block
        paths may override it.
        """
        if block_users <= 0:
            raise ValueError("block_users must be positive")
        for lo in range(0, len(user_matrix), block_users):
            hi = min(lo + block_users, len(user_matrix))
            yield lo, hi, self.score_matrix(user_matrix[lo:hi])

    # ------------------------------------------------------------------
    # Global parameter plumbing (item table + interaction parameters)
    # ------------------------------------------------------------------

    def interaction_params(self) -> list[np.ndarray]:
        """Learnable interaction-function parameters (live views)."""
        return []

    # ------------------------------------------------------------------
    # Vectorised batch-client training step
    # ------------------------------------------------------------------

    def batch_local_step(
        self,
        user_vecs: np.ndarray,
        item_vecs: np.ndarray,
        labels: np.ndarray,
        lengths: np.ndarray,
    ) -> BatchStepResult:
        """One BCE local step for a whole stack of clients at once.

        ``user_vecs`` is ``(clients, dim)`` (one private embedding per
        client); ``item_vecs`` ``(total_rows, dim)`` and ``labels``
        ``(total_rows,)`` are the ragged row-stack of every client's
        local batch, client ``k`` owning a contiguous segment of
        ``lengths[k]`` rows.

        The default implementation repeats each user vector over its
        segment and reuses :meth:`forward` / :meth:`backward` on the
        whole stack — one shared code path for every model whose
        interaction function is row-wise (MF's dot product, the MLP
        tower, NCF).  All row-wise arithmetic is bit-identical to the
        per-client loop; per-client reductions (the user-gradient sums)
        run over each client's exact row segment, so the result matches
        the loop engine bit for bit.  Models with learnable interaction
        parameters must override this to resolve ``params`` per client
        (see :class:`~repro.models.ncf.NCFModel`).
        """
        from repro.models.losses import bce_grad_segmented

        if self.interaction_params():
            raise NotImplementedError(
                "models with learnable interaction parameters must "
                "override batch_local_step to resolve per-client "
                "parameter gradients"
            )
        flat_users = np.repeat(user_vecs, lengths, axis=0)
        logits, cache = self.forward(flat_users, item_vecs)
        dlogits = bce_grad_segmented(logits, labels, lengths)
        bundle = self.backward(cache, dlogits)
        user_grads = segment_sums(bundle.users, lengths, user_vecs.shape[1])
        return BatchStepResult(
            user_grads=user_grads, item_grads=bundle.items, param_grads=[]
        )

    def batch_local_step_bpr(
        self,
        user_vecs: np.ndarray,
        pos_item_vecs: np.ndarray,
        neg_item_vecs: np.ndarray,
        lengths: np.ndarray,
    ) -> BatchStepResult:
        """One BPR local step for a whole stack of clients at once.

        ``pos_item_vecs`` / ``neg_item_vecs`` are the ragged row-stacks
        of every client's paired positive / negative item vectors
        (client ``k`` owns ``lengths[k]`` pairs in each).  Runs the two
        row-wise forward passes and the pairwise-loss backward over all
        clients' pairs in one call, with per-client reductions (the
        user-gradient sums) over each client's exact row segments —
        the same arithmetic, in the same order, as
        ``BenignClient._bpr_step`` per client.

        Following the reference BPR protocol, interaction-parameter
        gradients are *not* uploaded (``param_grads`` is empty), so
        this single implementation serves every model; the returned
        ``item_grads`` are the positive rows followed by the negative
        rows, each aligned with its input stack — duplicate-item
        merging is the engine's job, where the item ids live.
        """
        from repro.models.losses import bpr_grad_segmented

        dim = user_vecs.shape[1]
        flat_users = np.repeat(user_vecs, lengths, axis=0)
        pos_logits, pos_cache = self.forward(flat_users, pos_item_vecs)
        neg_logits, neg_cache = self.forward(flat_users, neg_item_vecs)
        dpos, dneg = bpr_grad_segmented(pos_logits, neg_logits, lengths)
        pos_bundle = self.backward(pos_cache, dpos)
        neg_bundle = self.backward(neg_cache, dneg)
        user_grads = segment_sums(
            pos_bundle.users, lengths, dim
        ) + segment_sums(neg_bundle.users, lengths, dim)
        item_grads = np.concatenate([pos_bundle.items, neg_bundle.items], axis=0)
        return BatchStepResult(
            user_grads=user_grads, item_grads=item_grads, param_grads=[]
        )

    def apply_item_update(self, item_ids: np.ndarray, delta: np.ndarray) -> None:
        """Add ``delta`` rows to the given item embeddings in place."""
        np.add.at(self.item_embeddings, item_ids, delta)

    def apply_param_update(self, deltas: list[np.ndarray]) -> None:
        """Add deltas to the interaction parameters in place."""
        params = self.interaction_params()
        if len(deltas) != len(params):
            raise ValueError(
                f"expected {len(params)} parameter deltas, got {len(deltas)}"
            )
        for param, delta in zip(params, deltas):
            param += delta

    def snapshot_items(self) -> np.ndarray:
        """Copy of the item embedding matrix (what a client 'receives')."""
        return self.item_embeddings.copy()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _pair_user_vecs(user_vecs: np.ndarray, item_vecs: np.ndarray) -> np.ndarray:
        """Broadcast a single user vector over an item batch if needed."""
        if user_vecs.ndim == 1:
            return np.broadcast_to(user_vecs, item_vecs.shape)
        if user_vecs.shape != item_vecs.shape:
            raise ValueError(
                f"user batch {user_vecs.shape} does not align with item "
                f"batch {item_vecs.shape}"
            )
        return user_vecs


def build_model(
    kind: str,
    num_items: int,
    embedding_dim: int,
    *,
    mlp_layers: tuple[int, ...] = (32, 16),
    init_scale: float = 0.1,
    seed: int = 0,
) -> RecommenderModel:
    """Factory for the two base models evaluated in the paper."""
    from repro.models.mf import MFModel
    from repro.models.ncf import NCFModel

    if kind == "mf":
        return MFModel(num_items, embedding_dim, init_scale=init_scale, seed=seed)
    if kind == "ncf":
        return NCFModel(
            num_items,
            embedding_dim,
            mlp_layers=mlp_layers,
            init_scale=init_scale,
            seed=seed,
        )
    raise ValueError(f"unknown model kind {kind!r}; expected 'mf' or 'ncf'")
