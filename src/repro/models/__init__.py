"""Recommender models: MF-FRS and DL-FRS with hand-derived gradients.

The paper evaluates two base models (Section III-A):

* **MF-FRS** — matrix factorisation; the interaction function is the
  fixed dot product of user and item embeddings.
* **DL-FRS** — neural collaborative filtering (NCF, Eq. 1); the
  interaction function is a learnable MLP tower whose parameters are
  part of the shared global model.

Both are implemented in pure NumPy with exact analytic gradients
(verified against numerical differentiation in the test suite), since
no deep-learning framework is available offline.
"""

from repro.models.base import GradientBundle, RecommenderModel, build_model
from repro.models.losses import bce_loss_and_grad, bpr_loss_and_grad, sigmoid
from repro.models.mf import MFModel
from repro.models.mlp import Linear, MLPTower
from repro.models.ncf import NCFModel

__all__ = [
    "RecommenderModel",
    "GradientBundle",
    "build_model",
    "MFModel",
    "NCFModel",
    "Linear",
    "MLPTower",
    "sigmoid",
    "bce_loss_and_grad",
    "bpr_loss_and_grad",
]
