"""MF-FRS: matrix factorisation with a fixed dot-product interaction.

``logit(u, v) = u . v`` (the paper's Psi_MF); the predicted score is
``sigmoid(logit)``. The interaction function has no learnable
parameters, which is exactly why interaction-function poisoning
attacks (A-ra / A-hum's parameter branch) are inert against MF-FRS.

Being parameter-free also means MF-FRS needs no override of
:meth:`~repro.models.base.RecommenderModel.batch_local_step`: the base
class's generic row-stacked implementation (einsum dot products are
independent per row) already runs a whole round of clients in one
vectorised pass, bit-identical to the per-client loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.models.base import GradientBundle, RecommenderModel
from repro.rng import spawn

__all__ = ["MFModel"]


class MFModel(RecommenderModel):
    """Matrix-factorisation global model: just the item embedding table."""

    kind = "mf"

    def __init__(
        self,
        num_items: int,
        embedding_dim: int,
        *,
        init_scale: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(num_items, embedding_dim)
        rng = spawn(seed, "mf-init")
        self.item_embeddings = rng.normal(
            scale=init_scale, size=(num_items, embedding_dim)
        )

    def forward(
        self, user_vecs: np.ndarray, item_vecs: np.ndarray
    ) -> tuple[np.ndarray, Any]:
        users = self._pair_user_vecs(user_vecs, item_vecs)
        logits = np.einsum("nd,nd->n", users, item_vecs)
        return logits, (users, item_vecs)

    def backward(self, cache: Any, dlogits: np.ndarray) -> GradientBundle:
        users, items = cache
        dusers = dlogits[:, None] * items
        ditems = dlogits[:, None] * users
        return GradientBundle(users=dusers, items=ditems, params=[])

    def score_matrix(self, user_matrix: np.ndarray) -> np.ndarray:
        return user_matrix @ self.item_embeddings.T

    def init_user_embedding(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        """Draw a fresh private user embedding (client-side init)."""
        return rng.normal(scale=scale, size=self.embedding_dim)
