"""DL-FRS: neural collaborative filtering with a learnable MLP tower.

``logit(u, v) = h . relu(W_L ... relu(W_1 (u ++ v) + b_1) ... + b_L)``
(Eq. 1). The MLP parameters are part of the shared global model and
are trained collaboratively — and therefore poisonable, which is what
makes DL-FRS the softer target in Table III.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.models.base import (
    BatchStepResult,
    GradientBundle,
    RecommenderModel,
    segment_starts,
    segment_sums,
)
from repro.models.losses import bce_grad_segmented
from repro.models.mlp import MLPTower
from repro.rng import spawn

__all__ = ["NCFModel"]


class NCFModel(RecommenderModel):
    """NCF global model: item embedding table + MLP tower parameters."""

    kind = "ncf"

    def __init__(
        self,
        num_items: int,
        embedding_dim: int,
        *,
        mlp_layers: tuple[int, ...] = (32, 16),
        init_scale: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(num_items, embedding_dim)
        rng = spawn(seed, "ncf-init")
        self.item_embeddings = rng.normal(
            scale=init_scale, size=(num_items, embedding_dim)
        )
        self.tower = MLPTower(2 * embedding_dim, mlp_layers, rng, scale=init_scale)

    def interaction_params(self) -> list[np.ndarray]:
        return self.tower.param_list()

    def forward(
        self, user_vecs: np.ndarray, item_vecs: np.ndarray
    ) -> tuple[np.ndarray, Any]:
        users = self._pair_user_vecs(user_vecs, item_vecs)
        x = np.concatenate([users, item_vecs], axis=1)
        logits, cache = self.tower.forward(x)
        return logits, cache

    def backward(self, cache: Any, dlogits: np.ndarray) -> GradientBundle:
        dx, param_grads = self.tower.backward(cache, dlogits)
        d = self.embedding_dim
        return GradientBundle(users=dx[:, :d], items=dx[:, d:], params=param_grads)

    def batch_local_step(
        self,
        user_vecs: np.ndarray,
        item_vecs: np.ndarray,
        labels: np.ndarray,
        lengths: np.ndarray,
    ) -> BatchStepResult:
        """Vectorised local step resolving tower gradients per client.

        Same contract as the base hook; the tower's row-wise forward and
        backward run once over all clients' stacked rows, while the
        per-parameter reductions run on each client's exact row segment
        (see :meth:`MLPTower.backward_segmented`), keeping every
        uploaded gradient bit-identical to the per-client loop.

        One caveat: a *single-row* segment can differ from the scalar
        reference in the last ulp, because BLAS dispatches a lone
        ``(1, k) @ (k, n)`` product to a different kernel than the same
        row inside a large GEMM.  Protocol batches never hit this —
        a local batch holds ``positives * (1 + q)`` rows with ``q >= 1``
        and at least one positive, i.e. always two or more rows.
        """
        dim = self.embedding_dim
        flat_users = np.repeat(user_vecs, lengths, axis=0)
        x = np.concatenate([flat_users, item_vecs], axis=1)
        logits, cache = self.tower.forward(x)
        dlogits = bce_grad_segmented(logits, labels, lengths)
        starts = segment_starts(lengths)
        dx, param_stacks = self.tower.backward_segmented(
            cache, dlogits, starts, lengths
        )
        user_grads = segment_sums(dx[:, :dim], lengths, dim)
        item_grads = dx[:, dim:]
        return BatchStepResult(
            user_grads=user_grads, item_grads=item_grads, param_grads=param_stacks
        )

    def score_matrix(self, user_matrix: np.ndarray) -> np.ndarray:
        num_users = user_matrix.shape[0]
        scores = np.empty((num_users, self.num_items))
        items = self.item_embeddings
        for row in range(num_users):
            user = np.broadcast_to(user_matrix[row], items.shape)
            x = np.concatenate([user, items], axis=1)
            logits, _ = self.tower.forward(x)
            scores[row] = logits
        return scores

    def init_user_embedding(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        """Draw a fresh private user embedding (client-side init)."""
        return rng.normal(scale=scale, size=self.embedding_dim)
