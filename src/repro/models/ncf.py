"""DL-FRS: neural collaborative filtering with a learnable MLP tower.

``logit(u, v) = h . relu(W_L ... relu(W_1 (u ++ v) + b_1) ... + b_L)``
(Eq. 1). The MLP parameters are part of the shared global model and
are trained collaboratively — and therefore poisonable, which is what
makes DL-FRS the softer target in Table III.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.models.base import GradientBundle, RecommenderModel
from repro.models.mlp import MLPTower
from repro.rng import spawn

__all__ = ["NCFModel"]


class NCFModel(RecommenderModel):
    """NCF global model: item embedding table + MLP tower parameters."""

    kind = "ncf"

    def __init__(
        self,
        num_items: int,
        embedding_dim: int,
        *,
        mlp_layers: tuple[int, ...] = (32, 16),
        init_scale: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(num_items, embedding_dim)
        rng = spawn(seed, "ncf-init")
        self.item_embeddings = rng.normal(
            scale=init_scale, size=(num_items, embedding_dim)
        )
        self.tower = MLPTower(2 * embedding_dim, mlp_layers, rng, scale=init_scale)

    def interaction_params(self) -> list[np.ndarray]:
        return self.tower.param_list()

    def forward(
        self, user_vecs: np.ndarray, item_vecs: np.ndarray
    ) -> tuple[np.ndarray, Any]:
        users = self._pair_user_vecs(user_vecs, item_vecs)
        x = np.concatenate([users, item_vecs], axis=1)
        logits, cache = self.tower.forward(x)
        return logits, cache

    def backward(self, cache: Any, dlogits: np.ndarray) -> GradientBundle:
        dx, param_grads = self.tower.backward(cache, dlogits)
        d = self.embedding_dim
        return GradientBundle(users=dx[:, :d], items=dx[:, d:], params=param_grads)

    def score_matrix(self, user_matrix: np.ndarray) -> np.ndarray:
        num_users = user_matrix.shape[0]
        scores = np.empty((num_users, self.num_items))
        items = self.item_embeddings
        for row in range(num_users):
            user = np.broadcast_to(user_matrix[row], items.shape)
            x = np.concatenate([user, items], axis=1)
            logits, _ = self.tower.forward(x)
            scores[row] = logits
        return scores

    def init_user_embedding(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        """Draw a fresh private user embedding (client-side init)."""
        return rng.normal(scale=scale, size=self.embedding_dim)
