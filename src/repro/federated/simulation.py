"""End-to-end federated training simulation with attack/defense hooks.

One :class:`FederatedSimulation` reproduces the full protocol of
Section III: benign clients (one per dataset user), optionally injected
malicious clients (Section III-B), a server with plain-sum or robust
aggregation, and periodic evaluation of attack effectiveness (ER@K)
and recommendation performance (HR@K).

Two execution engines run the identical protocol:

* ``engine="batch"`` (default) — the vectorised
  :class:`~repro.federated.batch_engine.BatchClientEngine`: all sampled
  clients' local steps (BCE or BPR) run as stacked tensor ops and the
  server consumes the round as one dense
  :class:`~repro.federated.update_batch.UpdateBatch` — fused scatter
  when undefended, grouped batched kernels for robust aggregators,
  batched filters and audit otherwise;
* ``engine="loop"`` — the reference implementation: one pure-Python
  ``participate`` call per sampled client, per-item grouped
  aggregation.

Both engines draw from the same per-client RNG streams and perform
bit-identical arithmetic, so trajectories are identical for a given
seed (asserted by the parity suite); the batch engine is simply an
order of magnitude faster at production round sizes.

All benign client state is held by one struct-of-arrays
:class:`~repro.federated.state.ClientStateStore` (dense user-embedding
matrix + CSR interactions), built in vectorised passes and exposed to
per-object code through lazily materialised
:class:`~repro.federated.client.BenignClient` views; evaluation
streams over user blocks so peak memory stays O(block x items)
regardless of the user count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.attacks.base import select_target_items
from repro.attacks.cohort import MaliciousCohort
from repro.attacks.registry import build_malicious_clients, num_malicious_for_ratio
from repro.config import AttackConfig, ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.datasets.loaders import load_dataset
from repro.defenses.registry import build_server_defense, client_regularizer_factory
from repro.federated.async_engine import AsyncFederationEngine, AsyncStats
from repro.federated.audit import ServerAuditLog
from repro.federated.batch_engine import BatchClientEngine, ProcessRoundExecutor
from repro.federated.faults import FaultController, FaultStats
from repro.federated.server import Server
from repro.federated.shards import (
    EmbeddingMatrixView,
    ShardedStateStore,
    shared_memory_available,
)
from repro.federated.state import ClientStateStore, ClientViewList
from repro.metrics.ranking import (
    exposure_counts_at_k,
    exposure_ratio_from_counts,
    hit_counts_at_k,
    hit_ratio_from_counts,
    sample_eval_negatives,
)
from repro.models.base import build_model
from repro.rng import spawn

__all__ = ["EvalRecord", "SimulationResult", "FederatedSimulation"]


@dataclass(frozen=True)
class EvalRecord:
    """One evaluation snapshot during training."""

    round_idx: int
    exposure: float
    hit_ratio: float


@dataclass
class SimulationResult:
    """Final metrics plus the evaluation history of one simulation."""

    exposure: float
    hit_ratio: float
    targets: np.ndarray
    rounds_run: int
    history: list[EvalRecord] = field(default_factory=list)
    item_history: list[np.ndarray] = field(default_factory=list)
    seconds_per_round: float = 0.0
    #: Fault/mitigation accounting of the run — all-zero (and
    #: ``not fault_stats.any_fault``) for an ideal-synchronous run.
    fault_stats: FaultStats = field(default_factory=FaultStats)
    #: Asynchrony accounting — all-zero (``not async_stats.any_async``)
    #: for a synchronous run.
    async_stats: AsyncStats = field(default_factory=AsyncStats)


class FederatedSimulation:
    """Builds and runs one full federated experiment."""

    def __init__(
        self,
        config: ExperimentConfig,
        dataset: InteractionDataset | None = None,
        *,
        audit: bool = False,
        engine: str = "batch",
    ):
        if engine not in ("loop", "batch"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'loop' or 'batch'"
            )
        self.engine = engine
        self.config = config
        # Resolve the kernel backend up front so a missing native
        # toolchain fails at construction, not rounds into a run; every
        # round and evaluation executes inside this backend's dispatch
        # scope.
        self.kernel_backend = kernels.resolve(config.train.kernels)
        self.dataset = dataset if dataset is not None else load_dataset(config.dataset)
        self.model = build_model(
            config.model.kind,
            self.dataset.num_items,
            config.model.embedding_dim,
            mlp_layers=config.model.mlp_layers,
            init_scale=config.model.init_scale,
            seed=config.model.seed,
        )

        attack_cfg = config.attack if config.attack is not None else AttackConfig(
            name="none", malicious_ratio=0.0
        )
        self.attack_cfg = attack_cfg
        self.targets = self._select_targets(attack_cfg)

        regularizer_factory = client_regularizer_factory(
            config.defense, self.dataset.num_items
        )
        # All benign client state lives in one struct-of-arrays store
        # (embedding matrix + CSR interactions), initialised
        # bit-identically to the object-per-user draws; the object API
        # stays available through lazily materialised view clients.
        # With sharding enabled the store splits into per-shard
        # shared-memory segments (row u is bit-identical either way —
        # sharding is a pure throughput/footprint knob).
        sharding = config.sharding
        if sharding.enabled:
            if sharding.shared_memory and not shared_memory_available():
                raise RuntimeError(
                    "sharding.shared_memory=True but /dev/shm is not "
                    "available; set shared_memory=False for the "
                    "anonymous-mmap backend"
                )
            self.state = ShardedStateStore.build(
                self.dataset.train_pos,
                self.dataset.num_items,
                config.model.embedding_dim,
                seed=config.seed,
                init_scale=config.model.init_scale,
                regularizer_factory=regularizer_factory,
                num_shards=sharding.resolved_shards(self.dataset.num_users),
                backend="shm" if sharding.shared_memory else "mmap",
                lr_range=config.train.client_lr_range,
                config_digest=self._config_digest(),
            )
        else:
            self.state = ClientStateStore.build(
                self.dataset.train_pos,
                self.dataset.num_items,
                config.model.embedding_dim,
                seed=config.seed,
                init_scale=config.model.init_scale,
                regularizer_factory=regularizer_factory,
            )
        self.benign_clients = ClientViewList(self.state)

        num_malicious = num_malicious_for_ratio(
            self.dataset.num_users, attack_cfg.malicious_ratio
        )
        self.malicious_clients = build_malicious_clients(
            attack_cfg.name,
            dataset=self.dataset,
            config=attack_cfg,
            targets=self.targets,
            embedding_dim=config.model.embedding_dim,
            num_malicious=num_malicious if attack_cfg.name != "none" else 0,
            first_user_id=self.dataset.num_users,
            seed=config.seed,
        )

        aggregator, update_filter = build_server_defense(config.defense)
        self.audit_log = ServerAuditLog() if audit else None
        self.server = Server(
            self.model,
            config.train.lr,
            aggregator=aggregator,
            update_filter=update_filter,
            audit_log=self.audit_log,
            seed=config.seed,
            min_quorum=config.faults.min_quorum,
            max_upload_norm=config.faults.max_upload_norm,
        )
        # One fault controller per simulation, shared by both engines:
        # its plan is a pure function of (seed, round), its staleness
        # buffer the only cross-round fault state.  A config that
        # injects nothing builds no controller — the ideal-synchronous
        # path stays exactly the pre-fault engine.
        self.fault_controller = (
            FaultController(config.faults, config.seed)
            if config.faults.injects_faults
            else None
        )
        self._eval_negatives = sample_eval_negatives(
            self.dataset, config.train.eval_num_negatives, config.seed
        )
        # Under the batch engine the whole malicious team is driven
        # through one struct-of-arrays MaliciousCohort (vectorised
        # participation counters, shared Δ-Norm observation ledger,
        # stacked uploads); the loop engine keeps the per-object
        # participate calls as the reference implementation.  The
        # cohort adopts the same client objects, so they must not be
        # driven via participate() while a batch simulation runs.
        self.malicious_cohort = (
            MaliciousCohort(self.malicious_clients)
            if engine == "batch" and self.malicious_clients
            else None
        )
        # Multi-process round executor: benign stacks are computed by
        # per-shard worker processes reading the shared segments, and
        # the parent performs the single scatter — bit-identical to the
        # in-process path.  The combination constraints are rejected
        # loudly (never silently degraded): the executor needs the
        # batched wave math and a shared (not copy-on-write) store, and
        # client-side regularizers are mutable per-user Python objects
        # that cannot cross the process boundary.
        if sharding.uses_executor:
            if engine != "batch":
                raise ValueError(
                    "sharding.round_workers >= 2 requires engine='batch' "
                    "(the loop engine has no multi-process counterpart)"
                )
            if config.asynchrony.enabled:
                raise ValueError(
                    "sharding.round_workers >= 2 and asynchrony are "
                    "mutually exclusive: the event loop drives waves "
                    "in-process"
                )
            self.executor = ProcessRoundExecutor(
                self.model,
                config.train,
                config.seed,
                self.state,
                sharding.round_workers,
                kernel_backend=self.kernel_backend,
            )
        else:
            self.executor = None
        self._batch_engine = (
            BatchClientEngine(
                self.model,
                self.server,
                self.benign_clients,
                self.malicious_clients,
                config.train,
                config.seed,
                state=self.state,
                cohort=self.malicious_cohort,
                kernel_backend=self.kernel_backend,
                fault_controller=self.fault_controller,
                executor=self.executor,
            )
            if engine == "batch"
            else None
        )
        # The asynchronous event-driven mode wraps the batch engine
        # (whose per-wave math and RNG streams it reuses verbatim); the
        # reference loop has no async counterpart, and the synchronous
        # fault layer models churn/latency its own way — combining the
        # two would double-apply a failure model, so both are rejected
        # loudly rather than silently composed.
        if config.asynchrony.enabled:
            if engine != "batch":
                raise ValueError(
                    "asynchronous federation requires engine='batch' "
                    "(the event loop reuses the batched wave math)"
                )
            if config.faults.injects_faults:
                raise ValueError(
                    "asynchrony and fault injection are mutually "
                    "exclusive: model churn/latency via AsyncConfig "
                    "(server-side min_quorum / max_upload_norm still "
                    "apply)"
                )
            self._async_engine = AsyncFederationEngine(
                batch_engine=self._batch_engine,
                server=self.server,
                config=config.asynchrony,
                train_cfg=config.train,
                total_users=self.total_users,
                seed=config.seed,
            )
        else:
            self._async_engine = None

    def close(self) -> None:
        """Release round workers and shared-memory segments.

        Idempotent; a no-op for the dense single-process configuration.
        Segments are also reclaimed by a store finalizer at garbage
        collection, but long-lived processes building many simulations
        should close explicitly.
        """
        if self.executor is not None:
            self.executor.close()
        closer = getattr(self.state, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "FederatedSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------

    def _select_targets(self, attack_cfg: AttackConfig) -> np.ndarray:
        if attack_cfg.target_items is not None:
            targets = np.asarray(attack_cfg.target_items, dtype=np.int64)
            if len(targets) == 0:
                raise ValueError("target_items must not be empty")
            return targets
        rng = spawn(self.config.seed, "targets")
        return select_target_items(self.dataset, attack_cfg.num_targets, rng)

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------

    @property
    def total_users(self) -> int:
        """Benign + injected malicious user count (the paper's |U|)."""
        return len(self.benign_clients) + len(self.malicious_clients)

    def run_round(self, round_idx: int) -> None:
        """Execute one communication round (steps 1-4 of Section III-A).

        Under asynchrony one "round" is one *aggregation*: the event
        loop advances — dispatching waves, landing uploads — until
        aggregation ``round_idx`` closes, so evaluation cadence and
        checkpoint boundaries are identical in both modes.
        """
        if self._async_engine is not None:
            self._async_engine.run_round(round_idx)
            return
        sampled = self.server.sample_users(
            self.total_users, self.config.train.users_per_round, round_idx
        )
        if self._batch_engine is not None:
            # The engine scopes the round to its own (identical) backend
            # and keeps the fallback accounting.
            self._batch_engine.run_round(round_idx, sampled)
        else:
            with kernels.use(self.kernel_backend):
                self._run_round_loop(round_idx, sampled)

    def _run_round_loop(self, round_idx: int, sampled: np.ndarray) -> None:
        """Reference per-client round: one ``participate`` call per user.

        Kept as the executable specification the batch engine is tested
        against, bit for bit, by the parity suites.
        """
        updates = []
        num_benign = len(self.benign_clients)
        for user_id in sampled:
            user_id = int(user_id)
            if user_id < num_benign:
                update = self.benign_clients[user_id].participate(
                    self.model, self.config.train, round_idx
                )
            else:
                update = self.malicious_clients[user_id - num_benign].participate(
                    self.model, self.config.train, round_idx
                )
            if update is not None:
                updates.append(update)
        if self.fault_controller is not None:
            updates = self.fault_controller.apply_to_updates(
                updates, [int(u) for u in sampled], round_idx
            )
        self.server.apply_updates(updates)

    def run(
        self,
        rounds: int | None = None,
        *,
        record_item_history: bool = False,
        history_stride: int = 1,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 3,
        resume: bool = True,
    ) -> SimulationResult:
        """Train for ``rounds`` rounds, evaluating per the train config.

        With ``checkpoint_dir`` set, the run writes an atomic versioned
        checkpoint (``checkpoint-r<round>.pkl``) every
        ``checkpoint_every`` rounds, keeps only the newest
        ``checkpoint_keep`` of them (older files are pruned after each
        successful write, so a crash mid-write still leaves the
        previous survivors), and — when ``resume`` is true and one
        exists — picks up from the newest *intact* checkpoint instead
        of round 0: a torn or corrupt file is quarantined and skipped
        in favour of the next-oldest survivor (a legacy rolling
        ``checkpoint.pkl`` is honoured as a final fallback).  The
        resume contract is bit-identity: a run resumed at round ``r``
        produces exactly the model, metrics and fault/async accounting
        of the uninterrupted run (everything per-round is derived
        statelessly from the seed — and under asynchrony the event
        queue travels inside the checkpoint — so restoring the mutable
        state restores the trajectory).  Only ``seconds_per_round`` —
        wall-clock over the rounds this process actually executed — is
        exempt.  The simulation must be constructed from the same
        config, dataset and engine that wrote the checkpoint (enforced
        via a config digest and the target-item set).
        """
        train_cfg = self.config.train
        rounds = train_cfg.rounds if rounds is None else rounds
        if checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        history: list[EvalRecord] = []
        item_history: list[np.ndarray] = []
        start_round = 0
        if checkpoint_dir is not None:
            from repro import persistence

            if resume:
                # Walk the retained checkpoints newest-first: a torn or
                # bit-flipped newest file is quarantined (moved aside)
                # and resume falls back to the next-oldest survivor —
                # one corrupt write never strands the whole run.
                for candidate in persistence.resumable_checkpoints(
                    checkpoint_dir
                ):
                    try:
                        payload = persistence.load_checkpoint(candidate)
                    except persistence.IntegrityError:
                        continue
                    start_round, history, item_history = self.restore_checkpoint(
                        payload
                    )
                    break
        started = time.perf_counter()
        executed = 0
        for round_idx in range(start_round, rounds):
            if record_item_history and round_idx % history_stride == 0:
                item_history.append(self.model.snapshot_items())
            self.run_round(round_idx)
            executed += 1
            if train_cfg.eval_every and (round_idx + 1) % train_cfg.eval_every == 0:
                exposure, hit_ratio = self.evaluate()
                history.append(EvalRecord(round_idx + 1, exposure, hit_ratio))
            if (
                checkpoint_dir is not None
                and checkpoint_every
                and (round_idx + 1) % checkpoint_every == 0
                # Skip the write only when nothing is left to resume:
                # a partial run (rounds below the configured schedule)
                # checkpoints its stopping point so a later run picks
                # up there instead of replaying from the previous
                # boundary.
                and round_idx + 1 < max(rounds, train_cfg.rounds)
            ):
                from repro import persistence

                persistence.save_checkpoint(
                    persistence.checkpoint_path(checkpoint_dir, round_idx + 1),
                    self.checkpoint_payload(round_idx + 1, history, item_history),
                )
                persistence.prune_checkpoints(checkpoint_dir, checkpoint_keep)
        elapsed = time.perf_counter() - started
        if record_item_history:
            item_history.append(self.model.snapshot_items())

        if history and history[-1].round_idx == rounds:
            # The last eval_every checkpoint already scored the final
            # model state; reuse it instead of paying a second full
            # evaluation pass (evaluation is deterministic in the
            # model and eval negatives, so the record is identical).
            exposure, hit_ratio = history[-1].exposure, history[-1].hit_ratio
        else:
            exposure, hit_ratio = self.evaluate()
            history.append(EvalRecord(rounds, exposure, hit_ratio))
        return SimulationResult(
            exposure=exposure,
            hit_ratio=hit_ratio,
            targets=self.targets,
            rounds_run=rounds,
            history=history,
            item_history=item_history,
            seconds_per_round=elapsed / max(executed, 1),
            fault_stats=self.fault_stats(),
            async_stats=self.async_stats(),
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def _config_digest(self) -> str:
        """Content hash binding a checkpoint to its experiment config.

        ``sharding`` is excluded: it is a pure throughput knob with no
        effect on the trajectory, so checkpoints cross-resume between
        dense and sharded (and single- and multi-process) runs.
        """
        record = dataclasses.asdict(self.config)
        record.pop("sharding", None)
        blob = json.dumps(record, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def checkpoint_payload(
        self,
        next_round: int,
        history: list[EvalRecord] | None = None,
        item_history: list[np.ndarray] | None = None,
    ) -> dict:
        """Assemble the full mutable state of the run at a round boundary.

        Everything a resumed process cannot re-derive goes in: global
        model parameters, the client store's private embeddings and
        materialised defense regularizers (their observed state), the
        adversary objects (mining trackers, participation counters —
        pickled as one graph so the cohort keeps adopting the same
        client objects), server/engine counters, the staleness buffer
        and fault counters, and the metric history so far.  Notably
        *absent*: RNG state — every stream is spawned statelessly from
        ``(seed, labels, round)``, so determinism survives the process
        boundary for free.
        """
        engine = self._batch_engine
        return {
            "config_digest": self._config_digest(),
            "engine": self.engine,
            "next_round": int(next_round),
            "targets": self.targets.copy(),
            "model_items": self.model.item_embeddings.copy(),
            "model_params": [p.copy() for p in self.model.interaction_params()],
            "user_embeddings": self.state.snapshot_embeddings(),
            "regularizers": self.state._regularizers,
            "adversary": (self.malicious_clients, self.malicious_cohort),
            # The server's log is the authoritative one: it is the
            # object that records, whether it was attached via
            # ``audit=True`` or assigned to the server directly.
            "audit_log": self.server.audit_log,
            "server_counters": {
                "materialized_rounds": self.server.materialized_rounds,
                "rejected_nonfinite": self.server.rejected_nonfinite,
                "rejected_oversized": self.server.rejected_oversized,
                "quorum_failed_rounds": self.server.quorum_failed_rounds,
                "quorum_dropped_uploads": self.server.quorum_dropped_uploads,
            },
            "engine_counters": {
                "stacked_rounds": engine.stacked_rounds,
                "object_malicious_rounds": engine.object_malicious_rounds,
                "kernel_fallback_rounds": engine.kernel_fallback_rounds,
                "process_rounds": engine.process_rounds,
            }
            if engine is not None
            else None,
            "fault_state": self.fault_controller.state()
            if self.fault_controller is not None
            else None,
            # The async event loop's full state: virtual clock, event
            # heap (in-flight uploads travel inside it), aggregation
            # buffer, version and counters — everything a resumed
            # process cannot re-derive (wave plans and sampling are
            # stateless spawns and need no capture).
            "async_state": self._async_engine.state()
            if self._async_engine is not None
            else None,
            "history": list(history or []),
            "item_history": list(item_history or []),
        }

    def restore_checkpoint(
        self, payload: dict
    ) -> tuple[int, list[EvalRecord], list[np.ndarray]]:
        """Restore a :meth:`checkpoint_payload` into this simulation.

        The simulation must have been constructed exactly like the one
        that checkpointed: same config (hash-checked), same dataset
        (target-set-checked — targets are a function of the dataset's
        popularity profile), same engine.  Returns
        ``(next_round, history, item_history)`` for the training loop.
        """
        if payload["config_digest"] != self._config_digest():
            raise ValueError(
                "checkpoint was written by a different experiment config"
            )
        if payload["engine"] != self.engine:
            raise ValueError(
                f"checkpoint was written by the {payload['engine']!r} engine, "
                f"this simulation runs {self.engine!r}"
            )
        if not np.array_equal(payload["targets"], self.targets):
            raise ValueError(
                "checkpoint target items do not match; was the simulation "
                "built from a different dataset?"
            )
        self.model.item_embeddings[...] = payload["model_items"]
        for param, saved in zip(
            self.model.interaction_params(), payload["model_params"]
        ):
            param[...] = saved
        self.state.load_embeddings(payload["user_embeddings"])
        self.state._regularizers = payload["regularizers"]
        clients, cohort = payload["adversary"]
        self.malicious_clients = clients
        self.malicious_cohort = cohort
        if payload["audit_log"] is not None:
            self.audit_log = payload["audit_log"]
            self.server.audit_log = self.audit_log
        for name, value in payload["server_counters"].items():
            setattr(self.server, name, value)
        engine = self._batch_engine
        if engine is not None:
            engine.malicious_clients = clients
            engine.cohort = cohort
            if payload["engine_counters"] is not None:
                for name, value in payload["engine_counters"].items():
                    setattr(engine, name, value)
        if payload["fault_state"] is not None and self.fault_controller is not None:
            self.fault_controller.restore(payload["fault_state"])
        if payload.get("async_state") is not None:
            if self._async_engine is None:
                raise ValueError(
                    "checkpoint was written by an asynchronous run but "
                    "this simulation's AsyncConfig is disabled"
                )
            self._async_engine.restore(payload["async_state"])
        return (
            payload["next_round"],
            list(payload["history"]),
            list(payload["item_history"]),
        )

    def fault_stats(self) -> FaultStats:
        """Current fault/mitigation accounting (controller + server)."""
        controller = self.fault_controller
        return FaultStats(
            dropped_uploads=controller.dropped_uploads if controller else 0,
            deferred_uploads=controller.deferred_uploads if controller else 0,
            stale_applied=controller.stale_applied if controller else 0,
            stale_pending=controller.buffer.pending if controller else 0,
            corrupted_uploads=controller.corrupted_uploads if controller else 0,
            rejected_nonfinite=self.server.rejected_nonfinite,
            rejected_oversized=self.server.rejected_oversized,
            quorum_failed_rounds=self.server.quorum_failed_rounds,
            quorum_dropped_uploads=self.server.quorum_dropped_uploads,
        )

    def async_stats(self) -> AsyncStats:
        """Current asynchrony accounting (all-zero when synchronous)."""
        if self._async_engine is None:
            return AsyncStats()
        return self._async_engine.stats()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def user_embedding_matrix(self) -> np.ndarray:
        """All benign users' private embeddings, as one read-only matrix.

        For the dense store this is a zero-copy live view: row ``u``
        *is* user ``u``'s embedding and keeps evolving as training
        continues (``.copy()`` to snapshot).  For a sharded store the
        rows live in per-shard segments, so this returns a read-only
        snapshot assembled at call time.  Either way the result is
        read-only so stale callers cannot corrupt client state.
        """
        matrix = getattr(self.state, "user_embeddings", None)
        if matrix is None:
            snapshot = self.state.snapshot_embeddings()
            snapshot.flags.writeable = False
            return snapshot
        view = matrix.view()
        view.flags.writeable = False
        return view

    #: Rough per-user evaluation footprint used to auto-size blocks:
    #: one float64 score row, its masked copy, and the bool train mask.
    _EVAL_BYTES_PER_CELL = 17
    #: Auto-sized evaluation blocks target this peak footprint.
    _EVAL_BLOCK_BYTES = 128 * 2**20

    def _eval_block_users(self) -> int:
        """Users scored per evaluation block (config override or auto)."""
        configured = self.config.train.eval_chunk_users
        if configured is not None:
            if configured <= 0:
                raise ValueError("eval_chunk_users must be positive")
            return configured
        per_user = max(self.dataset.num_items * self._EVAL_BYTES_PER_CELL, 1)
        return max(1, min(self.dataset.num_users, self._EVAL_BLOCK_BYTES // per_user))

    def evaluate(self, k: int | None = None) -> tuple[float, float]:
        """Compute (ER@K, HR@K) over benign users, streaming in blocks.

        Users are scored in blocks of ``train.eval_chunk_users`` (or a
        memory-bounded default): each block contributes integer
        hit/eligibility counts that accumulate into the final ratios,
        so no ``num_users x num_items`` array — scores *or* train mask
        — is ever materialised, and the results are bit-identical to
        the dense single-pass evaluation (scoring and ranking are
        row-wise; the final divisions see the same integer counts).
        """
        k = self.config.train.top_k if k is None else k
        with kernels.use(self.kernel_backend):
            return self._evaluate_scoped(k)

    def _evaluate_scoped(self, k: int) -> tuple[float, float]:
        test_items = self.dataset.test_items
        er_hits = np.zeros(len(self.targets), dtype=np.int64)
        er_eligible = np.zeros(len(self.targets), dtype=np.int64)
        hr_hits = 0
        hr_total = 0
        user_matrix = getattr(self.state, "user_embeddings", None)
        if user_matrix is None:
            # Sharded store: stream blocks straight out of the shard
            # segments (same rows, same block boundaries — scores are
            # bit-identical to the dense pass).
            user_matrix = EmbeddingMatrixView(self.state)
        for lo, hi, scores in self.model.score_blocks(
            user_matrix, self._eval_block_users()
        ):
            train_mask = self.state.train_mask_block(lo, hi)
            hits, eligible = exposure_counts_at_k(
                scores, train_mask, self.targets, k
            )
            er_hits += hits
            er_eligible += eligible
            hits, total = hit_counts_at_k(
                scores, test_items[lo:hi], self._eval_negatives[lo:hi], k
            )
            hr_hits += hits
            hr_total += total
        return (
            exposure_ratio_from_counts(er_hits, er_eligible),
            hit_ratio_from_counts(hr_hits, hr_total),
        )
