"""Gradient payload uploaded by a client each round.

In an FRS a client only uploads gradients for the items in its private
local dataset — the fact at the heart of the paper's defense analysis
(Eq. 11): a cold target item receives benign gradients from almost
nobody, so poisonous gradients dominate no matter how few attackers
there are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ClientUpdate", "clip_scale"]


def clip_scale(
    item_grads: np.ndarray, param_grads: list[np.ndarray], max_norm: float
) -> float | None:
    """Uniform down-scale bringing a whole upload to ``max_norm``.

    ``None`` means the upload is already within bounds (or clipping is
    disabled) and must be passed through untouched.  This is the single
    definition of the clip arithmetic — accumulation order included
    (item block first, then each parameter block left to right) — used
    by both :meth:`ClientUpdate.clipped` and the batched cohort path,
    so the two cannot drift apart bit-wise.
    """
    if max_norm <= 0:
        return None
    total = float(np.sum(item_grads**2))
    total += sum(float(np.sum(grad**2)) for grad in param_grads)
    norm = float(np.sqrt(total))
    if norm <= max_norm:
        return None
    return max_norm / norm


@dataclass
class ClientUpdate:
    """One client's upload for one communication round.

    ``item_ids`` / ``item_grads`` are row-aligned; ``param_grads``
    covers the learnable interaction function (DL-FRS only; empty list
    means the client does not contribute to interaction parameters).
    ``malicious`` is ground-truth bookkeeping used only by analysis
    code, never by the server or defenses.
    """

    user_id: int
    item_ids: np.ndarray
    item_grads: np.ndarray
    param_grads: list[np.ndarray] = field(default_factory=list)
    malicious: bool = False

    def __post_init__(self) -> None:
        self.item_ids = np.asarray(self.item_ids, dtype=np.int64)
        # Floating gradients upload at the model's own precision;
        # anything else is promoted to float64.
        grads = np.asarray(self.item_grads)
        if not np.issubdtype(grads.dtype, np.floating):
            grads = grads.astype(np.float64)
        self.item_grads = grads
        if self.item_grads.ndim != 2 or len(self.item_ids) != len(self.item_grads):
            raise ValueError(
                f"item_grads {self.item_grads.shape} does not align with "
                f"{len(self.item_ids)} item ids"
            )
        if len(np.unique(self.item_ids)) != len(self.item_ids):
            raise ValueError("duplicate item ids in a single update")

    @classmethod
    def trusted(
        cls,
        user_id: int,
        item_ids: np.ndarray,
        item_grads: np.ndarray,
        param_grads: list[np.ndarray],
        malicious: bool,
    ) -> "ClientUpdate":
        """Construct without re-validating already-validated rows.

        For hot paths that slice updates out of an
        :class:`~repro.federated.update_batch.UpdateBatch` whose rows
        passed ``__post_init__`` when first uploaded: the per-client
        duplicate scan is O(n log n) each and dominates wave dispatch
        in the asynchronous engine.  Caller guarantees dtypes and
        alignment.
        """
        update = cls.__new__(cls)
        update.user_id = user_id
        update.item_ids = item_ids
        update.item_grads = item_grads
        update.param_grads = param_grads
        update.malicious = malicious
        return update

    @property
    def total_norm(self) -> float:
        """L2 norm of the full uploaded gradient (items + parameters)."""
        total = float(np.sum(self.item_grads**2))
        total += sum(float(np.sum(g**2)) for g in self.param_grads)
        return float(np.sqrt(total))

    def clipped(self, max_norm: float) -> "ClientUpdate":
        """Copy of this update clipped to a maximum total L2 norm."""
        scale = clip_scale(self.item_grads, self.param_grads, max_norm)
        if scale is None:
            return self
        return ClientUpdate(
            user_id=self.user_id,
            item_ids=self.item_ids.copy(),
            item_grads=self.item_grads * scale,
            param_grads=[g * scale for g in self.param_grads],
            malicious=self.malicious,
        )
