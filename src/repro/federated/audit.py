"""Server-side audit log: per-item contribution statistics per round.

The defense analysis of Section V-A is a statement about *counts*: for
a cold target item the poisonous gradients outnumber the benign ones
(Eq. 11), which is why count-based robust aggregation cannot hold. The
audit log records exactly the quantities that statement is about — per
item and per round, how many clients contributed a gradient and with
what mass — so the theory can be checked against a live simulation
(see :mod:`repro.analysis.audit` and ``examples/defense_audit.py``).

The ``malicious`` flag on :class:`~repro.federated.payload.ClientUpdate`
is ground-truth bookkeeping available to analysis code only; a real
server cannot see it, and no defense in :mod:`repro.defenses` reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.federated.payload import ClientUpdate
from repro.federated.update_batch import UpdateBatch

__all__ = ["ItemRoundRecord", "ServerAuditLog"]


@dataclass(frozen=True)
class ItemRoundRecord:
    """Contribution statistics for one item in one round."""

    round_idx: int
    item_id: int
    benign_count: int
    malicious_count: int
    benign_norm: float
    malicious_norm: float

    @property
    def total_count(self) -> int:
        """Number of clients that uploaded a gradient for this item."""
        return self.benign_count + self.malicious_count

    @property
    def poison_count_share(self) -> float:
        """Fraction of this item's gradients that are poisonous.

        The empirical counterpart of Eq. 11's expected proportion.
        """
        total = self.total_count
        return self.malicious_count / total if total else 0.0

    @property
    def poison_mass_share(self) -> float:
        """Fraction of this item's gradient L2 mass that is poisonous."""
        total = self.benign_norm + self.malicious_norm
        return self.malicious_norm / total if total else 0.0


@dataclass
class ServerAuditLog:
    """Accumulates :class:`ItemRoundRecord` rows across training rounds.

    Attach to a :class:`repro.federated.server.Server` via its
    ``audit_log`` argument; the server calls :meth:`record` with the
    raw uploads of every round (before any defense filter runs, so the
    log reflects what the attacker actually sent).
    """

    records: list[ItemRoundRecord] = field(default_factory=list)
    _round_idx: int = 0

    def record(self, updates: Sequence[ClientUpdate]) -> None:
        """Append one round's per-item contribution statistics."""
        benign_counts: dict[int, int] = {}
        malicious_counts: dict[int, int] = {}
        benign_norms: dict[int, float] = {}
        malicious_norms: dict[int, float] = {}
        for update in updates:
            counts = malicious_counts if update.malicious else benign_counts
            norms = malicious_norms if update.malicious else benign_norms
            row_norms = np.linalg.norm(update.item_grads, axis=1)
            for item_id, norm in zip(update.item_ids, row_norms):
                item_id = int(item_id)
                counts[item_id] = counts.get(item_id, 0) + 1
                norms[item_id] = norms.get(item_id, 0.0) + float(norm)
        for item_id in sorted(set(benign_counts) | set(malicious_counts)):
            self.records.append(
                ItemRoundRecord(
                    round_idx=self._round_idx,
                    item_id=item_id,
                    benign_count=benign_counts.get(item_id, 0),
                    malicious_count=malicious_counts.get(item_id, 0),
                    benign_norm=benign_norms.get(item_id, 0.0),
                    malicious_norm=malicious_norms.get(item_id, 0.0),
                )
            )
        self._round_idx += 1

    def record_batch(self, batch: UpdateBatch) -> None:
        """Append one round's statistics from a dense update batch.

        Produces records identical to :meth:`record` on the equivalent
        materialised updates: row norms are a row-wise reduction (the
        same values either way), and ``np.bincount`` accumulates its
        weights sequentially in row order — the upload order the
        reference path's dict accumulation follows — so every norm sum
        is bit-identical.
        """
        if len(batch.item_ids) == 0:
            self._round_idx += 1
            return
        row_mal = np.repeat(batch.malicious, batch.lengths)
        row_norms = np.linalg.norm(batch.item_grads, axis=1)
        unique_ids, inverse = np.unique(batch.item_ids, return_inverse=True)
        bins = len(unique_ids)
        benign_counts = np.bincount(inverse[~row_mal], minlength=bins)
        mal_counts = np.bincount(inverse[row_mal], minlength=bins)
        benign_norms = np.bincount(
            inverse[~row_mal], weights=row_norms[~row_mal], minlength=bins
        )
        mal_norms = np.bincount(
            inverse[row_mal], weights=row_norms[row_mal], minlength=bins
        )
        for i, item_id in enumerate(unique_ids):
            self.records.append(
                ItemRoundRecord(
                    round_idx=self._round_idx,
                    item_id=int(item_id),
                    benign_count=int(benign_counts[i]),
                    malicious_count=int(mal_counts[i]),
                    benign_norm=float(benign_norms[i]),
                    malicious_norm=float(mal_norms[i]),
                )
            )
        self._round_idx += 1

    @property
    def rounds_recorded(self) -> int:
        """Number of rounds the log has seen."""
        return self._round_idx

    def for_item(self, item_id: int) -> list[ItemRoundRecord]:
        """All records of one item, in round order."""
        return [r for r in self.records if r.item_id == item_id]

    def poisoned_items(self) -> np.ndarray:
        """Item ids that received at least one malicious gradient."""
        ids = {r.item_id for r in self.records if r.malicious_count > 0}
        return np.array(sorted(ids), dtype=np.int64)
