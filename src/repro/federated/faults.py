"""Deterministic fault injection for the federation runtime.

The paper's threat model assumes an ideally synchronous federation:
every sampled client trains, uploads, and is aggregated, every round.
Real federated recommenders see client dropout, stragglers whose
uploads arrive rounds late, and corrupted payloads.  This module makes
that failure model a first-class, *deterministic* layer:

* :class:`FaultPlan` — the seeded per-round fault schedule.  Faults
  are drawn from ``spawn(seed, "fault-plan", round_idx)`` — the same
  spawn discipline as every client RNG stream — so the schedule is a
  pure function of ``(seed, FaultConfig, round_idx, round size)``:
  same seed, same faults, independent of execution engine, kernel
  backend, wall-clock or checkpoint/resume boundaries.
* :class:`StalenessBuffer` — holds deferred (straggler) uploads until
  their arrival round and splices them into later rounds' aggregation,
  scaled by a FedAsync-style ``staleness_discount ** delay`` factor.
* :class:`FaultController` — applies one round's scheduled faults to
  the round's uploads, on *either* engine: the batch engine hands it
  the assembled :class:`~repro.federated.update_batch.UpdateBatch`,
  the reference loop engine its ``ClientUpdate`` list.  Both paths
  share the per-client fault assignment and the scaling arithmetic, so
  they stay bit-identical under faults exactly as they are without
  (asserted by the fault parity suite).
* :class:`FaultStats` — the full accounting surfaced on
  :class:`~repro.federated.simulation.SimulationResult`.  Nothing is
  ever dropped silently: every injected fault, every stale splice,
  every server-side rejection and every quorum-skipped round is
  counted.

Semantics of each fault (shared by both engines):

* **dropout** — the client trains locally (its private user embedding
  advances) but the upload never reaches the server, exactly like a
  connection lost after download but before upload;
* **straggler** — local training happens on time, the upload arrives
  ``delay`` rounds late and is applied with the staleness discount;
  uploads still in flight when the run ends are counted as pending;
* **corruption** — the gradient rows are corrupted in transit
  (non-finite values or an ``overscale`` blow-up); the client's local
  state is untouched.  Non-finite corruption is caught by the server
  sanity gate (:class:`~repro.federated.server.Server`), making the
  injection → rejection path fully counted end to end.

The zero-fault configuration never constructs a controller at all, so
the fault layer costs the ideal-synchronous path nothing (enforced by
``benchmarks/bench_fault_tolerance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.config import FaultConfig
from repro.federated.payload import ClientUpdate
from repro.federated.update_batch import UpdateBatch
from repro.rng import spawn

__all__ = [
    "FAULT_NONE",
    "FAULT_DROPOUT",
    "FAULT_STRAGGLER",
    "FAULT_CORRUPTION",
    "RoundFaults",
    "FaultPlan",
    "DeferredUpload",
    "StalenessBuffer",
    "FaultController",
    "FaultStats",
]

#: Per-position fault kinds in a :class:`RoundFaults` schedule.
FAULT_NONE = 0
FAULT_DROPOUT = 1
FAULT_STRAGGLER = 2
FAULT_CORRUPTION = 3


@dataclass(frozen=True)
class RoundFaults:
    """One round's fault assignment, aligned with the sampled users.

    ``kinds[p]`` is the fault of the client at sampled position ``p``
    (one of the ``FAULT_*`` constants); ``delays[p]`` is the straggler
    delay in rounds (0 for every non-straggler position).
    """

    kinds: np.ndarray  # (sampled,) int8
    delays: np.ndarray  # (sampled,) int64

    @property
    def any_fault(self) -> bool:
        return bool((self.kinds != FAULT_NONE).any())


class FaultPlan:
    """Deterministic per-round fault schedule derived from the run seed.

    ``round_faults(round_idx, num_sampled)`` is a pure function: it
    spawns ``spawn(seed, "fault-plan", round_idx)``, draws one uniform
    per sampled position, and bands it into dropout / straggler /
    corruption per the configured rates (straggler delays come from
    the same stream).  No state survives between rounds, which is what
    makes checkpoint/resume trivially exact: re-asking for round ``r``
    after a resume yields the identical schedule.
    """

    def __init__(self, config: FaultConfig, seed: int):
        self.config = config
        self.seed = seed

    def round_faults(self, round_idx: int, num_sampled: int) -> RoundFaults:
        cfg = self.config
        kinds = np.zeros(num_sampled, dtype=np.int8)
        delays = np.zeros(num_sampled, dtype=np.int64)
        if num_sampled == 0 or not cfg.injects_faults:
            return RoundFaults(kinds, delays)
        rng = spawn(self.seed, "fault-plan", round_idx)
        draws = rng.random(num_sampled)
        drop_edge = cfg.dropout_rate
        straggle_edge = drop_edge + cfg.straggler_rate
        corrupt_edge = straggle_edge + cfg.corruption_rate
        kinds[draws < corrupt_edge] = FAULT_CORRUPTION
        kinds[draws < straggle_edge] = FAULT_STRAGGLER
        kinds[draws < drop_edge] = FAULT_DROPOUT
        stragglers = np.flatnonzero(kinds == FAULT_STRAGGLER)
        if len(stragglers):
            delays[stragglers] = rng.integers(
                1, cfg.straggler_max_delay + 1, size=len(stragglers)
            )
        return RoundFaults(kinds, delays)


@dataclass
class DeferredUpload:
    """One straggler's upload, parked until its arrival round.

    Arrays are private copies (the batch engine reuses round stacks'
    lifetimes); ``discount`` is the staleness factor already resolved
    at defer time (``staleness_discount ** delay``), applied to the
    gradients at splice time in the gradient's own dtype.
    """

    user_id: int
    item_ids: np.ndarray
    item_grads: np.ndarray
    param_grads: list[np.ndarray]
    malicious: bool
    discount: float
    origin_round: int

    def discounted_grads(self) -> np.ndarray:
        """Gradient rows scaled by the staleness discount.

        The scalar is cast to the gradient dtype first so
        reduced-precision uploads stay at their own precision — the
        same rule the cohort path uses for participation scales.
        """
        return self.item_grads * self.item_grads.dtype.type(self.discount)

    def discounted_params(self) -> list[np.ndarray]:
        return [
            grad * grad.dtype.type(self.discount) for grad in self.param_grads
        ]


class StalenessBuffer:
    """Holds deferred uploads keyed by their arrival round.

    FIFO per arrival round (insertion order is the deterministic
    sampled-position order of the origin round), so splice order — and
    therefore every downstream float accumulation — is reproducible.
    """

    def __init__(self):
        self._due: dict[int, list[DeferredUpload]] = {}

    def defer(self, due_round: int, upload: DeferredUpload) -> None:
        self._due.setdefault(due_round, []).append(upload)

    def pop_due(self, round_idx: int) -> list[DeferredUpload]:
        """All uploads arriving at ``round_idx``, in deferral order."""
        return self._due.pop(round_idx, [])

    @property
    def pending(self) -> int:
        """Uploads still in flight."""
        return sum(len(entries) for entries in self._due.values())

    # -- checkpoint plumbing -------------------------------------------

    def state(self) -> dict[int, list[DeferredUpload]]:
        """The raw buffer contents (checkpoint capture)."""
        return self._due

    def restore(self, state: dict[int, list[DeferredUpload]]) -> None:
        self._due = state


@dataclass(frozen=True)
class FaultStats:
    """Fault/mitigation accounting of one simulation run.

    Injection counters come from the :class:`FaultController`
    (dropped / deferred / corrupted uploads, stale splices), server
    counters from the :class:`~repro.federated.server.Server` sanity
    gate and quorum check.  ``stale_pending`` counts stragglers whose
    uploads were still in flight when the run ended.
    """

    dropped_uploads: int = 0
    deferred_uploads: int = 0
    stale_applied: int = 0
    stale_pending: int = 0
    corrupted_uploads: int = 0
    rejected_nonfinite: int = 0
    rejected_oversized: int = 0
    quorum_failed_rounds: int = 0
    quorum_dropped_uploads: int = 0

    @property
    def rejected_uploads(self) -> int:
        """Total uploads rejected by the server sanity gate."""
        return self.rejected_nonfinite + self.rejected_oversized

    @property
    def any_fault(self) -> bool:
        return any(
            (
                self.dropped_uploads,
                self.deferred_uploads,
                self.stale_applied,
                self.stale_pending,
                self.corrupted_uploads,
                self.rejected_nonfinite,
                self.rejected_oversized,
                self.quorum_failed_rounds,
                self.quorum_dropped_uploads,
            )
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "dropped_uploads": self.dropped_uploads,
            "deferred_uploads": self.deferred_uploads,
            "stale_applied": self.stale_applied,
            "stale_pending": self.stale_pending,
            "corrupted_uploads": self.corrupted_uploads,
            "rejected_nonfinite": self.rejected_nonfinite,
            "rejected_oversized": self.rejected_oversized,
            "quorum_failed_rounds": self.quorum_failed_rounds,
            "quorum_dropped_uploads": self.quorum_dropped_uploads,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, int]) -> "FaultStats":
        return cls(**{k: int(payload.get(k, 0)) for k in cls.__dataclass_fields__})


class FaultController:
    """Applies one round's scheduled faults to the round's uploads.

    One controller per simulation; it owns the :class:`FaultPlan`, the
    :class:`StalenessBuffer` and the injection counters.  The fault of
    a sampled client is keyed by its *user id* (sampled positions and
    upload entries both carry global user ids, on both engines), so
    clients that upload nothing this round — e.g. a PIECK miner still
    accumulating observations — consume their scheduled fault as a
    no-op on both engines identically.

    A round in which no scheduled fault fires and no stale upload
    arrives returns its input unchanged (the same object, zero copies)
    — the zero-fault plan is bit-identical to no controller at all.
    """

    def __init__(self, config: FaultConfig, seed: int):
        self.config = config
        self.plan = FaultPlan(config, seed)
        self.buffer = StalenessBuffer()
        self.dropped_uploads = 0
        self.deferred_uploads = 0
        self.stale_applied = 0
        self.corrupted_uploads = 0

    # ------------------------------------------------------------------
    # Batch-engine path
    # ------------------------------------------------------------------

    def apply_to_batch(
        self, batch: UpdateBatch, sampled: Sequence[int], round_idx: int
    ) -> UpdateBatch:
        """Faulted view of one round's :class:`UpdateBatch`.

        Uploads of dropped clients vanish, stragglers' are moved into
        the staleness buffer, corrupted clients' gradient rows are
        overwritten in a fresh array (inputs are never mutated — the
        batch may hold views of the engine's round stacks), and stale
        uploads due this round are appended after the round's own
        uploads in deferral order.
        """
        faults = self.plan.round_faults(round_idx, len(sampled))
        arrivals = self.buffer.pop_due(round_idx)
        if not faults.any_fault and not arrivals:
            return batch

        kind_by_user = {
            int(user): (int(kind), int(delay))
            for user, kind, delay in zip(sampled, faults.kinds, faults.delays)
            if kind != FAULT_NONE
        }
        keep = np.ones(batch.num_clients, dtype=bool)
        corrupt_positions: list[int] = []
        starts = batch.starts
        param_row = {int(owner): j for j, owner in enumerate(batch.param_owners)}
        for pos in range(batch.num_clients):
            kind, delay = kind_by_user.get(int(batch.user_ids[pos]), (FAULT_NONE, 0))
            if kind == FAULT_NONE:
                continue
            if kind == FAULT_DROPOUT:
                keep[pos] = False
                self.dropped_uploads += 1
            elif kind == FAULT_STRAGGLER:
                keep[pos] = False
                seg = slice(
                    int(starts[pos]), int(starts[pos]) + int(batch.lengths[pos])
                )
                params = (
                    [stack[param_row[pos]].copy() for stack in batch.param_stacks]
                    if pos in param_row
                    else []
                )
                self.buffer.defer(
                    round_idx + delay,
                    DeferredUpload(
                        user_id=int(batch.user_ids[pos]),
                        item_ids=batch.item_ids[seg].copy(),
                        item_grads=batch.item_grads[seg].copy(),
                        param_grads=params,
                        malicious=bool(batch.malicious[pos]),
                        discount=self.config.staleness_discount**delay,
                        origin_round=round_idx,
                    ),
                )
                self.deferred_uploads += 1
            else:  # FAULT_CORRUPTION
                corrupt_positions.append(pos)
                self.corrupted_uploads += 1

        if corrupt_positions:
            item_grads = batch.item_grads.copy()
            for pos in corrupt_positions:
                seg = slice(
                    int(starts[pos]), int(starts[pos]) + int(batch.lengths[pos])
                )
                item_grads[seg] = self._corrupt_rows(item_grads[seg])
            batch = batch.with_item_grads(item_grads)
        if not keep.all():
            batch = batch.select_clients(keep)
        if arrivals:
            batch = self._splice_arrivals(batch, arrivals)
            self.stale_applied += len(arrivals)
        return batch

    def _splice_arrivals(
        self, batch: UpdateBatch, arrivals: list[DeferredUpload]
    ) -> UpdateBatch:
        """Append stale uploads after the round's own uploads."""
        user_ids = [batch.user_ids]
        item_ids = [batch.item_ids]
        item_grads = [batch.item_grads]
        lengths = [batch.lengths]
        malicious = [batch.malicious]
        num_params = len(batch.param_stacks) or max(
            (len(a.param_grads) for a in arrivals), default=0
        )
        param_chunks: list[list[np.ndarray]] = [
            [batch.param_stacks[i]] if batch.param_stacks else []
            for i in range(num_params)
        ]
        owner_chunks = [batch.param_owners]
        next_pos = batch.num_clients
        for arrival in arrivals:
            user_ids.append(np.array([arrival.user_id], dtype=np.int64))
            item_ids.append(arrival.item_ids)
            item_grads.append(arrival.discounted_grads())
            lengths.append(np.array([len(arrival.item_ids)], dtype=np.int64))
            malicious.append(np.array([arrival.malicious], dtype=bool))
            if arrival.param_grads:
                owner_chunks.append(np.array([next_pos], dtype=np.int64))
                for index, grad in enumerate(arrival.discounted_params()):
                    param_chunks[index].append(grad[None])
            next_pos += 1
        param_stacks = [np.concatenate(chunks) for chunks in param_chunks if chunks]
        return UpdateBatch(
            user_ids=np.concatenate(user_ids),
            item_ids=np.concatenate(item_ids),
            item_grads=np.concatenate(item_grads, axis=0),
            lengths=np.concatenate(lengths),
            param_stacks=param_stacks,
            param_owners=np.concatenate(owner_chunks),
            malicious=np.concatenate(malicious),
        )

    # ------------------------------------------------------------------
    # Loop-engine path
    # ------------------------------------------------------------------

    def apply_to_updates(
        self,
        updates: list[ClientUpdate],
        sampled: Sequence[int],
        round_idx: int,
    ) -> list[ClientUpdate]:
        """Faulted view of one round's materialised uploads.

        Mirrors :meth:`apply_to_batch` on the reference path: the same
        per-user fault assignment, the same corruption values, the
        same splice order, the same discount arithmetic — so the two
        engines stay bit-identical under any fault schedule.
        """
        faults = self.plan.round_faults(round_idx, len(sampled))
        arrivals = self.buffer.pop_due(round_idx)
        if not faults.any_fault and not arrivals:
            return updates

        kind_by_user = {
            int(user): (int(kind), int(delay))
            for user, kind, delay in zip(sampled, faults.kinds, faults.delays)
            if kind != FAULT_NONE
        }
        surviving: list[ClientUpdate] = []
        for update in updates:
            kind, delay = kind_by_user.get(update.user_id, (FAULT_NONE, 0))
            if kind == FAULT_NONE:
                surviving.append(update)
            elif kind == FAULT_DROPOUT:
                self.dropped_uploads += 1
            elif kind == FAULT_STRAGGLER:
                self.buffer.defer(
                    round_idx + delay,
                    DeferredUpload(
                        user_id=update.user_id,
                        item_ids=update.item_ids.copy(),
                        item_grads=update.item_grads.copy(),
                        param_grads=[g.copy() for g in update.param_grads],
                        malicious=update.malicious,
                        discount=self.config.staleness_discount**delay,
                        origin_round=round_idx,
                    ),
                )
                self.deferred_uploads += 1
            else:  # FAULT_CORRUPTION
                surviving.append(
                    ClientUpdate(
                        user_id=update.user_id,
                        item_ids=update.item_ids.copy(),
                        item_grads=self._corrupt_rows(update.item_grads.copy()),
                        param_grads=update.param_grads,
                        malicious=update.malicious,
                    )
                )
                self.corrupted_uploads += 1
        for arrival in arrivals:
            surviving.append(
                ClientUpdate(
                    user_id=arrival.user_id,
                    item_ids=arrival.item_ids,
                    item_grads=arrival.discounted_grads(),
                    param_grads=arrival.discounted_params(),
                    malicious=arrival.malicious,
                )
            )
        self.stale_applied += len(arrivals)
        return surviving

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------

    def _corrupt_rows(self, rows: np.ndarray) -> np.ndarray:
        """In-transit corruption of one upload's gradient rows."""
        mode = self.config.corruption_mode
        if mode == "nan":
            rows[...] = np.nan
        elif mode == "inf":
            rows[...] = np.inf
        else:  # overscale
            rows *= rows.dtype.type(self.config.corruption_scale)
        return rows

    # -- checkpoint plumbing -------------------------------------------

    def state(self) -> dict:
        """Mutable runtime state for checkpoint capture."""
        return {
            "buffer": self.buffer.state(),
            "dropped_uploads": self.dropped_uploads,
            "deferred_uploads": self.deferred_uploads,
            "stale_applied": self.stale_applied,
            "corrupted_uploads": self.corrupted_uploads,
        }

    def restore(self, state: dict) -> None:
        self.buffer.restore(state["buffer"])
        self.dropped_uploads = state["dropped_uploads"]
        self.deferred_uploads = state["deferred_uploads"]
        self.stale_applied = state["stale_applied"]
        self.corrupted_uploads = state["corrupted_uploads"]
