"""Deterministic virtual clock, event queue and traffic plan.

The asynchronous federation engine
(:mod:`repro.federated.async_engine`) runs on *virtual* time: no
wall-clock value ever enters the simulation, so the same seed always
replays the identical event sequence — on any machine, at any speed,
across checkpoint/resume boundaries.  Three pieces make that hold:

* :class:`VirtualClock` — a monotonic float timestamp advanced only by
  event processing;
* :class:`EventQueue` — a heap of ``(time, priority, seq)``-ordered
  events.  Priorities break same-instant ties deterministically
  (``DEADLINE < DISPATCH < ARRIVAL`` — an expired deadline closes the
  open round first, then a new wave dispatches against the freshly
  aggregated model, and only then are the wave's instant arrivals
  buffered; exactly the ordering that makes the degenerate config
  reproduce the synchronous engine for full *and* partial waves), and
  the monotonically increasing ``seq`` makes equal ``(time,
  priority)`` events FIFO.  The queue's full contents are
  checkpointable: entries are plain tuples of picklable values.
* :class:`AsyncPlan` — the seeded traffic/latency/churn schedule.
  ``wave_schedule(wave, n)`` draws from ``spawn(seed, "async-plan",
  wave)`` — the same spawn discipline as :class:`FaultPlan` and the
  client streams — so the schedule is a pure function of
  ``(seed, AsyncConfig, wave, n)`` with no state to checkpoint.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.config import AsyncConfig
from repro.rng import spawn

__all__ = [
    "PRIORITY_DISPATCH",
    "PRIORITY_DEADLINE",
    "PRIORITY_ARRIVAL",
    "VirtualClock",
    "EventQueue",
    "WaveSchedule",
    "AsyncPlan",
]

#: Same-instant processing order.  An expired deadline closes the open
#: round first (so a wave dispatching at that instant trains against
#: the freshly aggregated model, exactly like the next synchronous
#: round), then the wave dispatch runs (it only *schedules* arrivals),
#: and only then do arrivals — possibly the just-dispatched wave's
#: instant uploads — enter the buffer.
PRIORITY_DEADLINE = 0
PRIORITY_DISPATCH = 1
PRIORITY_ARRIVAL = 2


class VirtualClock:
    """Monotonic simulation time; advanced only by event processing."""

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def advance(self, to: float) -> None:
        if to < self.now:
            raise ValueError(
                f"virtual time cannot run backwards: {to} < {self.now}"
            )
        self.now = float(to)


class EventQueue:
    """Deterministic event heap ordered by ``(time, priority, seq)``.

    ``payload`` is opaque to the queue; entries compare only on the
    ``(time, priority, seq)`` prefix (``seq`` is unique, so comparison
    never reaches the payload).  ``state()`` / ``restore()`` capture
    the exact heap for checkpointing — in-flight uploads survive a
    process boundary verbatim.
    """

    def __init__(self):
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, time: float, priority: int, payload: object) -> None:
        heapq.heappush(self._heap, (float(time), priority, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, object]:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, priority, _, payload = heapq.heappop(self._heap)
        return time, priority, payload

    def __len__(self) -> int:
        return len(self._heap)

    def count(self, priority: int) -> int:
        """Pending events of one priority class (stats accounting)."""
        return sum(1 for entry in self._heap if entry[1] == priority)

    # -- checkpoint plumbing -------------------------------------------

    def state(self) -> dict:
        return {"heap": list(self._heap), "seq": self._seq}

    def restore(self, state: dict) -> None:
        self._heap = list(state["heap"])
        heapq.heapify(self._heap)
        self._seq = int(state["seq"])


@dataclass(frozen=True)
class WaveSchedule:
    """One dispatched wave's upload timing, aligned with its uploads.

    Position ``i`` refers to the wave's ``i``-th upload in batch
    (participation) order.  ``offsets[i] + compute[i] + network[i]``
    added to the dispatch time is when the upload arrives at the
    server; ``cancelled[i]`` marks churned clients whose upload never
    leaves the device.
    """

    offsets: np.ndarray  # (n,) float64 traffic-process arrival offsets
    compute: np.ndarray  # (n,) float64 compute latencies
    network: np.ndarray  # (n,) float64 network delays
    cancelled: np.ndarray  # (n,) bool churn mask

    def arrival_offsets(self) -> np.ndarray:
        """Total dispatch-to-server-arrival delay per upload."""
        return self.offsets + self.compute + self.network


class AsyncPlan:
    """Seeded per-wave traffic/latency/churn schedule.

    A pure function of ``(seed, config, wave, n)``: each call spawns
    its own generator, draws in a fixed order (traffic offsets, then
    compute, then network, then churn), and keeps no state — which is
    what makes checkpoint/resume exact for free, like
    :class:`~repro.federated.faults.FaultPlan`.
    """

    def __init__(self, config: AsyncConfig, seed: int):
        self.config = config
        self.seed = seed

    def wave_schedule(self, wave_idx: int, n: int) -> WaveSchedule:
        cfg = self.config
        zeros = np.zeros(n)
        if n == 0:
            return WaveSchedule(zeros, zeros, zeros, np.zeros(0, dtype=bool))
        rng = spawn(self.seed, "async-plan", wave_idx)
        if cfg.traffic == "poisson":
            offsets = np.cumsum(rng.exponential(1.0 / cfg.arrival_rate, n))
        elif cfg.traffic == "trace":
            trace = np.asarray(cfg.trace_offsets, dtype=np.float64)
            offsets = trace[np.arange(n) % len(trace)]
        else:  # instant
            offsets = zeros
        compute = (
            rng.exponential(cfg.compute_mean, n) if cfg.compute_mean > 0 else zeros
        )
        network = (
            rng.exponential(cfg.network_mean, n) if cfg.network_mean > 0 else zeros
        )
        cancelled = (
            rng.random(n) < cfg.churn_rate
            if cfg.churn_rate > 0
            else np.zeros(n, dtype=bool)
        )
        return WaveSchedule(offsets, compute, network, cancelled)
