"""Gradient aggregation interface, the undefended sum aggregator, and
the fused scatter kernel behind the batch-client engine.

The server aggregates, per item embedding (and per interaction
parameter tensor), the stack of gradients received from the clients
that contributed one. With no defense, ``Agg`` is a plain sum
(Section III-A). Robust aggregators in :mod:`repro.defenses` implement
the same interface; they return values on the *sum scale* (robust
centre x contributor count) so the server learning-rate semantics are
identical with and without a defense.

Sum aggregation over sparse per-client uploads has a closed vectorised
form: concatenate every upload's ``(item_ids, item_grads)`` rows and
scatter-add them into one dense ``(num_items, dim)`` delta buffer
(:func:`scatter_sum`).  Because NumPy both scatters (``np.add.at``) and
reduces outer axes *sequentially*, the scatter is bit-identical to
grouping rows per item and summing each group — the per-update dict
merge it replaces — at any contributor count.  Aggregators advertise
eligibility via ``supports_scatter``; robust aggregators need the
per-item contributor stacks and keep the grouped path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import kernels

__all__ = ["Aggregator", "SumAggregator", "scatter_sum"]


def scatter_sum(
    item_ids: np.ndarray, item_grads: np.ndarray, num_items: int
) -> np.ndarray:
    """Scatter-add gradient rows into a dense per-item delta buffer.

    ``item_ids``/``item_grads`` are the row-aligned concatenation of
    every contributing upload (duplicate ids welcome — that is the
    point). Returns the dense ``(num_items, dim)`` sum.

    Dispatched through :mod:`repro.kernels`.  The reference backend is
    one ``np.bincount`` over composite int64 ``(item, dim)`` indices:
    bincount accumulates weights sequentially in row order, which
    matches both ``np.add.at`` and a per-item
    ``np.stack(...).sum(axis=0)`` over the same rows bit for bit — and
    runs ~2.5x faster than ``np.add.at`` on round-sized inputs; the
    native backend replays the identical row-order accumulation in C.
    """
    return kernels.scatter_sum(item_ids, item_grads, num_items)


class Aggregator(ABC):
    """Combines per-client gradients for one parameter into one gradient."""

    #: Whether ``aggregate`` is a plain sum over contributors, letting
    #: the server collapse a whole round into one dense scatter-add
    #: instead of grouping gradients per item. Robust aggregators must
    #: leave this False.
    supports_scatter = False

    @abstractmethod
    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        """Aggregate a stack of gradients.

        ``grads`` has shape ``(n_clients, *param_shape)`` with
        ``n_clients >= 1``; the result has shape ``param_shape``.
        """

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        """Aggregate many same-count contributor stacks at once.

        ``stacks`` has shape ``(groups, n_clients, *param_shape)`` —
        one contributor stack per group (per touched item, in the
        batched defended path, grouped by contributor count); the
        result has shape ``(groups, *param_shape)``.

        Contract: lane ``g`` of the result is bit-identical to
        ``aggregate(stacks[g])`` — the batched defended round must
        reproduce the reference per-item aggregation exactly.  The
        default implementation guarantees this by looping; the robust
        aggregators in :mod:`repro.defenses.robust` override it with
        vectorised kernels built only from lane-stable NumPy
        operations (per-lane sort/partition/median, sequential
        middle-axis reductions, batched GEMMs whose per-slice results
        match the standalone product) and route ``aggregate`` itself
        through the same kernel.
        """
        return np.stack([self.aggregate(stack) for stack in stacks])

    def _check(self, grads: np.ndarray) -> np.ndarray:
        grads = np.asarray(grads, dtype=np.float64)
        if grads.ndim < 2 or len(grads) == 0:
            raise ValueError("expected a non-empty stack of gradients")
        return grads


class SumAggregator(Aggregator):
    """The undefended FRS aggregation: a simple sum over contributors."""

    supports_scatter = True

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self._check(grads).sum(axis=0)

    def aggregate_stacks(self, stacks: np.ndarray) -> np.ndarray:
        return stacks.sum(axis=1)
