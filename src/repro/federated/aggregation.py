"""Gradient aggregation interface and the undefended sum aggregator.

The server aggregates, per item embedding (and per interaction
parameter tensor), the stack of gradients received from the clients
that contributed one. With no defense, ``Agg`` is a plain sum
(Section III-A). Robust aggregators in :mod:`repro.defenses` implement
the same interface; they return values on the *sum scale* (robust
centre x contributor count) so the server learning-rate semantics are
identical with and without a defense.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Aggregator", "SumAggregator"]


class Aggregator(ABC):
    """Combines per-client gradients for one parameter into one gradient."""

    @abstractmethod
    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        """Aggregate a stack of gradients.

        ``grads`` has shape ``(n_clients, *param_shape)`` with
        ``n_clients >= 1``; the result has shape ``param_shape``.
        """

    def _check(self, grads: np.ndarray) -> np.ndarray:
        grads = np.asarray(grads, dtype=np.float64)
        if grads.ndim < 2 or len(grads) == 0:
            raise ValueError("expected a non-empty stack of gradients")
        return grads


class SumAggregator(Aggregator):
    """The undefended FRS aggregation: a simple sum over contributors."""

    def aggregate(self, grads: np.ndarray) -> np.ndarray:
        return self._check(grads).sum(axis=0)
