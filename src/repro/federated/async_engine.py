"""Event-driven asynchronous federation engine (FedAsync/FedBuff style).

The synchronous engines run the paper's idealized protocol: sample,
train, aggregate, repeat — every upload applies in the round that
produced it.  Real federated recommenders are asynchronous: clients
arrive on a traffic process, train at their own speed, upload over
slow links, churn away mid-round, and the server aggregates whatever
it has when a buffer fills or a deadline expires.  This module makes
that a first-class, *deterministic* execution mode:

* :class:`AsyncFederationEngine` — the event loop.  Client *waves*
  dispatch every ``round_interval`` of virtual time; each wave is the
  synchronous engine's cohort for that wave index (same
  ``server.sample_users`` stream) and trains in one batched pass
  against the model it downloaded at dispatch — the math is exactly
  :meth:`~repro.federated.batch_engine.BatchClientEngine.\
compute_round_batch`, the async layer only reorders *when* the
  resulting uploads reach aggregation.  Per-upload traffic offsets,
  compute latencies, network delays and churn come from the seeded
  :class:`~repro.federated.clock.AsyncPlan`.
* :class:`StalenessAggregator` — the FedBuff-style server buffer.
  Uploads arrive tagged with the model version they trained against;
  a round closes when ``buffer_size`` uploads are buffered or its
  deadline expires (whichever first) and flushes the buffer in
  arrival order, scaling uploads that are ``delay`` versions stale by
  ``staleness_discount ** delay`` — the same in-dtype arithmetic as
  the fault layer's :class:`~repro.federated.faults.DeferredUpload`.
  Uploads staler than ``max_staleness`` are dropped *and counted*.
* :class:`AsyncStats` — full accounting in the mold of
  :class:`~repro.federated.faults.FaultStats`: every dispatched
  client is cancelled, in flight, buffered, applied or dropped —
  nothing vanishes silently (conservation is asserted by the
  property suite).

Determinism contracts (asserted in CI):

1. **Same seed ⇒ bit-identical runs.**  Time is virtual — the event
   sequence is a pure function of ``(seed, config)``.  Events at the
   same instant order by ``DEADLINE < DISPATCH < ARRIVAL`` then FIFO,
   the wave schedules are stateless spawns, and the queue contents are
   checkpointable, so resume preserves bit-identity mid-stream.
2. **Degenerate config ⇒ the synchronous engine, bit for bit.**  With
   instant traffic, zero latency, zero churn, ``buffer_size = |wave|``
   and ``round_deadline = round_interval``, wave ``r``'s uploads are
   the only buffer contents when round ``r`` closes, at staleness 0
   (discount skipped — not multiplied by 1.0), in the synchronous
   upload order; partial waves (e.g. miners not uploading) close by
   deadline *before* the next wave's instant arrivals are processed,
   so no wave ever bleeds into a neighbouring round.

A round's deadline is *armed* by the first dispatch or arrival
processed while the round is open (not by the round opening itself):
a round whose work has not started yet cannot expire, and a round
whose wave uploads nothing still terminates — this is what makes the
degenerate config exact in both the full-wave and partial-wave cases
while keeping every round finite under total churn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.config import AsyncConfig, TrainConfig
from repro.federated.batch_engine import BatchClientEngine
from repro.federated.clock import (
    PRIORITY_ARRIVAL,
    PRIORITY_DEADLINE,
    PRIORITY_DISPATCH,
    AsyncPlan,
    EventQueue,
    VirtualClock,
)
from repro.federated.faults import DeferredUpload
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.federated.update_batch import UpdateBatch

__all__ = ["AsyncStats", "FlushResult", "StalenessAggregator", "AsyncFederationEngine"]

#: Event kinds, carried as the first element of each queue payload.
EVENT_DISPATCH = "dispatch"
EVENT_DEADLINE = "deadline"
EVENT_ARRIVAL = "arrival"


@dataclass(frozen=True)
class AsyncStats:
    """Asynchrony accounting of one simulation run.

    Conservation invariants (property-tested):

    * ``clients_dispatched == uploads_cancelled + uploads_arrived +
      uploads_in_flight``
    * ``uploads_arrived == uploads_applied + stale_dropped +
      uploads_buffered``
    * ``rounds_closed_by_buffer + rounds_closed_by_deadline`` is the
      number of aggregations performed.
    """

    waves_dispatched: int = 0
    clients_dispatched: int = 0
    uploads_cancelled: int = 0
    uploads_arrived: int = 0
    uploads_applied: int = 0
    #: Applied uploads whose staleness delay was >= 1 version.
    stale_applied: int = 0
    #: Uploads dropped for exceeding ``max_staleness``.
    stale_dropped: int = 0
    max_staleness_applied: int = 0
    rounds_closed_by_buffer: int = 0
    rounds_closed_by_deadline: int = 0
    #: Deadline closes that flushed an empty buffer (no upload made it
    #: in time — the model does not move, but the round terminates).
    empty_rounds: int = 0
    #: Uploads still travelling (scheduled arrivals) at run end.
    uploads_in_flight: int = 0
    #: Uploads sitting in the aggregation buffer at run end.
    uploads_buffered: int = 0

    @property
    def any_async(self) -> bool:
        """Whether the run executed on the asynchronous engine at all."""
        return bool(self.waves_dispatched)

    def to_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: dict[str, int]) -> "AsyncStats":
        return cls(**{k: int(payload.get(k, 0)) for k in cls.__dataclass_fields__})


@dataclass
class FlushResult:
    """One aggregation's flushed batch plus its staleness accounting."""

    batch: UpdateBatch
    applied: int = 0
    stale_applied: int = 0
    stale_dropped: int = 0
    max_delay: int = 0


class StalenessAggregator:
    """FedBuff-style buffered aggregation with staleness discounting.

    Holds ``(upload, origin_version)`` entries in arrival order (FIFO
    — arrival order is deterministic, so flush order and every
    downstream float accumulation are too).  ``flush(current_version)``
    converts the buffer into one :class:`UpdateBatch`: fresh uploads
    (delay 0) pass through untouched — their arrays are *not*
    multiplied by 1.0, keeping the degenerate config bit-identical —
    and stale uploads are scaled by ``discount ** delay`` in the
    gradient's own dtype via the fault layer's
    :class:`~repro.federated.faults.DeferredUpload` arithmetic.
    """

    def __init__(self, discount: float, max_staleness: int = 0):
        self.discount = float(discount)
        self.max_staleness = int(max_staleness)
        self._entries: list[tuple[ClientUpdate, int]] = []

    def add(self, update: ClientUpdate, origin_version: int) -> None:
        self._entries.append((update, int(origin_version)))

    def __len__(self) -> int:
        return len(self._entries)

    def flush(self, current_version: int) -> FlushResult:
        """Drain the buffer into one batch at ``current_version``."""
        kept: list[ClientUpdate] = []
        result = FlushResult(batch=None)  # type: ignore[arg-type]
        for update, origin in self._entries:
            delay = int(current_version) - origin
            if self.max_staleness and delay > self.max_staleness:
                result.stale_dropped += 1
                continue
            if delay > 0:
                deferred = DeferredUpload(
                    user_id=update.user_id,
                    item_ids=update.item_ids,
                    item_grads=update.item_grads,
                    param_grads=update.param_grads,
                    malicious=update.malicious,
                    discount=self.discount**delay,
                    origin_round=origin,
                )
                update = ClientUpdate(
                    user_id=update.user_id,
                    item_ids=update.item_ids,
                    item_grads=deferred.discounted_grads(),
                    param_grads=deferred.discounted_params(),
                    malicious=update.malicious,
                )
                result.stale_applied += 1
                result.max_delay = max(result.max_delay, delay)
            kept.append(update)
        result.applied = len(kept)
        result.batch = UpdateBatch.from_updates(kept)
        self._entries = []
        return result

    # -- checkpoint plumbing -------------------------------------------

    def state(self) -> list[tuple[ClientUpdate, int]]:
        return list(self._entries)

    def restore(self, state: list[tuple[ClientUpdate, int]]) -> None:
        self._entries = list(state)


class AsyncFederationEngine:
    """Drives the simulation's rounds through a virtual-time event loop.

    One engine per simulation, wrapping the simulation's
    :class:`~repro.federated.batch_engine.BatchClientEngine` (whose
    batched math and RNG streams it reuses verbatim) and its
    :class:`~repro.federated.server.Server` (whose sanity gate, quorum
    check, defenses and audit log see flushed batches exactly as they
    see synchronous rounds).

    ``run_round(r)`` advances the event loop until aggregation ``r``
    completes, so the simulation's training loop — evaluation cadence,
    checkpoint boundaries, history recording — is unchanged: one
    "round" is one aggregation, synchronous or not.
    """

    def __init__(
        self,
        *,
        batch_engine: BatchClientEngine,
        server: Server,
        config: AsyncConfig,
        train_cfg: TrainConfig,
        total_users: int,
        seed: int,
    ):
        self.batch_engine = batch_engine
        self.server = server
        self.config = config
        self.train_cfg = train_cfg
        self.total_users = total_users
        self.seed = seed
        self.plan = AsyncPlan(config, seed)
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.aggregator = StalenessAggregator(
            config.staleness_discount, config.max_staleness
        )
        #: FedBuff K: aggregate as soon as this many uploads buffer.
        self.k = config.buffer_size or min(
            train_cfg.users_per_round, total_users
        )
        #: Aggregations completed == the model version clients see.
        self.version = 0
        #: Whether the open round's deadline event has been scheduled.
        self.deadline_armed = False
        # Counters (AsyncStats is assembled from these on demand).
        self.waves_dispatched = 0
        self.clients_dispatched = 0
        self.uploads_cancelled = 0
        self.uploads_arrived = 0
        self.uploads_applied = 0
        self.stale_applied = 0
        self.stale_dropped = 0
        self.max_staleness_applied = 0
        self.rounds_closed_by_buffer = 0
        self.rounds_closed_by_deadline = 0
        self.empty_rounds = 0
        self.queue.push(0.0, PRIORITY_DISPATCH, (EVENT_DISPATCH, 0))

    # ------------------------------------------------------------------
    # Round driver
    # ------------------------------------------------------------------

    def run_round(self, round_idx: int) -> None:
        """Advance the event loop until aggregation ``round_idx`` closes.

        The loop always terminates: the first dispatch or arrival seen
        by the open round arms its deadline, dispatches recur every
        ``round_interval``, and an expired deadline closes the round
        even with an empty buffer.
        """
        if round_idx != self.version:
            raise RuntimeError(
                f"async engine is at aggregation {self.version}, "
                f"cannot run round {round_idx} out of order"
            )
        target = self.version + 1
        with kernels.use(self.batch_engine.kernel_backend) as backend:
            fallbacks_before = backend.fallback_calls
            while self.version < target:
                self._step()
            if backend.fallback_calls > fallbacks_before:
                self.batch_engine.kernel_fallback_rounds += 1

    def _step(self) -> None:
        time, _, payload = self.queue.pop()
        self.clock.advance(time)
        kind = payload[0]
        if kind == EVENT_DISPATCH:
            self._dispatch(payload[1])
        elif kind == EVENT_DEADLINE:
            self._deadline(payload[1])
        else:  # EVENT_ARRIVAL
            self._arrival(payload[1], payload[2])

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _dispatch(self, wave_idx: int) -> None:
        """Sample, train and schedule one client wave's uploads.

        The wave is the synchronous engine's round-``wave_idx`` cohort
        (same sampling stream) and trains in one batched pass against
        the *current* model — traffic offsets and latencies delay only
        when each upload lands, which is where staleness comes from.
        """
        self.queue.push(
            (wave_idx + 1) * self.config.round_interval,
            PRIORITY_DISPATCH,
            (EVENT_DISPATCH, wave_idx + 1),
        )
        sampled = self.server.sample_users(
            self.total_users, self.train_cfg.users_per_round, wave_idx
        )
        batch = self.batch_engine.compute_round_batch(wave_idx, sampled)
        uploads = batch.to_updates()
        schedule = self.plan.wave_schedule(wave_idx, len(uploads))
        self.waves_dispatched += 1
        self.clients_dispatched += len(uploads)
        arrival_offsets = schedule.arrival_offsets()
        for pos, update in enumerate(uploads):
            if schedule.cancelled[pos]:
                self.uploads_cancelled += 1
                continue
            self.queue.push(
                self.clock.now + float(arrival_offsets[pos]),
                PRIORITY_ARRIVAL,
                (EVENT_ARRIVAL, update, self.version),
            )
        self._arm_deadline()

    def _arrival(self, update: ClientUpdate, origin_version: int) -> None:
        self.uploads_arrived += 1
        self.aggregator.add(update, origin_version)
        self._arm_deadline()
        if len(self.aggregator) >= self.k:
            self._close_round(by_deadline=False)

    def _deadline(self, round_idx: int) -> None:
        if round_idx != self.version:
            return  # stale deadline of an already-closed round
        self._close_round(by_deadline=True)

    def _arm_deadline(self) -> None:
        """Schedule the open round's deadline on its first activity."""
        if not self.deadline_armed:
            self.queue.push(
                self.clock.now + self.config.round_deadline,
                PRIORITY_DEADLINE,
                (EVENT_DEADLINE, self.version),
            )
            self.deadline_armed = True

    def _close_round(self, *, by_deadline: bool) -> None:
        """Flush the buffer through the server and advance the version."""
        flushed = self.aggregator.flush(self.version)
        self.uploads_applied += flushed.applied
        self.stale_applied += flushed.stale_applied
        self.stale_dropped += flushed.stale_dropped
        self.max_staleness_applied = max(
            self.max_staleness_applied, flushed.max_delay
        )
        if by_deadline:
            self.rounds_closed_by_deadline += 1
            if flushed.batch.num_clients == 0:
                self.empty_rounds += 1
        else:
            self.rounds_closed_by_buffer += 1
        # An empty flush still goes through apply_batch so quorum
        # accounting matches an empty synchronous round exactly.
        self.server.apply_batch(flushed.batch)
        self.version += 1
        self.deadline_armed = False

    # ------------------------------------------------------------------
    # Stats / checkpoint
    # ------------------------------------------------------------------

    def stats(self) -> AsyncStats:
        return AsyncStats(
            waves_dispatched=self.waves_dispatched,
            clients_dispatched=self.clients_dispatched,
            uploads_cancelled=self.uploads_cancelled,
            uploads_arrived=self.uploads_arrived,
            uploads_applied=self.uploads_applied,
            stale_applied=self.stale_applied,
            stale_dropped=self.stale_dropped,
            max_staleness_applied=self.max_staleness_applied,
            rounds_closed_by_buffer=self.rounds_closed_by_buffer,
            rounds_closed_by_deadline=self.rounds_closed_by_deadline,
            empty_rounds=self.empty_rounds,
            uploads_in_flight=self.queue.count(PRIORITY_ARRIVAL),
            uploads_buffered=len(self.aggregator),
        )

    _COUNTERS = (
        "waves_dispatched",
        "clients_dispatched",
        "uploads_cancelled",
        "uploads_arrived",
        "uploads_applied",
        "stale_applied",
        "stale_dropped",
        "max_staleness_applied",
        "rounds_closed_by_buffer",
        "rounds_closed_by_deadline",
        "empty_rounds",
    )

    def state(self) -> dict:
        """Mutable event-loop state for checkpoint capture.

        The queue's heap entries carry the in-flight uploads (their
        gradient arrays pickle with them), so a resumed process
        replays the exact remaining event sequence; the wave plan and
        sampling streams are stateless spawns and need no capture.
        """
        return {
            "clock": self.clock.now,
            "queue": self.queue.state(),
            "buffer": self.aggregator.state(),
            "version": self.version,
            "deadline_armed": self.deadline_armed,
            "counters": {name: getattr(self, name) for name in self._COUNTERS},
        }

    def restore(self, state: dict) -> None:
        self.clock = VirtualClock(state["clock"])
        self.queue.restore(state["queue"])
        self.aggregator.restore(state["buffer"])
        self.version = int(state["version"])
        self.deadline_armed = bool(state["deadline_armed"])
        for name, value in state["counters"].items():
            setattr(self, name, value)
