"""Dense whole-round upload representation for the batch-client engine.

One :class:`UpdateBatch` holds every participant's upload of one
communication round in the same ragged row-stack layout the batch
engine trains in: flat row-aligned ``item_ids`` / ``item_grads``
arrays in which client ``k`` owns a contiguous segment of
``lengths[k]`` rows, plus one ``(contributors, *param_shape)`` stack
per learnable interaction parameter.  It is the server-side dual of
the engine's training stacks — robust aggregators, update filters and
the audit log consume these tensors directly instead of a list of
materialised :class:`~repro.federated.payload.ClientUpdate` objects.

Layout invariants (everything downstream relies on them):

* clients appear in *upload order* — the order the reference loop
  engine would have called ``Server.apply_updates`` with;
* within a client's segment, rows keep that client's upload row order
  (so any per-item regrouping that is stable in row order reproduces
  the reference engine's per-item contributor stacks exactly);
* ``param_owners`` lists, in upload order, the client positions that
  contributed interaction-parameter gradients; ``param_stacks[i][j]``
  is the ``i``-th parameter gradient of client ``param_owners[j]``;
* ``malicious`` is ground-truth bookkeeping mirrored from
  ``ClientUpdate.malicious`` — read by the audit log and analysis
  code only, never by a defense.

Filters return *new* batches (or the input unchanged); the arrays of a
batch handed to :meth:`repro.federated.server.Server.apply_batch` are
never mutated in place, so the engine may pass views of its round
stacks without copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.federated.payload import ClientUpdate
from repro.models.base import segment_starts

__all__ = ["UpdateBatch"]


@dataclass
class UpdateBatch:
    """All client uploads of one round, in ragged row-stack layout."""

    user_ids: np.ndarray  # (clients,) int64, upload order
    item_ids: np.ndarray  # (total_rows,) int64
    item_grads: np.ndarray  # (total_rows, dim) floating; carries the
    #   model's own precision (float64 by default, float32 for
    #   reduced-precision models) — kernels must not assume float64
    lengths: np.ndarray  # (clients,) rows per client
    param_stacks: list[np.ndarray] = field(default_factory=list)
    param_owners: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    malicious: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=bool)
    )

    def __post_init__(self) -> None:
        if len(self.malicious) == 0 and len(self.user_ids):
            self.malicious = np.zeros(len(self.user_ids), dtype=bool)

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------

    @property
    def num_clients(self) -> int:
        return len(self.user_ids)

    @property
    def starts(self) -> np.ndarray:
        """Row offset of each client's segment (CSR-style)."""
        return segment_starts(self.lengths)

    def row_owners(self) -> np.ndarray:
        """Client position owning each row: ``(total_rows,)``."""
        return np.repeat(np.arange(self.num_clients), self.lengths)

    # ------------------------------------------------------------------
    # Norms (bit-identical to the ClientUpdate equivalents)
    # ------------------------------------------------------------------

    def row_norms(self) -> np.ndarray:
        """Per-row L2 norms — matches ``np.linalg.norm(grads, axis=1)``
        computed per client, because the reduction is row-wise."""
        return np.linalg.norm(self.item_grads, axis=1)

    def client_total_norms(self) -> np.ndarray:
        """Per-client whole-upload L2 norm.

        Matches :attr:`ClientUpdate.total_norm` bit for bit.  The
        reference sums each client's squared gradients with one
        ``np.sum`` over its contiguous ``(rows, dim)`` segment — a
        pairwise reduction over ``rows * dim`` flat elements whose
        blocking depends only on the element count.  Clients with
        equal element counts therefore reduce identically, so they are
        gathered into one ``(clients, count)`` matrix and summed along
        its rows in a single call per distinct count.  Parameter
        tensors accumulate into their own running sum first and join
        the item total in one final addition — the association
        Python's ``sum()`` gives the reference property.
        """
        totals = np.empty(self.num_clients)
        flat = (self.item_grads**2).ravel()
        dim = self.item_grads.shape[1] if self.item_grads.ndim == 2 else 0
        flat_starts = self.starts * dim
        flat_lengths = self.lengths * dim
        for count in np.unique(flat_lengths):
            group = np.flatnonzero(flat_lengths == count)
            if count == 0:
                totals[group] = 0.0
                continue
            gather = flat_starts[group][:, None] + np.arange(int(count))[None, :]
            totals[group] = flat[gather].sum(axis=1)
        if len(self.param_owners):
            param_totals = np.zeros(self.num_clients)
            for j, owner in enumerate(self.param_owners):
                for stack in self.param_stacks:
                    param_totals[int(owner)] += np.sum(stack[j] ** 2)
            totals += param_totals
        return np.sqrt(totals)

    # ------------------------------------------------------------------
    # Transformations used by batched filters
    # ------------------------------------------------------------------

    def scaled_by_client(self, scales: np.ndarray) -> "UpdateBatch":
        """New batch with every client's whole upload scaled.

        ``scales`` has one float64 factor per client; a factor of
        exactly 1.0 leaves that client's values bit-identical (IEEE
        ``x * 1.0 == x``), mirroring :meth:`ClientUpdate.clipped`
        returning the update untouched.
        """
        row_scales = np.repeat(scales, self.lengths)
        item_grads = self.item_grads * row_scales[:, None]
        param_stacks = []
        if self.param_stacks and len(self.param_owners):
            owner_scales = scales[self.param_owners]
            for stack in self.param_stacks:
                shape = (len(owner_scales),) + (1,) * (stack.ndim - 1)
                param_stacks.append(stack * owner_scales.reshape(shape))
        else:
            param_stacks = list(self.param_stacks)
        return replace(self, item_grads=item_grads, param_stacks=param_stacks)

    def with_item_grads(self, item_grads: np.ndarray) -> "UpdateBatch":
        """New batch sharing every array except the item gradients."""
        return replace(self, item_grads=item_grads)

    def select_clients(self, keep: np.ndarray) -> "UpdateBatch":
        """New batch keeping only the clients where ``keep`` is True.

        ``keep`` is a ``(clients,)`` boolean mask.  Surviving clients
        keep their relative upload order and their exact gradient
        values (rows are gathered, never recomputed); ``param_owners``
        is remapped to the surviving positions and parameter stacks of
        removed clients are dropped.  An all-True mask returns the
        batch unchanged (same object, zero copies).
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.all():
            return self
        row_keep = np.repeat(keep, self.lengths)
        new_pos = np.cumsum(keep) - 1  # old position -> new position
        owner_keep = keep[self.param_owners] if len(self.param_owners) else keep[:0]
        param_stacks = [stack[owner_keep] for stack in self.param_stacks]
        param_owners = new_pos[self.param_owners[owner_keep]]
        return UpdateBatch(
            user_ids=self.user_ids[keep],
            item_ids=self.item_ids[row_keep],
            item_grads=self.item_grads[row_keep],
            lengths=self.lengths[keep],
            param_stacks=param_stacks,
            param_owners=np.asarray(param_owners, dtype=np.int64),
            malicious=self.malicious[keep],
        )

    # ------------------------------------------------------------------
    # ClientUpdate interop
    # ------------------------------------------------------------------

    @classmethod
    def from_updates(cls, updates: list[ClientUpdate]) -> "UpdateBatch":
        """Stack a list of per-client uploads into one dense batch."""
        if not updates:
            zero = np.empty(0, dtype=np.int64)
            return cls(zero, zero, np.empty((0, 0)), zero)
        user_ids = np.array([u.user_id for u in updates], dtype=np.int64)
        lengths = np.array([len(u.item_ids) for u in updates], dtype=np.int64)
        item_ids = np.concatenate([u.item_ids for u in updates])
        item_grads = np.concatenate([u.item_grads for u in updates], axis=0)
        malicious = np.array([u.malicious for u in updates], dtype=bool)
        owners = [k for k, u in enumerate(updates) if u.param_grads]
        param_stacks: list[np.ndarray] = []
        if owners:
            num_params = len(updates[owners[0]].param_grads)
            param_stacks = [
                np.stack([updates[k].param_grads[i] for k in owners])
                for i in range(num_params)
            ]
        return cls(
            user_ids=user_ids,
            item_ids=item_ids,
            item_grads=item_grads,
            lengths=lengths,
            param_stacks=param_stacks,
            param_owners=np.array(owners, dtype=np.int64),
            malicious=malicious,
        )

    def to_updates(self) -> list[ClientUpdate]:
        """Materialise per-client uploads (compat fallback only).

        Used when a server component (a custom update filter) has no
        batched protocol; arrays are copied because materialised
        updates may be retained or mutated downstream.
        """
        param_rows: dict[int, list[np.ndarray]] = {}
        for j, owner in enumerate(self.param_owners):
            param_rows[int(owner)] = [stack[j].copy() for stack in self.param_stacks]
        updates = []
        starts = self.starts
        for k in range(self.num_clients):
            seg = slice(int(starts[k]), int(starts[k]) + int(self.lengths[k]))
            # Trusted construction: these rows already passed upload
            # validation when the batch was assembled, and the
            # per-client duplicate re-scan is the hot cost here.
            updates.append(
                ClientUpdate.trusted(
                    user_id=int(self.user_ids[k]),
                    item_ids=self.item_ids[seg].copy(),
                    item_grads=self.item_grads[seg].copy(),
                    param_grads=param_rows.get(k, []),
                    malicious=bool(self.malicious[k]),
                )
            )
        return updates
