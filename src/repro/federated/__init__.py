"""Federated recommendation core: clients, server, round-loop simulation.

The training protocol follows Section III-A of the paper: each round
the server samples a batch of users, sends them the global model (item
embeddings, plus MLP parameters for DL-FRS), receives per-parameter
gradients back, aggregates them with ``Agg`` (a plain sum, or a defense
aggregator) and applies one SGD step. User embeddings stay on clients.
"""

from repro.federated.aggregation import Aggregator, SumAggregator, scatter_sum
from repro.federated.async_engine import (
    AsyncFederationEngine,
    AsyncStats,
    StalenessAggregator,
)
from repro.federated.audit import ItemRoundRecord, ServerAuditLog
from repro.federated.batch_engine import BatchClientEngine
from repro.federated.client import BenignClient
from repro.federated.clock import AsyncPlan, EventQueue, VirtualClock
from repro.federated.faults import (
    FaultController,
    FaultPlan,
    FaultStats,
    StalenessBuffer,
)
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.federated.simulation import EvalRecord, FederatedSimulation, SimulationResult
from repro.federated.state import ClientStateStore, ClientViewList
from repro.federated.update_batch import UpdateBatch

__all__ = [
    "ClientUpdate",
    "UpdateBatch",
    "Aggregator",
    "SumAggregator",
    "scatter_sum",
    "BatchClientEngine",
    "BenignClient",
    "ClientStateStore",
    "ClientViewList",
    "Server",
    "FaultController",
    "FaultPlan",
    "FaultStats",
    "StalenessBuffer",
    "AsyncFederationEngine",
    "AsyncStats",
    "StalenessAggregator",
    "AsyncPlan",
    "EventQueue",
    "VirtualClock",
    "FederatedSimulation",
    "SimulationResult",
    "EvalRecord",
    "ServerAuditLog",
    "ItemRoundRecord",
]
