"""Benign federated client: local training on private interactions.

Each client owns a private user embedding and its interaction history.
Per round it samples a fresh local batch (positives + ``q`` negatives),
computes gradients of the training loss (BCE, Eq. 2, or BPR from the
supplementary material), updates its user embedding locally and uploads
the item/parameter gradients.

When the paper's defense is active, the client additionally feeds the
received item matrix to its own popular-item miner and augments its
loss with the two regularization terms (Eq. 16) via a ``regularizer``
hook (see :class:`repro.defenses.regularization.ClientRegularizer`).

:meth:`BenignClient.participate` is the *reference* local step: the
vectorised batch engine (:mod:`repro.federated.batch_engine`) executes
the same mathematics for a whole round's participants at once and is
tested to match it bit for bit, drawing from the same per-client RNG
stream ``spawn(seed, "client-round", user_id, round_idx)``.

A client exists in one of two storage modes with identical behaviour:

* **standalone** (the constructor) — the client owns its embedding and
  interaction arrays, exactly the original object-per-user layout;
* **store-backed** (:meth:`BenignClient.from_store`) — the client is a
  thin view over one row of a
  :class:`~repro.federated.state.ClientStateStore`: ``user_embedding``
  and ``positive_items`` read and write the store's flat arrays, so
  per-object code (this loop reference, attacks, analysis) and the
  store-vectorised batch engine observe the same state.

One deliberate asymmetry: assigning ``user_embedding`` on a
store-backed view writes the *values* into the store row, so the
store's dtype governs (a single row of a dense matrix cannot change
precision independently), whereas a standalone client rebinds its
owned array and adopts the assigned dtype.  To run a population at
reduced precision, convert the store matrix itself
(``store.user_embeddings = store.user_embeddings.astype(...)``).
"""

from __future__ import annotations

import numpy as np

from repro.config import TrainConfig
from repro.datasets.sampling import sample_local_batch, sample_negatives
from repro.federated.payload import ClientUpdate
from repro.models.base import RecommenderModel
from repro.models.losses import bce_loss_and_grad, bpr_loss_and_grad
from repro.rng import spawn

__all__ = ["BenignClient"]


class BenignClient:
    """A benign user participating in federated training."""

    def __init__(
        self,
        user_id: int,
        positive_items: np.ndarray,
        num_items: int,
        embedding_dim: int,
        *,
        seed: int = 0,
        init_scale: float = 0.1,
        regularizer=None,
    ):
        self.user_id = user_id
        self.num_items = num_items
        self._store = None
        self._positive_items = np.asarray(positive_items, dtype=np.int64)
        rng = spawn(seed, "client-init", user_id)
        self._user_embedding = rng.normal(scale=init_scale, size=embedding_dim)
        self._regularizer = regularizer
        self._seed = seed

    @classmethod
    def from_store(cls, store, user_id: int) -> "BenignClient":
        """A view client backed by one row of a ``ClientStateStore``.

        No RNG draw happens here — the store already initialised the
        embedding row bit-identically to the constructor's draw.
        """
        client = cls.__new__(cls)
        client.user_id = user_id
        client.num_items = store.num_items
        client._store = store
        client._positive_items = None
        client._user_embedding = None
        client._regularizer = None
        client._seed = store._seed
        return client

    # ------------------------------------------------------------------
    # State accessors (store rows or owned arrays, transparently)
    # ------------------------------------------------------------------

    @property
    def user_embedding(self) -> np.ndarray:
        """The private embedding — a store-row view when store-backed."""
        if self._store is not None:
            return self._store.row(self.user_id)
        return self._user_embedding

    @user_embedding.setter
    def user_embedding(self, value: np.ndarray) -> None:
        if self._store is not None:
            self._store.set_row(self.user_id, value)
        else:
            self._user_embedding = value

    @property
    def positive_items(self) -> np.ndarray:
        """The private interaction list — a CSR slice when store-backed."""
        if self._store is not None:
            return self._store.positives(self.user_id)
        return self._positive_items

    @property
    def regularizer(self):
        if self._store is not None:
            return self._store.regularizer(self.user_id)
        return self._regularizer

    @regularizer.setter
    def regularizer(self, value) -> None:
        if self._store is not None:
            self._store.set_regularizer(self.user_id, value)
        else:
            self._regularizer = value

    # ------------------------------------------------------------------
    # One round of participation
    # ------------------------------------------------------------------

    def participate(
        self, model: RecommenderModel, train_cfg: TrainConfig, round_idx: int
    ) -> ClientUpdate:
        """Run one local training step and return the gradient upload."""
        rng = spawn(self._seed, "client-round", self.user_id, round_idx)
        if self.regularizer is not None:
            self.regularizer.observe(model.item_embeddings)

        if train_cfg.loss == "bpr":
            item_ids, item_grads, user_grad = self._bpr_step(model, rng, train_cfg)
            param_grads: list[np.ndarray] = []
        else:
            item_ids, item_grads, user_grad, param_grads = self._bce_step(
                model, rng, train_cfg
            )

        if self.regularizer is not None:
            item_grads = item_grads + self.regularizer.item_grad_terms(
                item_ids, model.item_embeddings
            )
            user_grad = user_grad + self.regularizer.user_grad_term(
                self.user_embedding, model.item_embeddings
            )
            param_hook = getattr(self.regularizer, "param_grad_terms", None)
            if param_hook is not None and model.interaction_params():
                extra = param_hook(model, item_ids)
                if extra:
                    if param_grads:
                        param_grads = [p + e for p, e in zip(param_grads, extra)]
                    else:
                        param_grads = extra

        # Local personalised-model update: u <- u - eta * grad_u.
        self.user_embedding = self.user_embedding - self._client_lr(train_cfg) * user_grad
        return ClientUpdate(
            user_id=self.user_id,
            item_ids=item_ids,
            item_grads=item_grads,
            param_grads=param_grads,
        )

    def _client_lr(self, train_cfg: TrainConfig) -> float:
        """This client's local learning rate.

        Usually the server-specified rate; under the inconsistent-rate
        scenario of supplementary Table X each client draws its own
        fixed rate log-uniformly from ``client_lr_range``.
        """
        if train_cfg.client_lr_range is None:
            return train_cfg.effective_client_lr
        if self._store is not None:
            # The store draws client rates in one vectorised pass
            # (cached, or served from shared-memory segments); entry u
            # is bit-identical to the scalar spawn below.
            return float(
                self._store.client_lrs_for(
                    train_cfg.client_lr_range, np.array([self.user_id])
                )[0]
            )
        low, high = train_cfg.client_lr_range
        if not 0 < low <= high:
            raise ValueError("client_lr_range must satisfy 0 < low <= high")
        rng = spawn(self._seed, "client-lr", self.user_id)
        return float(np.exp(rng.uniform(np.log(low), np.log(high))))

    # ------------------------------------------------------------------
    # Loss-specific steps
    # ------------------------------------------------------------------

    def _bce_step(
        self,
        model: RecommenderModel,
        rng: np.random.Generator,
        train_cfg: TrainConfig,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
        item_ids, labels = sample_local_batch(
            rng, self.positive_items, self.num_items, train_cfg.negative_ratio
        )
        item_vecs = model.item_embeddings[item_ids]
        logits, cache = model.forward(self.user_embedding, item_vecs)
        _, dlogits = bce_loss_and_grad(logits, labels)
        bundle = model.backward(cache, dlogits)
        user_grad = bundle.users.sum(axis=0)
        return item_ids, bundle.items, user_grad, bundle.params

    def _bpr_step(
        self,
        model: RecommenderModel,
        rng: np.random.Generator,
        train_cfg: TrainConfig,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        positives = self.positive_items
        negatives = sample_negatives(rng, positives, self.num_items, len(positives))
        if len(negatives) < len(positives):
            positives = positives[: len(negatives)]
        pos_vecs = model.item_embeddings[positives]
        neg_vecs = model.item_embeddings[negatives]
        pos_logits, pos_cache = model.forward(self.user_embedding, pos_vecs)
        neg_logits, neg_cache = model.forward(self.user_embedding, neg_vecs)
        _, dpos, dneg = bpr_loss_and_grad(pos_logits, neg_logits)
        pos_bundle = model.backward(pos_cache, dpos)
        neg_bundle = model.backward(neg_cache, dneg)
        user_grad = pos_bundle.users.sum(axis=0) + neg_bundle.users.sum(axis=0)
        item_ids = np.concatenate([positives, negatives])
        item_grads = np.concatenate([pos_bundle.items, neg_bundle.items])
        # BPR may pair the same negative with several positives when the
        # catalogue is small; merge duplicate rows to keep uploads valid.
        # The merge buffer inherits the gradient dtype so reduced-
        # precision models upload at their own precision.
        unique_ids, inverse = np.unique(item_ids, return_inverse=True)
        merged = np.zeros((len(unique_ids), item_grads.shape[1]), dtype=item_grads.dtype)
        np.add.at(merged, inverse, item_grads)
        return unique_ids, merged, user_grad
