"""Sharded shared-memory backing store for benign client state.

The dense :class:`~repro.federated.state.ClientStateStore` keeps the
whole population in one in-process ``(num_users, dim)`` matrix — at
10M users x dim 64 that is ~2.5 GB *per process copy*, which makes
memory (not arithmetic) the binding constraint for "millions of
users".  :class:`ShardedStateStore` keeps the same state split into
``num_shards`` contiguous user-id ranges, each range backed by named
POSIX shared-memory segments (``multiprocessing.shared_memory``) or by
anonymous fork-shared mappings:

* ``emb``     — the shard's ``(n, dim)`` float64 embedding rows;
* ``indptr``  — the shard's *local* CSR offsets, ``(n + 1,)`` int64
  (entry 0 is always 0: global offsets minus ``indptr[lo]``);
* ``indices`` — the shard's positive-item ids, ``(nnz,)`` int64;
* ``lr``      — optionally, the shard's per-client learning-rate
  draws for the inconsistent-rate scenario, ``(n,)`` float64.

A small JSON :class:`ShardManifest` (segment names, dtypes, shapes,
user-id ranges, creator pid, config digest) is the only thing that
crosses process boundaries: a worker attaches the segments it needs
zero-copy and sees the *live* state, so N workers cost ~one dataset of
RSS instead of N.

Regularizers are the one piece that cannot live in a segment: the
client-side defense keeps genuinely per-user mutable Python objects.
They stay in the creating process exactly as in the dense store; the
multi-process executor refuses regularized configs loudly instead of
silently diverging (see
:class:`~repro.federated.batch_engine.ProcessRoundExecutor`).

Lifecycle rules (the PR 9 lease machinery's spirit, applied to shm):

* segments are *refcounted per process* — attaching the same segment
  twice maps it once; the last detach closes the mapping;
* the **creator** unlinks its segments on :meth:`close`, at garbage
  collection and at interpreter exit (``weakref.finalize`` covers both);
  attachers only ever close, never unlink;
* segment names embed the creator pid and a random run token
  (``repro_shm_<pid>_<token>_...``), so a segment whose creator is dead
  is detectably *stale*: :meth:`ShardedStateStore.attach` refuses it,
  and ``repro fsck`` lists (and with ``--repair`` unlinks) such
  orphans while never touching foreign /dev/shm entries.
"""

from __future__ import annotations

import dataclasses
import json
import mmap
import os
import uuid
import weakref

import numpy as np

from repro.rng import spawn_first_uniform, spawn_normal_rows

__all__ = [
    "ShardManifest",
    "ShardedStateStore",
    "SharedDatasetExport",
    "CSRRaggedList",
    "EmbeddingMatrixView",
    "shard_bounds",
    "segment_prefix",
    "list_repro_segments",
    "orphaned_segments",
    "unlink_segment",
    "shared_memory_available",
]

MANIFEST_VERSION = "shards-v1"
DATASET_MANIFEST_VERSION = "dsexport-v1"

#: Every segment this library creates starts with this prefix; fsck
#: only ever looks at (and only ever unlinks) names under it.
SEGMENT_PREFIX = "repro_shm_"
SHM_DIR = "/dev/shm"


def segment_prefix(pid: int | None = None, token: str | None = None) -> str:
    """Name prefix for this process (or the given pid/token)."""
    parts = [SEGMENT_PREFIX[:-1], str(os.getpid() if pid is None else pid)]
    if token is not None:
        parts.append(token)
    return "_".join(parts) + "_"


def shared_memory_available() -> bool:
    """Whether named POSIX shared memory is usable on this host."""
    return os.path.isdir(SHM_DIR)


# ----------------------------------------------------------------------
# Segment layer: refcounted named-shm / anonymous-mmap buffers
# ----------------------------------------------------------------------

class _Mapping:
    """One mapped segment plus its per-process refcount."""

    __slots__ = ("buf", "refs", "shm", "mm")

    def __init__(self, buf, shm=None, mm=None):
        self.buf = buf
        self.refs = 1
        self.shm = shm
        self.mm = mm


#: name -> _Mapping for every *named* segment mapped in this process.
_MAPPINGS: dict[str, _Mapping] = {}

#: SharedMemory objects whose close() failed because caller-held views
#: still point into the buffer (e.g. a zero-copy dataset outliving its
#: export).  Kept alive so the garbage collector never runs their
#: ``__del__`` — which would retry the close and surface the same
#: BufferError as an unraisable warning; the OS reclaims the mapping
#: at process exit.
_ZOMBIE_MAPPINGS: list[object] = []


def _shm_open(name: str, size: int, create: bool):
    """Create or attach one named segment, refcounted per process.

    Attaching goes through :mod:`multiprocessing.shared_memory`; the
    attach side immediately unregisters from the resource tracker —
    only the *creator* may unlink, and the tracker would otherwise
    unlink (and warn about) segments it merely attached on 3.10/3.11.
    """
    from multiprocessing import resource_tracker, shared_memory

    mapping = _MAPPINGS.get(name)
    if mapping is not None:
        if create:
            raise FileExistsError(f"segment {name!r} already mapped here")
        mapping.refs += 1
        return mapping.buf
    shm = shared_memory.SharedMemory(
        name=name, create=create, size=max(1, size) if create else 0
    )
    if not create:
        try:  # pragma: no cover - tracker layout is an implementation detail
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        if shm.size < size:
            shm.close()
            raise ValueError(
                f"segment {name!r} holds {shm.size} bytes, "
                f"manifest expects {size}"
            )
    _MAPPINGS[name] = _Mapping(shm.buf, shm=shm)
    return shm.buf


def _shm_release(name: str) -> None:
    """Drop one reference; close the mapping when none remain."""
    mapping = _MAPPINGS.get(name)
    if mapping is None:
        return
    mapping.refs -= 1
    if mapping.refs <= 0:
        del _MAPPINGS[name]
        try:
            # Views into the buffer may still be alive in caller hands;
            # memoryview release errors just mean "in use", and the
            # mapping then lives until the process exits.
            mapping.shm.close()
        except BufferError:
            _ZOMBIE_MAPPINGS.append(mapping.shm)


def unlink_segment(name: str) -> bool:
    """Unlink one named segment; ``True`` if it existed."""
    if not name.startswith(SEGMENT_PREFIX):
        raise ValueError(f"refusing to unlink foreign segment {name!r}")
    try:
        os.unlink(os.path.join(SHM_DIR, name))
        removed = True
    except (FileNotFoundError, OSError):
        removed = False
    # The creating process registered the segment with the resource
    # tracker at SharedMemory() time; deregister so the tracker does
    # not warn about (and re-attempt) already-unlinked segments at
    # interpreter shutdown.
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass
    return removed


class _SegmentSet:
    """All segments owned or attached by one store, as ndarrays."""

    def __init__(self, backend: str):
        if backend not in ("shm", "mmap"):
            raise ValueError(f"unknown segment backend {backend!r}")
        if backend == "shm" and not shared_memory_available():
            raise RuntimeError(
                f"backend 'shm' requested but {SHM_DIR} is unavailable; "
                f"use shared_memory=False (anonymous mmap) instead"
            )
        self.backend = backend
        self.names: list[str] = []
        self._anon: list[mmap.mmap] = []
        self.created = False

    def new(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Allocate one zero-filled segment owned by this set."""
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if self.backend == "shm":
            buf = _shm_open(name, nbytes, create=True)
            self.names.append(name)
        else:
            mm = mmap.mmap(-1, max(1, nbytes))
            self._anon.append(mm)
            buf = mm
        self.created = True
        array = np.frombuffer(buf, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)))
        return array.reshape(shape)

    def attach(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Map an existing named segment (shm backend only)."""
        if self.backend != "shm":
            raise RuntimeError(
                "anonymous-mmap segments cannot be attached by name; "
                "they are shared only with fork-inherited children"
            )
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        buf = _shm_open(name, nbytes, create=False)
        self.names.append(name)
        array = np.frombuffer(buf, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)))
        return array.reshape(shape)

    def release(self, *, unlink: bool) -> None:
        for name in self.names:
            _shm_release(name)
            if unlink:
                unlink_segment(name)
        self.names = []
        for mm in self._anon:
            try:
                mm.close()
            except BufferError:  # pragma: no cover - caller still holds views
                pass
        self._anon = []


def _cleanup_segments(segments: _SegmentSet, unlink: bool, owner_pid: int) -> None:
    """Finalizer body shared by stores and dataset exports.

    Fork-inherited copies of a creator object carry its finalizer too;
    the pid guard makes sure only the *creating process* ever unlinks —
    a worker dropping its inherited reference must not reap segments
    the parent still serves.
    """
    segments.release(unlink=unlink and os.getpid() == owner_pid)


# ----------------------------------------------------------------------
# Shard geometry
# ----------------------------------------------------------------------

def shard_bounds(num_users: int, num_shards: int) -> np.ndarray:
    """Contiguous, balanced shard boundaries: ``bounds[s] : bounds[s+1]``.

    Every user id in ``[0, num_users)`` falls in exactly one shard and
    shard sizes differ by at most one (the first ``num_users mod
    num_shards`` shards get the extra user) — both properties are
    pinned by hypothesis tests.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_users < 0:
        raise ValueError("num_users must be >= 0")
    num_shards = min(num_shards, max(1, num_users))
    base, extra = divmod(num_users, num_shards)
    sizes = np.full(num_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(num_shards + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def _shard_of(bounds: np.ndarray, user_ids: np.ndarray) -> np.ndarray:
    """Shard index of every user id (``bounds`` from :func:`shard_bounds`)."""
    ids = np.asarray(user_ids, dtype=np.int64)
    return np.searchsorted(bounds, ids, side="right") - 1


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ShardManifest:
    """Everything a worker needs to attach a store's segments."""

    token: str
    pid: int
    backend: str  # "shm" | "mmap"
    num_users: int
    num_items: int
    embedding_dim: int
    seed: int
    config_digest: str
    #: ``(lo, hi, nnz)`` per shard, in shard order.
    shards: tuple[tuple[int, int, int], ...]
    #: Field -> segment name per shard (empty names for mmap backend).
    segments: tuple[dict[str, str], ...]
    lr_range: tuple[float, float] | None = None
    version: str = MANIFEST_VERSION

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def bounds(self) -> np.ndarray:
        return np.asarray(
            [lo for lo, _, _ in self.shards] + [self.num_users],
            dtype=np.int64,
        )

    def to_json(self) -> str:
        record = dataclasses.asdict(self)
        record["shards"] = [list(entry) for entry in self.shards]
        record["segments"] = [dict(entry) for entry in self.segments]
        if self.lr_range is not None:
            record["lr_range"] = [float(v) for v in self.lr_range]
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardManifest":
        record = json.loads(text)
        version = record.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported shard manifest version {version!r} "
                f"(expected {MANIFEST_VERSION!r})"
            )
        lr_range = record.get("lr_range")
        return cls(
            token=record["token"],
            pid=int(record["pid"]),
            backend=record["backend"],
            num_users=int(record["num_users"]),
            num_items=int(record["num_items"]),
            embedding_dim=int(record["embedding_dim"]),
            seed=int(record["seed"]),
            config_digest=record.get("config_digest", ""),
            shards=tuple(
                (int(lo), int(hi), int(nnz))
                for lo, hi, nnz in record["shards"]
            ),
            segments=tuple(
                {str(k): str(v) for k, v in entry.items()}
                for entry in record["segments"]
            ),
            lr_range=None if lr_range is None else (
                float(lr_range[0]), float(lr_range[1])
            ),
        )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    return True


# ----------------------------------------------------------------------
# The sharded store
# ----------------------------------------------------------------------

class _Shard:
    """One contiguous user range's mapped arrays."""

    __slots__ = ("lo", "hi", "emb", "indptr", "indices", "lr")

    def __init__(self, lo, hi, emb, indptr, indices, lr=None):
        self.lo = lo
        self.hi = hi
        self.emb = emb
        self.indptr = indptr
        self.indices = indices
        self.lr = lr


class ShardedStateStore:
    """Drop-in :class:`ClientStateStore` backed by per-shard segments.

    Implements the exact store surface the batch engine, the
    ``BenignClient`` view layer, streaming evaluation and checkpoints
    consume — gather/scatter/row access, CSR positives, per-client
    learning rates, lazy regularizers — with the arrays living in
    shared segments instead of one dense private matrix.  Bit-identity
    with the dense store is asserted by the parity suite.
    """

    def __init__(
        self,
        manifest: ShardManifest,
        segments: _SegmentSet,
        shards: dict[int, _Shard],
        *,
        regularizer_factory=None,
        created: bool,
    ):
        self.manifest = manifest
        self.num_items = manifest.num_items
        self._seed = manifest.seed
        self._segments = segments
        self._shards = shards
        self._bounds = manifest.bounds()
        self._created = created
        self._regularizer_factory = regularizer_factory
        self._regularizers: dict[int, object] = {}
        self._client_lr_cache: tuple[tuple[float, float], np.ndarray] | None = None
        self._closed = False
        # Covers explicit close, garbage collection and interpreter
        # exit: the creator unlinks, attachers merely unmap.
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, segments, created, os.getpid()
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        train_pos,
        num_items: int,
        embedding_dim: int,
        *,
        seed: int = 0,
        init_scale: float = 0.1,
        regularizer_factory=None,
        num_shards: int = 1,
        backend: str = "shm",
        lr_range: tuple[float, float] | None = None,
        config_digest: str = "",
    ) -> "ShardedStateStore":
        """Build from ragged positive-item lists (or a CSR-backed one).

        Row ``u`` of the sharded embedding state is bit-identical to
        the dense store's: each shard draws its rows through the same
        per-user ``spawn_normal_rows`` stream, just restricted to its
        own id range.
        """
        if hasattr(train_pos, "csr_arrays"):
            indptr, indices = train_pos.csr_arrays()
        else:
            num_users = len(train_pos)
            lengths = np.fromiter(
                (len(items) for items in train_pos),
                dtype=np.int64,
                count=num_users,
            )
            indptr = np.zeros(num_users + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            indices = (
                np.ascontiguousarray(np.concatenate(train_pos), dtype=np.int64)
                if num_users
                else np.empty(0, dtype=np.int64)
            )
        return cls.from_csr(
            indptr,
            indices,
            num_items,
            embedding_dim,
            seed=seed,
            init_scale=init_scale,
            regularizer_factory=regularizer_factory,
            num_shards=num_shards,
            backend=backend,
            lr_range=lr_range,
            config_digest=config_digest,
        )

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        num_items: int,
        embedding_dim: int,
        *,
        seed: int = 0,
        init_scale: float = 0.1,
        regularizer_factory=None,
        num_shards: int = 1,
        backend: str = "shm",
        lr_range: tuple[float, float] | None = None,
        config_digest: str = "",
    ) -> "ShardedStateStore":
        """Build directly from global CSR arrays (no ragged list)."""
        num_users = len(indptr) - 1
        bounds = shard_bounds(num_users, num_shards)
        token = uuid.uuid4().hex[:12]
        pid = os.getpid()
        segments = _SegmentSet(backend)
        shard_meta: list[tuple[int, int, int]] = []
        shard_names: list[dict[str, str]] = []
        shards: dict[int, _Shard] = {}
        try:
            for s in range(len(bounds) - 1):
                lo, hi = int(bounds[s]), int(bounds[s + 1])
                n = hi - lo
                nnz = int(indptr[hi] - indptr[lo])
                names = {}

                def _segment(field, shape, dtype):
                    if backend == "shm":
                        name = f"{segment_prefix(pid, token)}{field}_{s:04d}"
                        names[field] = name
                        return segments.new(name, shape, dtype)
                    return segments.new("", shape, dtype)

                emb = _segment("emb", (n, embedding_dim), np.float64)
                emb[...] = spawn_normal_rows(
                    seed,
                    ("client-init",),
                    np.arange(lo, hi),
                    embedding_dim,
                    scale=init_scale,
                )
                local_indptr = _segment("indptr", (n + 1,), np.int64)
                local_indptr[...] = indptr[lo : hi + 1] - indptr[lo]
                local_indices = _segment("indices", (nnz,), np.int64)
                local_indices[...] = indices[indptr[lo] : indptr[hi]]
                lr = None
                if lr_range is not None:
                    low, high = lr_range
                    lr = _segment("lr", (n,), np.float64)
                    lr[...] = np.exp(
                        spawn_first_uniform(
                            seed,
                            ("client-lr",),
                            np.arange(lo, hi),
                            float(np.log(low)),
                            float(np.log(high)),
                        )
                    )
                shard_meta.append((lo, hi, nnz))
                shard_names.append(names)
                shards[s] = _Shard(lo, hi, emb, local_indptr, local_indices, lr)
        except BaseException:
            segments.release(unlink=True)
            raise
        manifest = ShardManifest(
            token=token,
            pid=pid,
            backend=backend,
            num_users=num_users,
            num_items=num_items,
            embedding_dim=embedding_dim,
            seed=seed,
            config_digest=config_digest,
            shards=tuple(shard_meta),
            segments=tuple(shard_names),
            lr_range=None if lr_range is None else (
                float(lr_range[0]), float(lr_range[1])
            ),
        )
        return cls(
            manifest,
            segments,
            shards,
            regularizer_factory=regularizer_factory,
            created=True,
        )

    @classmethod
    def attach(
        cls,
        manifest: ShardManifest | str,
        *,
        shard_ids=None,
        regularizer_factory=None,
        allow_stale: bool = False,
    ) -> "ShardedStateStore":
        """Attach an existing store's segments (shm backend only).

        ``shard_ids`` restricts the attachment to a subset of shards —
        a round worker maps only the ranges it owns.  Attaching
        segments whose creator process is dead raises (they are stale
        orphans fsck should reap), unless ``allow_stale`` is set.
        """
        if isinstance(manifest, str):
            manifest = ShardManifest.from_json(manifest)
        if manifest.backend != "shm":
            raise RuntimeError(
                "only named shared-memory stores can be attached by "
                "manifest; anonymous-mmap stores are fork-inherited"
            )
        if not allow_stale and not _pid_alive(manifest.pid):
            raise RuntimeError(
                f"stale shard segments: creator pid {manifest.pid} is "
                f"dead (run `repro fsck --repair` to reap orphans)"
            )
        wanted = (
            range(manifest.num_shards)
            if shard_ids is None
            else sorted(int(s) for s in shard_ids)
        )
        segments = _SegmentSet("shm")
        shards: dict[int, _Shard] = {}
        dim = manifest.embedding_dim
        try:
            for s in wanted:
                lo, hi, nnz = manifest.shards[s]
                names = manifest.segments[s]
                n = hi - lo
                emb = segments.attach(names["emb"], (n, dim), np.float64)
                indptr = segments.attach(names["indptr"], (n + 1,), np.int64)
                indices = segments.attach(names["indices"], (nnz,), np.int64)
                lr = None
                if "lr" in names:
                    lr = segments.attach(names["lr"], (n,), np.float64)
                shards[s] = _Shard(lo, hi, emb, indptr, indices, lr)
        except BaseException:
            segments.release(unlink=False)
            raise
        return cls(
            manifest,
            segments,
            shards,
            regularizer_factory=regularizer_factory,
            created=False,
        )

    # -- lifecycle ------------------------------------------------------

    @property
    def created(self) -> bool:
        return self._created

    @property
    def backend(self) -> str:
        return self.manifest.backend

    @property
    def attached_shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def close(self) -> None:
        """Detach (and, for the creator, unlink) all segments."""
        if not self._closed:
            self._closed = True
            self._shards = {}
            self._finalizer()

    # -- shape ----------------------------------------------------------

    @property
    def num_users(self) -> int:
        return self.manifest.num_users

    @property
    def embedding_dim(self) -> int:
        return self.manifest.embedding_dim

    def _shard_for_user(self, user_id: int) -> _Shard:
        if not 0 <= user_id < self.num_users:
            raise IndexError(f"user id {user_id} out of range")
        s = int(_shard_of(self._bounds, np.asarray([user_id]))[0])
        try:
            return self._shards[s]
        except KeyError:
            raise KeyError(
                f"shard {s} (user {user_id}) is not attached here; "
                f"attached: {self.attached_shard_ids}"
            ) from None

    # -- embedding access API -------------------------------------------

    def gather_rows(self, user_ids: np.ndarray) -> np.ndarray:
        """Copy of the users' embedding rows, in ``user_ids`` order."""
        ids = np.asarray(user_ids, dtype=np.int64)
        out = np.empty((len(ids), self.embedding_dim), dtype=np.float64)
        owners = _shard_of(self._bounds, ids)
        for s in np.unique(owners):
            shard = self._shards.get(int(s))
            if shard is None:
                raise KeyError(
                    f"shard {int(s)} is not attached here; "
                    f"attached: {self.attached_shard_ids}"
                )
            sel = owners == s
            out[sel] = shard.emb[ids[sel] - shard.lo]
        return out

    def scatter_rows(self, user_ids: np.ndarray, rows: np.ndarray) -> None:
        """Write one row per user id (ids must be distinct)."""
        ids = np.asarray(user_ids, dtype=np.int64)
        rows = np.asarray(rows)
        owners = _shard_of(self._bounds, ids)
        for s in np.unique(owners):
            shard = self._shards.get(int(s))
            if shard is None:
                raise KeyError(
                    f"shard {int(s)} is not attached here; "
                    f"attached: {self.attached_shard_ids}"
                )
            sel = owners == s
            shard.emb[ids[sel] - shard.lo] = rows[sel]

    def row(self, user_id: int) -> np.ndarray:
        """One user's embedding row — a live view into its segment."""
        shard = self._shard_for_user(int(user_id))
        return shard.emb[int(user_id) - shard.lo]

    def set_row(self, user_id: int, value: np.ndarray) -> None:
        shard = self._shard_for_user(int(user_id))
        shard.emb[int(user_id) - shard.lo] = value

    def embedding_block(self, lo: int, hi: int) -> np.ndarray:
        """Users ``[lo, hi)``; zero-copy when one shard covers them."""
        first = int(_shard_of(self._bounds, np.asarray([lo]))[0]) if hi > lo else 0
        shard = self._shards.get(first)
        if hi <= lo:
            return np.empty((0, self.embedding_dim), dtype=np.float64)
        if shard is not None and shard.lo <= lo and hi <= shard.hi:
            return shard.emb[lo - shard.lo : hi - shard.lo]
        out = np.empty((hi - lo, self.embedding_dim), dtype=np.float64)
        cursor = lo
        while cursor < hi:
            shard = self._shard_for_user(cursor)
            stop = min(hi, shard.hi)
            out[cursor - lo : stop - lo] = shard.emb[
                cursor - shard.lo : stop - shard.lo
            ]
            cursor = stop
        return out

    def snapshot_embeddings(self) -> np.ndarray:
        """Dense copy of the full matrix (checkpoint capture)."""
        return np.ascontiguousarray(self.embedding_block(0, self.num_users))

    def load_embeddings(self, matrix: np.ndarray) -> None:
        """Restore every shard from a dense checkpoint copy."""
        if matrix.shape != (self.num_users, self.embedding_dim):
            raise ValueError(
                f"embedding snapshot shape {matrix.shape} does not match "
                f"store ({self.num_users}, {self.embedding_dim})"
            )
        for s in range(self.manifest.num_shards):
            shard = self._shards.get(s)
            if shard is None:
                raise KeyError(
                    f"cannot restore shard {s}: not attached here"
                )
            shard.emb[...] = matrix[shard.lo : shard.hi]

    # -- CSR positives --------------------------------------------------

    def positives(self, user_id: int) -> np.ndarray:
        """User's positive items — a zero-copy slice of its segment."""
        shard = self._shard_for_user(int(user_id))
        local = int(user_id) - shard.lo
        return shard.indices[shard.indptr[local] : shard.indptr[local + 1]]

    def positives_list(self, user_ids: np.ndarray) -> list[np.ndarray]:
        return [self.positives(int(user_id)) for user_id in user_ids]

    def to_ragged(self) -> list[np.ndarray]:
        return [self.positives(u).copy() for u in range(self.num_users)]

    def train_mask_block(self, lo: int, hi: int) -> np.ndarray:
        """Boolean ``(hi - lo, num_items)`` training-interaction mask."""
        block = np.zeros((hi - lo, self.num_items), dtype=bool)
        cursor = lo
        while cursor < hi:
            shard = self._shard_for_user(cursor)
            stop = min(hi, shard.hi)
            a, b = cursor - shard.lo, stop - shard.lo
            counts = np.diff(shard.indptr[a : b + 1])
            rows = np.repeat(np.arange(cursor - lo, stop - lo), counts)
            cols = shard.indices[shard.indptr[a] : shard.indptr[b]]
            block[rows, cols] = True
            cursor = stop
        return block

    # -- per-client scalar state ----------------------------------------

    def client_lrs(self, lr_range: tuple[float, float]) -> np.ndarray:
        """Every client's fixed local learning rate (needs all shards)."""
        low, high = lr_range
        if not 0 < low <= high:
            raise ValueError("client_lr_range must satisfy 0 < low <= high")
        if self._client_lr_cache is None or self._client_lr_cache[0] != (low, high):
            self._client_lr_cache = (
                (low, high),
                self.client_lrs_for(lr_range, np.arange(self.num_users)),
            )
        return self._client_lr_cache[1]

    def client_lrs_for(
        self, lr_range: tuple[float, float], user_ids: np.ndarray
    ) -> np.ndarray:
        """The given users' rates, served from segments when possible."""
        low, high = lr_range
        if not 0 < low <= high:
            raise ValueError("client_lr_range must satisfy 0 < low <= high")
        ids = np.asarray(user_ids, dtype=np.int64)
        if self.manifest.lr_range == (float(low), float(high)):
            out = np.empty(len(ids), dtype=np.float64)
            owners = _shard_of(self._bounds, ids)
            for s in np.unique(owners):
                shard = self._shards.get(int(s))
                if shard is None or shard.lr is None:
                    break
                sel = owners == s
                out[sel] = shard.lr[ids[sel] - shard.lo]
            else:
                return out
        # Range differs from the one baked into the segments (or no lr
        # segments exist): the draws are a pure function of
        # (seed, user_id), so recompute exactly the scalar reference.
        return np.exp(
            spawn_first_uniform(
                self._seed,
                ("client-lr",),
                ids,
                float(np.log(low)),
                float(np.log(high)),
            )
        )

    # -- regularizers (per-user Python state, creator-process only) -----

    @property
    def has_regularizers(self) -> bool:
        return self._regularizer_factory is not None or bool(self._regularizers)

    def regularizer(self, user_id: int):
        try:
            return self._regularizers[user_id]
        except KeyError:
            if self._regularizer_factory is None:
                return None
            regularizer = self._regularizer_factory()
            self._regularizers[user_id] = regularizer
            return regularizer

    def set_regularizer(self, user_id: int, regularizer) -> None:
        self._regularizers[user_id] = regularizer


# ----------------------------------------------------------------------
# Shared-memory dataset export (sweep worker pools)
# ----------------------------------------------------------------------

class CSRRaggedList:
    """Read-only ragged ``train_pos`` facade over CSR arrays.

    ``dataset.train_pos[u]`` stays a per-user int64 array (a zero-copy
    slice of the shared ``indices`` segment), but no per-user Python
    list of a million arrays is ever materialised.  Store builders
    shortcut through :meth:`csr_arrays`.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self._indptr = indptr
        self._indices = indices

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self._indptr, self._indices

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def __getitem__(self, user_id):
        if isinstance(user_id, slice):
            return [self[i] for i in range(*user_id.indices(len(self)))]
        if user_id < 0:
            user_id += len(self)
        if not 0 <= user_id < len(self):
            raise IndexError("train_pos index out of range")
        return self._indices[self._indptr[user_id] : self._indptr[user_id + 1]]

    def __iter__(self):
        return (self[u] for u in range(len(self)))


class EmbeddingMatrixView:
    """Sliceable user-embedding facade over a sharded store.

    Streaming evaluation (``model.score_blocks``) only needs ``len()``
    and contiguous ``[lo:hi]`` slices; this adapter serves both from
    :meth:`ShardedStateStore.embedding_block` without ever
    materialising the dense ``num_users x dim`` matrix, so the
    block-wise scores are bit-identical to the dense store's.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "ShardedStateStore"):
        self._store = store

    def __len__(self) -> int:
        return self._store.num_users

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), self._store.embedding_dim)

    def __getitem__(self, key):
        if isinstance(key, slice):
            lo, hi, step = key.indices(len(self))
            if step != 1:
                raise ValueError("EmbeddingMatrixView supports step-1 slices only")
            return self._store.embedding_block(lo, hi)
        return self._store.row(int(key))


class SharedDatasetExport:
    """One dataset packed into named segments for worker-pool attach.

    Replaces the sweep pool's pickle-once initializer payload: the
    parent exports each dataset once (CSR ``indptr``/``indices`` plus
    ``test_items``), workers attach by manifest and reconstruct an
    :class:`~repro.datasets.base.InteractionDataset` whose per-user
    arrays are zero-copy views into the shared segments — N workers
    cost ~one dataset of RSS, not N.
    """

    def __init__(self, manifest: dict, segments: _SegmentSet, dataset, created: bool):
        self.manifest = manifest
        self._segments = segments
        self.dataset = dataset
        self._created = created
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, segments, created, os.getpid()
        )

    @classmethod
    def create(cls, dataset) -> "SharedDatasetExport":
        """Export one dataset into fresh named segments."""
        indptr, indices = dataset.train_csr()
        token = uuid.uuid4().hex[:12]
        pid = os.getpid()
        prefix = segment_prefix(pid, token)
        segments = _SegmentSet("shm")
        try:
            shared_indptr = segments.new(
                f"{prefix}ds_indptr", indptr.shape, np.int64
            )
            shared_indptr[...] = indptr
            shared_indices = segments.new(
                f"{prefix}ds_indices", (max(len(indices), 0),), np.int64
            )
            shared_indices[...] = indices
            test_items = np.ascontiguousarray(dataset.test_items, dtype=np.int64)
            shared_test = segments.new(
                f"{prefix}ds_test", test_items.shape, np.int64
            )
            shared_test[...] = test_items
        except BaseException:
            segments.release(unlink=True)
            raise
        manifest = {
            "version": DATASET_MANIFEST_VERSION,
            "token": token,
            "pid": pid,
            "name": dataset.name,
            "num_users": int(dataset.num_users),
            "num_items": int(dataset.num_items),
            "nnz": int(len(indices)),
            "segments": {
                "indptr": f"{prefix}ds_indptr",
                "indices": f"{prefix}ds_indices",
                "test_items": f"{prefix}ds_test",
            },
        }
        return cls(manifest, segments, dataset, created=True)

    @classmethod
    def attach(cls, manifest: dict) -> "SharedDatasetExport":
        """Attach an exported dataset; zero-copy reconstruction."""
        from repro.datasets.base import InteractionDataset

        if manifest.get("version") != DATASET_MANIFEST_VERSION:
            raise ValueError(
                f"unsupported dataset export version "
                f"{manifest.get('version')!r}"
            )
        if not _pid_alive(int(manifest["pid"])):
            raise RuntimeError(
                f"stale dataset export: creator pid {manifest['pid']} is dead"
            )
        num_users = int(manifest["num_users"])
        nnz = int(manifest["nnz"])
        names = manifest["segments"]
        segments = _SegmentSet("shm")
        try:
            indptr = segments.attach(names["indptr"], (num_users + 1,), np.int64)
            indices = segments.attach(names["indices"], (nnz,), np.int64)
            test_items = segments.attach(
                names["test_items"], (num_users,), np.int64
            )
        except BaseException:
            segments.release(unlink=False)
            raise
        dataset = InteractionDataset.from_csr(
            name=manifest["name"],
            num_users=num_users,
            num_items=int(manifest["num_items"]),
            indptr=indptr,
            indices=indices,
            test_items=test_items,
        )
        return cls(manifest, segments, dataset, created=False)

    def close(self) -> None:
        self._finalizer()


# ----------------------------------------------------------------------
# Segment hygiene (consumed by `repro fsck`)
# ----------------------------------------------------------------------

def list_repro_segments(shm_dir: str = SHM_DIR) -> list[dict]:
    """Every repro-owned segment visible in ``shm_dir``.

    Foreign names (anything without the ``repro_shm_`` prefix) are
    never reported, let alone unlinked.  Each record carries the
    parsed creator pid and whether that process is still alive.
    """
    records: list[dict] = []
    try:
        names = sorted(os.listdir(shm_dir))
    except OSError:
        return records
    for name in names:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        parts = name[len(SEGMENT_PREFIX):].split("_", 1)
        try:
            pid = int(parts[0])
        except (ValueError, IndexError):
            pid = -1
        try:
            size = os.path.getsize(os.path.join(shm_dir, name))
        except OSError:
            size = 0
        records.append(
            {
                "name": name,
                "pid": pid,
                "alive": pid > 0 and _pid_alive(pid),
                "bytes": size,
            }
        )
    return records


def orphaned_segments(shm_dir: str = SHM_DIR) -> list[dict]:
    """Repro segments whose creator process is dead (safe to unlink)."""
    return [rec for rec in list_repro_segments(shm_dir) if not rec["alive"]]
