"""Struct-of-arrays backing store for all benign client state.

The reference representation of the benign population is one Python
:class:`~repro.federated.client.BenignClient` object per user: a
private ``(dim,)`` embedding, a private interaction array, an optional
defense regularizer and a handful of scalars.  At production user
counts the *state layer* — not the round arithmetic — becomes the
binding constraint: construction spawns one RNG and one small array
per user in a Python loop, and every batched round re-stacks the
per-object rows it needs.

:class:`ClientStateStore` keeps the same state as flat arrays:

* ``user_embeddings`` — one dense ``(num_users, dim)`` matrix holding
  every private embedding, initialised bit-identically to the per-user
  ``spawn(seed, "client-init", u)`` draws via
  :func:`~repro.rng.spawn_normal_rows` (parity is asserted in the test
  suite).  Row ``u`` *is* user ``u``'s embedding; the batch engine
  gathers and scatters participant rows by fancy indexing, and
  analysis code reads the whole matrix zero-copy.
* ``train_indptr`` / ``train_indices`` — the users' positive-item
  lists in CSR form: user ``u`` owns
  ``train_indices[train_indptr[u]:train_indptr[u + 1]]``, a zero-copy
  slice identical to the ragged ``dataset.train_pos[u]`` array.
* per-client learning rates — the inconsistent-learning-rate scenario
  draws every client's fixed rate in one vectorised
  :func:`~repro.rng.spawn_first_uniform` pass (cached), bit-identical
  to the scalar ``spawn(seed, "client-lr", u)`` draws.
* regularizers — the paper's client-side defense keeps genuinely
  per-user mutable state (each client runs its own popular-item
  miner), so those objects stay per-user Python state, created
  *lazily* on first access: an undefended store never allocates any,
  and a defended one only pays for users that actually participate.

The object API survives as a thin view layer:
:meth:`~repro.federated.client.BenignClient.from_store` wraps a store
row in a ``BenignClient`` whose attributes read and write the store
arrays, and :class:`ClientViewList` materialises those views lazily so
building a million-user simulation costs a few array ops, not a
million object constructions.
"""

from __future__ import annotations

import numpy as np

from repro.rng import spawn_first_uniform, spawn_normal_rows

__all__ = ["ClientStateStore", "ClientViewList", "row_composite_indices"]


def row_composite_indices(user_ids: np.ndarray, dim: int) -> np.ndarray:
    """Flat indices of users' embedding rows in the C-order matrix.

    ``user_ids`` may arrive as int32 (e.g. from ``np.unique`` on 32-bit
    inputs); the product ``user_id * dim`` overflows int32 as soon as
    ``num_users * dim > 2**31`` (~33M users at dim 64), so the ids are
    upcast to int64 *before* the multiply — the same class of bug as
    the ``scatter_sum`` int32 overflow fixed for the item axis.
    """
    ids = np.asarray(user_ids).astype(np.int64, copy=False)
    offsets = np.arange(dim, dtype=np.int64)
    return (ids[:, None] * np.int64(dim) + offsets).reshape(-1)


class ClientStateStore:
    """Flat-array state for the whole benign client population."""

    def __init__(
        self,
        user_embeddings: np.ndarray,
        train_indptr: np.ndarray,
        train_indices: np.ndarray,
        num_items: int,
        *,
        seed: int = 0,
        regularizer_factory=None,
    ):
        if user_embeddings.ndim != 2:
            raise ValueError("user_embeddings must be (num_users, dim)")
        if len(train_indptr) != len(user_embeddings) + 1:
            raise ValueError(
                f"train_indptr has {len(train_indptr)} entries for "
                f"{len(user_embeddings)} users"
            )
        self.user_embeddings = user_embeddings
        self.train_indptr = train_indptr
        self.train_indices = train_indices
        self.num_items = num_items
        self._seed = seed
        self._regularizer_factory = regularizer_factory
        self._regularizers: dict[int, object] = {}
        self._client_lr_cache: tuple[tuple[float, float], np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        train_pos: list[np.ndarray],
        num_items: int,
        embedding_dim: int,
        *,
        seed: int = 0,
        init_scale: float = 0.1,
        regularizer_factory=None,
    ) -> "ClientStateStore":
        """Build the store for a dataset's ragged positive-item lists.

        The embedding matrix reproduces, row for row, the draws the
        object-per-user path makes (``spawn(seed, "client-init", u)``),
        so a store-backed simulation is bit-identical to the reference
        — it just derives all seeds, hashes all entropy pools and packs
        all interactions in vectorised passes.
        """
        num_users = len(train_pos)
        embeddings = spawn_normal_rows(
            seed,
            ("client-init",),
            np.arange(num_users),
            embedding_dim,
            scale=init_scale,
        )
        if hasattr(train_pos, "csr_arrays"):
            # CSR-backed ragged facade (shared-memory attach path):
            # adopt its arrays directly instead of re-concatenating a
            # million per-user slices.
            indptr, indices = train_pos.csr_arrays()
            indptr = np.ascontiguousarray(indptr, dtype=np.int64)
            indices = np.ascontiguousarray(indices, dtype=np.int64)
        else:
            lengths = np.fromiter(
                (len(items) for items in train_pos),
                dtype=np.int64,
                count=num_users,
            )
            indptr = np.zeros(num_users + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            indices = (
                np.ascontiguousarray(np.concatenate(train_pos), dtype=np.int64)
                if num_users
                else np.empty(0, dtype=np.int64)
            )
        return cls(
            embeddings,
            indptr,
            indices,
            num_items,
            seed=seed,
            regularizer_factory=regularizer_factory,
        )

    # ------------------------------------------------------------------
    # Shape and slicing
    # ------------------------------------------------------------------

    @property
    def num_users(self) -> int:
        return len(self.user_embeddings)

    @property
    def embedding_dim(self) -> int:
        return self.user_embeddings.shape[1]

    # ------------------------------------------------------------------
    # Embedding access API
    #
    # Every reader/writer of user embeddings outside this module goes
    # through these methods (the batch engine, BenignClient views,
    # streaming eval, checkpoints) so a sharded store can implement the
    # same surface without ever materialising one dense matrix.
    # ------------------------------------------------------------------

    def gather_rows(self, user_ids: np.ndarray) -> np.ndarray:
        """Copy of the users' embedding rows, in ``user_ids`` order.

        Implemented as a flat ``np.take`` over int64 composite indices
        (see :func:`row_composite_indices` for why the upcast matters);
        the gathered *values* are identical to fancy row indexing.
        """
        matrix = self.user_embeddings
        if not matrix.flags.c_contiguous:
            return matrix[np.asarray(user_ids)]
        flat = row_composite_indices(user_ids, matrix.shape[1])
        return np.take(matrix.reshape(-1), flat).reshape(
            len(user_ids), matrix.shape[1]
        )

    def scatter_rows(self, user_ids: np.ndarray, rows: np.ndarray) -> None:
        """Write one row per user id (ids must be distinct)."""
        matrix = self.user_embeddings
        if not matrix.flags.c_contiguous:
            matrix[np.asarray(user_ids)] = rows
            return
        flat = row_composite_indices(user_ids, matrix.shape[1])
        matrix.reshape(-1)[flat] = np.ascontiguousarray(rows).reshape(-1)

    def row(self, user_id: int) -> np.ndarray:
        """One user's embedding row (a live view for the dense store)."""
        return self.user_embeddings[user_id]

    def set_row(self, user_id: int, value: np.ndarray) -> None:
        """Overwrite one user's embedding row."""
        self.user_embeddings[user_id] = value

    def embedding_block(self, lo: int, hi: int) -> np.ndarray:
        """Users ``[lo, hi)`` as a ``(hi - lo, dim)`` matrix.

        Zero-copy for the dense store; the sharded store copies only
        when the block straddles a shard boundary.  Streaming eval
        walks the population through this accessor.
        """
        return self.user_embeddings[lo:hi]

    def snapshot_embeddings(self) -> np.ndarray:
        """Dense copy of the full embedding matrix (checkpoints)."""
        return np.ascontiguousarray(self.user_embeddings).copy()

    def load_embeddings(self, matrix: np.ndarray) -> None:
        """Restore the full embedding matrix from a checkpoint copy."""
        if matrix.shape != (self.num_users, self.embedding_dim):
            raise ValueError(
                f"embedding snapshot shape {matrix.shape} does not match "
                f"store ({self.num_users}, {self.embedding_dim})"
            )
        self.user_embeddings[...] = matrix

    def positives(self, user_id: int) -> np.ndarray:
        """User's positive items — a zero-copy CSR slice."""
        return self.train_indices[
            self.train_indptr[user_id] : self.train_indptr[user_id + 1]
        ]

    def positives_list(self, user_ids: np.ndarray) -> list[np.ndarray]:
        """CSR slices (zero-copy views) for a batch of users."""
        indptr = self.train_indptr
        indices = self.train_indices
        return [
            indices[indptr[user_id] : indptr[user_id + 1]]
            for user_id in user_ids
        ]

    def to_ragged(self) -> list[np.ndarray]:
        """Per-user positive-item arrays (copies) — CSR round-trip."""
        return [self.positives(user_id).copy() for user_id in range(self.num_users)]

    def train_mask_block(self, lo: int, hi: int) -> np.ndarray:
        """Boolean ``(hi - lo, num_items)`` training-interaction mask.

        Equals ``dataset.train_mask()[lo:hi]`` without ever building
        the dense ``(num_users, num_items)`` matrix — the piece that
        lets evaluation stream over user blocks in bounded memory.
        """
        indptr = self.train_indptr
        block = np.zeros((hi - lo, self.num_items), dtype=bool)
        rows = np.repeat(np.arange(hi - lo), np.diff(indptr[lo : hi + 1]))
        block[rows, self.train_indices[indptr[lo] : indptr[hi]]] = True
        return block

    # ------------------------------------------------------------------
    # Per-client scalar state, vectorised
    # ------------------------------------------------------------------

    def client_lrs(self, lr_range: tuple[float, float]) -> np.ndarray:
        """Every client's fixed local learning rate, drawn in one pass.

        The inconsistent-learning-rate scenario (supplementary Table X)
        gives client ``u`` the rate ``exp(uniform(log low, log high))``
        from its private ``spawn(seed, "client-lr", u)`` stream; this
        draws all of them through the vectorised PCG64 path and caches
        the result (the draws are round-independent).  Bit-identical to
        the scalar reference, asserted by the parity suite.
        """
        low, high = lr_range
        if not 0 < low <= high:
            raise ValueError("client_lr_range must satisfy 0 < low <= high")
        if self._client_lr_cache is None or self._client_lr_cache[0] != (low, high):
            draws = spawn_first_uniform(
                self._seed,
                ("client-lr",),
                np.arange(self.num_users),
                float(np.log(low)),
                float(np.log(high)),
            )
            self._client_lr_cache = ((low, high), np.exp(draws))
        return self._client_lr_cache[1]

    def client_lrs_for(
        self, lr_range: tuple[float, float], user_ids: np.ndarray
    ) -> np.ndarray:
        """The given users' fixed learning rates, in ``user_ids`` order.

        The subset accessor the engines use: a sharded store can serve
        it from per-shard segments without ever holding the full
        ``(num_users,)`` vector in one process.
        """
        return self.client_lrs(lr_range)[np.asarray(user_ids)]

    # ------------------------------------------------------------------
    # Defense regularizers (inherently per-user mutable state)
    # ------------------------------------------------------------------

    @property
    def has_regularizers(self) -> bool:
        """Whether any client may carry a defense regularizer."""
        return self._regularizer_factory is not None or bool(self._regularizers)

    def regularizer(self, user_id: int):
        """The user's defense regularizer, created lazily (or ``None``).

        Lazy creation is behaviour-preserving: a fresh regularizer only
        accumulates state through ``observe`` calls, which happen when
        the client participates — exactly when this accessor first
        runs for the user.
        """
        try:
            return self._regularizers[user_id]
        except KeyError:
            if self._regularizer_factory is None:
                return None
            regularizer = self._regularizer_factory()
            self._regularizers[user_id] = regularizer
            return regularizer

    def set_regularizer(self, user_id: int, regularizer) -> None:
        """Install (or clear) one user's regularizer explicitly."""
        self._regularizers[user_id] = regularizer


class ClientViewList:
    """Lazy sequence of store-backed ``BenignClient`` views.

    Indexing materialises (and caches) a view object on demand, so the
    object API — the reference loop engine, attacks and tests index
    ``sim.benign_clients[user_id]`` — keeps working while constructing
    a simulation stays O(arrays) instead of O(users) Python objects.
    """

    def __init__(self, store: ClientStateStore):
        self._store = store
        self._views: dict[int, object] = {}

    def __len__(self) -> int:
        return self._store.num_users

    def __getitem__(self, user_id: int):
        if isinstance(user_id, slice):
            return [self[i] for i in range(*user_id.indices(len(self)))]
        if user_id < 0:
            user_id += len(self)
        if not 0 <= user_id < len(self):
            raise IndexError("client index out of range")
        try:
            return self._views[user_id]
        except KeyError:
            from repro.federated.client import BenignClient

            view = BenignClient.from_store(self._store, user_id)
            self._views[user_id] = view
            return view

    def __iter__(self):
        return (self[user_id] for user_id in range(len(self)))
