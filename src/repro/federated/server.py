"""Federated server: user sampling, aggregation, global model update.

The server implements step 1 and step 4 of the training round in
Section III-A: it randomly selects a user batch, and after receiving
uploads it updates every item embedding (and, for DL-FRS, every
interaction parameter) by ``param <- param - eta * Agg(grads)``.

An optional *update filter* hook lets server-side defenses such as
NormBound pre-process whole client uploads before aggregation.

Three ingestion paths produce bit-identical results:

* :meth:`Server.apply_updates` — the reference path: one
  :class:`ClientUpdate` per participant, gradients grouped per item,
  one ``Agg`` call per touched item.
* :meth:`Server.apply_batch` — the batched path used by the
  batch-client engine for *every* configuration: the whole round
  arrives as one dense :class:`UpdateBatch`; audit, filters and
  aggregation (fused scatter under plain sum, grouped
  ``aggregate_stacks`` kernels under robust aggregation) all run on
  the stacked tensors.
* :meth:`Server.apply_scatter` — the bare fused-sum kernel behind the
  undefended case: pre-concatenated gradient rows land in one dense
  delta buffer via :func:`~repro.federated.aggregation.scatter_sum`
  and the server takes a single dense SGD step.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.federated.aggregation import Aggregator, SumAggregator, scatter_sum
from repro.federated.audit import ServerAuditLog
from repro.federated.payload import ClientUpdate
from repro.federated.update_batch import UpdateBatch
from repro.models.base import RecommenderModel
from repro.rng import spawn

__all__ = ["Server"]

UpdateFilter = Callable[[Sequence[ClientUpdate]], Sequence[ClientUpdate]]


class Server:
    """Coordinates rounds and applies aggregated updates to the model."""

    def __init__(
        self,
        model: RecommenderModel,
        lr: float,
        *,
        aggregator: Aggregator | None = None,
        update_filter: UpdateFilter | None = None,
        audit_log: ServerAuditLog | None = None,
        seed: int = 0,
        min_quorum: int = 0,
        max_upload_norm: float = 0.0,
    ):
        self.model = model
        self.lr = lr
        self.aggregator = aggregator if aggregator is not None else SumAggregator()
        self.update_filter = update_filter
        self.audit_log = audit_log
        self._seed = seed
        #: Minimum accepted uploads a round needs to be aggregated at
        #: all; a round below quorum is skipped entirely (counted in
        #: ``quorum_failed_rounds``) rather than letting a handful of
        #: survivors take an outsized model step.  0 disables the check.
        self.min_quorum = min_quorum
        #: Whole-upload L2 norm ceiling enforced by the sanity gate
        #: (0 disables).  Unlike the NormBound *defense*, which clips
        #: and keeps, the gate *rejects*: a transport-corrupted upload
        #: is garbage, not a large-but-honest gradient.
        self.max_upload_norm = max_upload_norm
        #: Rounds :meth:`apply_batch` had to materialise per-client
        #: updates because a component lacks a batched protocol (a
        #: custom update filter without ``filter_batch``). The
        #: defended-throughput CI smoke asserts this stays zero for
        #: every registry defense.
        self.materialized_rounds = 0
        #: Uploads rejected by the always-on sanity gate because they
        #: carried non-finite gradient values (an attacker — or a
        #: corrupted transport — sending a single NaN row would
        #: otherwise poison the aggregate irrecoverably under plain
        #: FedAvg: NaN propagates through every future round).
        self.rejected_nonfinite = 0
        #: Uploads rejected for exceeding ``max_upload_norm``.
        self.rejected_oversized = 0
        #: Rounds skipped because fewer than ``min_quorum`` uploads
        #: survived the sanity gate.
        self.quorum_failed_rounds = 0
        #: Uploads discarded by those skipped rounds.
        self.quorum_dropped_uploads = 0

    @property
    def rejected_uploads(self) -> int:
        """Total uploads rejected by the sanity gate."""
        return self.rejected_nonfinite + self.rejected_oversized

    def sample_users(self, num_users_total: int, batch: int, round_idx: int) -> np.ndarray:
        """Uniformly sample the participant set U_r for a round."""
        rng = spawn(self._seed, "server-sample", round_idx)
        batch = min(batch, num_users_total)
        return rng.choice(num_users_total, size=batch, replace=False)

    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        """Aggregate uploads and take one SGD step on the global model."""
        if self.audit_log is not None and updates:
            # Log the raw uploads, before any defense filter touches
            # them, so the record reflects what clients actually sent.
            self.audit_log.record(updates)
        updates = self._gate_updates(updates)
        if self._below_quorum(len(updates)):
            return
        if not updates:
            return
        if self.update_filter is not None:
            updates = self.update_filter(updates)

        self._apply_item_updates(updates)
        self._apply_param_updates(updates)

    def apply_scatter(
        self,
        item_ids: np.ndarray,
        item_grads: np.ndarray,
        param_stacks: Sequence[np.ndarray] = (),
    ) -> None:
        """Apply one fused round update from pre-concatenated gradients.

        ``item_ids``/``item_grads`` are the row-aligned concatenation of
        every participant's upload, in participation order (padding rows
        with zero gradients are harmless); ``param_stacks`` holds one
        ``(contributors, *param_shape)`` stack per interaction
        parameter. Requires a scatter-capable (plain sum) aggregator
        and no update filter; under those conditions the result is
        bit-identical to :meth:`apply_updates` on the equivalent
        per-client updates, while doing one ``np.add.at`` and one dense
        SGD step instead of per-item grouping.
        """
        if not self.aggregator.supports_scatter:
            raise ValueError(
                "apply_scatter requires a sum aggregator; robust "
                "aggregators need per-item contributor stacks"
            )
        if self.update_filter is not None:
            raise ValueError("apply_scatter cannot run server update filters")
        if self.audit_log is not None:
            raise ValueError(
                "apply_scatter has no per-client updates to audit; use "
                "apply_updates when an audit log is attached"
            )
        if len(item_ids):
            buffer = scatter_sum(item_ids, item_grads, self.model.num_items)
            self.model.item_embeddings += -self.lr * buffer
        params = self.model.interaction_params()
        if params and param_stacks:
            deltas = [
                -self.lr * self.aggregator.aggregate(stack)
                for stack in param_stacks
            ]
            self.model.apply_param_update(deltas)

    def apply_batch(self, batch: UpdateBatch) -> None:
        """Apply one round from a dense :class:`UpdateBatch`.

        The batched ingestion path used by the batch-client engine for
        *every* server configuration: the audit log records from the
        stacks, batched filters transform them, and aggregation either
        collapses into one fused scatter (plain-sum aggregators) or
        runs the grouped robust kernels
        (:meth:`_apply_item_batch_grouped`).  Bit-identical to
        :meth:`apply_updates` on the equivalent materialised updates —
        the layout invariants of :class:`UpdateBatch` plus the
        lane-stable aggregator kernels guarantee it, and the parity
        suite in ``tests/test_batch_defended.py`` asserts it for every
        registry defense.

        A custom update filter without a ``filter_batch`` method drops
        this round back to the materialised reference path (counted in
        ``materialized_rounds``).
        """
        if self.audit_log is not None and batch.num_clients:
            # Raw uploads, before any defense filter — same contract
            # as apply_updates.
            self.audit_log.record_batch(batch)
        batch = self._gate_batch(batch)
        if self._below_quorum(batch.num_clients):
            return
        if batch.num_clients == 0:
            return
        if self.update_filter is not None:
            filter_batch = getattr(self.update_filter, "filter_batch", None)
            if filter_batch is None:
                self.materialized_rounds += 1
                updates = self.update_filter(batch.to_updates())
                self._apply_item_updates(updates)
                self._apply_param_updates(updates)
                return
            batch = filter_batch(batch)

        if self.aggregator.supports_scatter:
            if len(batch.item_ids):
                buffer = scatter_sum(
                    batch.item_ids, batch.item_grads, self.model.num_items
                )
                self.model.item_embeddings += -self.lr * buffer
        else:
            self._apply_item_batch_grouped(batch)
        self._apply_param_batch(batch)

    # ------------------------------------------------------------------
    # Sanity gate + quorum (graceful degradation)
    # ------------------------------------------------------------------

    def _below_quorum(self, accepted: int) -> bool:
        """True (and counted) if the round must be skipped for quorum."""
        if self.min_quorum > 0 and accepted < self.min_quorum:
            self.quorum_failed_rounds += 1
            self.quorum_dropped_uploads += accepted
            return True
        return False

    def _gate_batch(self, batch: UpdateBatch) -> UpdateBatch:
        """Reject non-finite and oversized uploads from a round batch.

        The non-finite check is always on — a single NaN row reaching
        ``scatter_sum`` poisons the embedding table for every future
        round.  A clean round (the overwhelmingly common case) takes
        one vectorised ``isfinite`` reduction and returns the batch
        unchanged, same object, zero copies — keeping the batched path
        bit-identical to the ungated engine.

        Rejection is per *client*: one bad row discards that client's
        whole upload (items and parameters), exactly like the
        materialised path in :meth:`_gate_updates` — the parity suites
        cover faulted rounds on both engines.
        """
        if batch.num_clients == 0:
            return batch
        # One-pass screen: a sum is non-finite iff some element is (a
        # finite-overflow inf only sends us down the slow path, which
        # then finds nothing to reject) — no size-of-batch bool
        # temporary on the clean-round fast path.
        all_finite = bool(np.isfinite(batch.item_grads.sum())) and all(
            bool(np.isfinite(stack.sum())) for stack in batch.param_stacks
        )
        if all_finite and not self.max_upload_norm > 0:
            return batch
        keep = np.ones(batch.num_clients, dtype=bool)
        if not all_finite:
            row_bad = ~np.isfinite(batch.item_grads).all(axis=1)
            if row_bad.any():
                bad_counts = np.bincount(
                    batch.row_owners()[row_bad], minlength=batch.num_clients
                )
                keep &= bad_counts == 0
            for j, owner in enumerate(batch.param_owners):
                if keep[int(owner)] and any(
                    not np.isfinite(stack[j]).all() for stack in batch.param_stacks
                ):
                    keep[int(owner)] = False
            self.rejected_nonfinite += int((~keep).sum())
        if self.max_upload_norm > 0:
            # Non-finite clients are already gone from `keep`; their NaN
            # norms never reach the comparison.
            oversized = keep & (batch.client_total_norms() > self.max_upload_norm)
            self.rejected_oversized += int(oversized.sum())
            keep &= ~oversized
        return batch.select_clients(keep)

    def _gate_updates(
        self, updates: Sequence[ClientUpdate]
    ) -> Sequence[ClientUpdate]:
        """Materialised-path twin of :meth:`_gate_batch`.

        Same per-client accept/reject decisions and the same counters,
        so the loop engine stays bit-identical to the batch engine
        under faults.  Returns the input sequence unchanged when every
        upload passes.
        """
        keep = []
        rejected = False
        for update in updates:
            finite = bool(np.isfinite(update.item_grads).all()) and all(
                bool(np.isfinite(grad).all()) for grad in update.param_grads
            )
            if not finite:
                self.rejected_nonfinite += 1
                rejected = True
                continue
            if (
                self.max_upload_norm > 0
                and update.total_norm > self.max_upload_norm
            ):
                self.rejected_oversized += 1
                rejected = True
                continue
            keep.append(update)
        return keep if rejected else updates

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_item_batch_grouped(self, batch: UpdateBatch) -> None:
        """Robust aggregation over per-item contributor stacks, batched.

        A stable sort by item id regroups the flat round rows into
        per-item contributor stacks whose internal order is the upload
        order — exactly the stacks :meth:`_apply_item_updates` builds
        one dict entry at a time.  Items sharing a contributor count
        form dense ``(groups, count, dim)`` tensors that go through
        the aggregator's grouped kernel in one call each; distinct
        counts are few (bounded by the round's activity profile), so a
        defended round costs a handful of vectorised kernel calls
        instead of one Python ``aggregate`` per touched item.
        """
        if len(batch.item_ids) == 0:
            return
        order = np.argsort(batch.item_ids, kind="stable")
        sorted_ids = batch.item_ids[order]
        sorted_grads = batch.item_grads[order]
        # Group boundaries straight off the sorted ids (np.unique would
        # sort a second time).
        change = np.empty(len(sorted_ids), dtype=bool)
        change[0] = True
        np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=change[1:])
        first_rows = np.flatnonzero(change)
        unique_ids = sorted_ids[first_rows]
        counts = np.diff(np.append(first_rows, len(sorted_ids)))
        deltas = np.empty((len(unique_ids), self.model.embedding_dim))
        for count in np.unique(counts):
            group = np.flatnonzero(counts == count)
            gather = first_rows[group][:, None] + np.arange(count)[None, :]
            deltas[group] = self.aggregator.aggregate_stacks(sorted_grads[gather])
        deltas *= -self.lr
        self.model.apply_item_update(unique_ids, deltas)

    def _apply_param_batch(self, batch: UpdateBatch) -> None:
        params = self.model.interaction_params()
        if not params or not batch.param_stacks or not len(batch.param_owners):
            return
        deltas: list[np.ndarray] = []
        for param, stack in zip(params, batch.param_stacks):
            if stack.shape[1:] != param.shape:
                raise ValueError(
                    f"parameter gradient shape {stack.shape[1:]} does not "
                    f"match parameter {param.shape}"
                )
            deltas.append(-self.lr * self.aggregator.aggregate(stack))
        self.model.apply_param_update(deltas)

    def _apply_item_updates(self, updates: Sequence[ClientUpdate]) -> None:
        per_item: dict[int, list[np.ndarray]] = {}
        for update in updates:
            for item_id, grad in zip(update.item_ids, update.item_grads):
                per_item.setdefault(int(item_id), []).append(grad)

        if not per_item:
            return
        item_ids = np.fromiter(per_item.keys(), dtype=np.int64, count=len(per_item))
        deltas = np.empty((len(item_ids), self.model.embedding_dim))
        for row, item_id in enumerate(item_ids):
            stack = np.stack(per_item[int(item_id)])
            deltas[row] = -self.lr * self.aggregator.aggregate(stack)
        self.model.apply_item_update(item_ids, deltas)

    def _apply_param_updates(self, updates: Sequence[ClientUpdate]) -> None:
        params = self.model.interaction_params()
        if not params:
            return
        contributions = [u.param_grads for u in updates if u.param_grads]
        if not contributions:
            return
        deltas: list[np.ndarray] = []
        for index, param in enumerate(params):
            stack = np.stack([grads[index] for grads in contributions])
            if stack.shape[1:] != param.shape:
                raise ValueError(
                    f"parameter gradient shape {stack.shape[1:]} does not "
                    f"match parameter {param.shape}"
                )
            deltas.append(-self.lr * self.aggregator.aggregate(stack))
        self.model.apply_param_update(deltas)
