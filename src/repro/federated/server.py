"""Federated server: user sampling, aggregation, global model update.

The server implements step 1 and step 4 of the training round in
Section III-A: it randomly selects a user batch, and after receiving
uploads it updates every item embedding (and, for DL-FRS, every
interaction parameter) by ``param <- param - eta * Agg(grads)``.

An optional *update filter* hook lets server-side defenses such as
NormBound pre-process whole client uploads before aggregation.

Two ingestion paths produce bit-identical results under plain-sum
aggregation:

* :meth:`Server.apply_updates` — the reference path: one
  :class:`ClientUpdate` per participant, gradients grouped per item,
  one ``Agg`` call per touched item. Robust aggregators and update
  filters require this shape.
* :meth:`Server.apply_scatter` — the fused path used by the
  batch-client engine: the whole round arrives as pre-concatenated
  gradient rows, lands in one dense delta buffer via
  :func:`~repro.federated.aggregation.scatter_sum`, and the server
  takes a single dense SGD step.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.federated.aggregation import Aggregator, SumAggregator, scatter_sum
from repro.federated.audit import ServerAuditLog
from repro.federated.payload import ClientUpdate
from repro.models.base import RecommenderModel
from repro.rng import spawn

__all__ = ["Server"]

UpdateFilter = Callable[[Sequence[ClientUpdate]], Sequence[ClientUpdate]]


class Server:
    """Coordinates rounds and applies aggregated updates to the model."""

    def __init__(
        self,
        model: RecommenderModel,
        lr: float,
        *,
        aggregator: Aggregator | None = None,
        update_filter: UpdateFilter | None = None,
        audit_log: ServerAuditLog | None = None,
        seed: int = 0,
    ):
        self.model = model
        self.lr = lr
        self.aggregator = aggregator if aggregator is not None else SumAggregator()
        self.update_filter = update_filter
        self.audit_log = audit_log
        self._seed = seed

    def sample_users(self, num_users_total: int, batch: int, round_idx: int) -> np.ndarray:
        """Uniformly sample the participant set U_r for a round."""
        rng = spawn(self._seed, "server-sample", round_idx)
        batch = min(batch, num_users_total)
        return rng.choice(num_users_total, size=batch, replace=False)

    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        """Aggregate uploads and take one SGD step on the global model."""
        if not updates:
            return
        if self.audit_log is not None:
            # Log the raw uploads, before any defense filter touches
            # them, so the record reflects what clients actually sent.
            self.audit_log.record(updates)
        if self.update_filter is not None:
            updates = self.update_filter(updates)

        self._apply_item_updates(updates)
        self._apply_param_updates(updates)

    def apply_scatter(
        self,
        item_ids: np.ndarray,
        item_grads: np.ndarray,
        param_stacks: Sequence[np.ndarray] = (),
    ) -> None:
        """Apply one fused round update from pre-concatenated gradients.

        ``item_ids``/``item_grads`` are the row-aligned concatenation of
        every participant's upload, in participation order (padding rows
        with zero gradients are harmless); ``param_stacks`` holds one
        ``(contributors, *param_shape)`` stack per interaction
        parameter. Requires a scatter-capable (plain sum) aggregator
        and no update filter; under those conditions the result is
        bit-identical to :meth:`apply_updates` on the equivalent
        per-client updates, while doing one ``np.add.at`` and one dense
        SGD step instead of per-item grouping.
        """
        if not self.aggregator.supports_scatter:
            raise ValueError(
                "apply_scatter requires a sum aggregator; robust "
                "aggregators need per-item contributor stacks"
            )
        if self.update_filter is not None:
            raise ValueError("apply_scatter cannot run server update filters")
        if self.audit_log is not None:
            raise ValueError(
                "apply_scatter has no per-client updates to audit; use "
                "apply_updates when an audit log is attached"
            )
        if len(item_ids):
            buffer = scatter_sum(item_ids, item_grads, self.model.num_items)
            self.model.item_embeddings += -self.lr * buffer
        params = self.model.interaction_params()
        if params and param_stacks:
            deltas = [
                -self.lr * self.aggregator.aggregate(stack)
                for stack in param_stacks
            ]
            self.model.apply_param_update(deltas)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_item_updates(self, updates: Sequence[ClientUpdate]) -> None:
        per_item: dict[int, list[np.ndarray]] = {}
        for update in updates:
            for item_id, grad in zip(update.item_ids, update.item_grads):
                per_item.setdefault(int(item_id), []).append(grad)

        if not per_item:
            return
        item_ids = np.fromiter(per_item.keys(), dtype=np.int64, count=len(per_item))
        deltas = np.empty((len(item_ids), self.model.embedding_dim))
        for row, item_id in enumerate(item_ids):
            stack = np.stack(per_item[int(item_id)])
            deltas[row] = -self.lr * self.aggregator.aggregate(stack)
        self.model.apply_item_update(item_ids, deltas)

    def _apply_param_updates(self, updates: Sequence[ClientUpdate]) -> None:
        params = self.model.interaction_params()
        if not params:
            return
        contributions = [u.param_grads for u in updates if u.param_grads]
        if not contributions:
            return
        deltas: list[np.ndarray] = []
        for index, param in enumerate(params):
            stack = np.stack([grads[index] for grads in contributions])
            if stack.shape[1:] != param.shape:
                raise ValueError(
                    f"parameter gradient shape {stack.shape[1:]} does not "
                    f"match parameter {param.shape}"
                )
            deltas.append(-self.lr * self.aggregator.aggregate(stack))
        self.model.apply_param_update(deltas)
