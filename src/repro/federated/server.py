"""Federated server: user sampling, aggregation, global model update.

The server implements step 1 and step 4 of the training round in
Section III-A: it randomly selects a user batch, and after receiving
uploads it updates every item embedding (and, for DL-FRS, every
interaction parameter) by ``param <- param - eta * Agg(grads)``.

An optional *update filter* hook lets server-side defenses such as
NormBound pre-process whole client uploads before aggregation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.federated.aggregation import Aggregator, SumAggregator
from repro.federated.audit import ServerAuditLog
from repro.federated.payload import ClientUpdate
from repro.models.base import RecommenderModel
from repro.rng import spawn

__all__ = ["Server"]

UpdateFilter = Callable[[Sequence[ClientUpdate]], Sequence[ClientUpdate]]


class Server:
    """Coordinates rounds and applies aggregated updates to the model."""

    def __init__(
        self,
        model: RecommenderModel,
        lr: float,
        *,
        aggregator: Aggregator | None = None,
        update_filter: UpdateFilter | None = None,
        audit_log: ServerAuditLog | None = None,
        seed: int = 0,
    ):
        self.model = model
        self.lr = lr
        self.aggregator = aggregator if aggregator is not None else SumAggregator()
        self.update_filter = update_filter
        self.audit_log = audit_log
        self._seed = seed

    def sample_users(self, num_users_total: int, batch: int, round_idx: int) -> np.ndarray:
        """Uniformly sample the participant set U_r for a round."""
        rng = spawn(self._seed, "server-sample", round_idx)
        batch = min(batch, num_users_total)
        return rng.choice(num_users_total, size=batch, replace=False)

    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        """Aggregate uploads and take one SGD step on the global model."""
        if not updates:
            return
        if self.audit_log is not None:
            # Log the raw uploads, before any defense filter touches
            # them, so the record reflects what clients actually sent.
            self.audit_log.record(updates)
        if self.update_filter is not None:
            updates = self.update_filter(updates)

        self._apply_item_updates(updates)
        self._apply_param_updates(updates)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_item_updates(self, updates: Sequence[ClientUpdate]) -> None:
        per_item: dict[int, list[np.ndarray]] = {}
        for update in updates:
            for item_id, grad in zip(update.item_ids, update.item_grads):
                per_item.setdefault(int(item_id), []).append(grad)

        if not per_item:
            return
        item_ids = np.fromiter(per_item.keys(), dtype=np.int64, count=len(per_item))
        deltas = np.empty((len(item_ids), self.model.embedding_dim))
        for row, item_id in enumerate(item_ids):
            stack = np.stack(per_item[int(item_id)])
            deltas[row] = -self.lr * self.aggregator.aggregate(stack)
        self.model.apply_item_update(item_ids, deltas)

    def _apply_param_updates(self, updates: Sequence[ClientUpdate]) -> None:
        params = self.model.interaction_params()
        if not params:
            return
        contributions = [u.param_grads for u in updates if u.param_grads]
        if not contributions:
            return
        deltas: list[np.ndarray] = []
        for index, param in enumerate(params):
            stack = np.stack([grads[index] for grads in contributions])
            if stack.shape[1:] != param.shape:
                raise ValueError(
                    f"parameter gradient shape {stack.shape[1:]} does not "
                    f"match parameter {param.shape}"
                )
            deltas.append(-self.lr * self.aggregator.aggregate(stack))
        self.model.apply_param_update(deltas)
