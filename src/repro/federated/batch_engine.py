"""Vectorised batch-client execution engine for federated rounds.

The reference implementation of one communication round (the "loop"
engine in :class:`~repro.federated.simulation.FederatedSimulation`)
trains each sampled client in pure Python: per-client RNG spawn,
negative sampling, forward/backward, upload, then a per-item grouped
aggregation at the server.  At production round sizes the Python
per-client overhead — not the arithmetic — dominates wall-clock time.

:class:`BatchClientEngine` executes the *same* round as three tensor
passes over all sampled participants at once:

1. **Stack.** Every sampled benign client's local batch (its positives
   plus freshly sampled negatives, drawn from the client's own private
   RNG stream) is packed into one ragged row-stack
   (:func:`~repro.datasets.sampling.sample_local_batches`): flat
   ``(total_rows,)`` item-id and label arrays in which client ``k``
   owns a contiguous segment of ``lengths[k]`` rows.  The CSR-style
   layout wastes nothing under long-tail activity, where padding every
   client to the most active one would dwarf the real data.
2. **Step.** One batched embedding gather produces the stacked item
   vectors and a single batched local step runs every client's local
   epoch — :meth:`~repro.models.base.RecommenderModel.batch_local_step`
   for the BCE loss,
   :meth:`~repro.models.base.RecommenderModel.batch_local_step_bpr`
   for BPR (paired positive/negative stacks, with per-client
   duplicate-row merging done here via one offset-keyed ``np.unique``)
   — with per-client reductions taken over each client's exact row
   segment.
3. **Hand-off.** All uploads (the benign gradient rows — already
   row-aligned in participation order — plus whatever the round's
   malicious clients emitted, spliced in at their sampled positions)
   are assembled into one dense
   :class:`~repro.federated.update_batch.UpdateBatch` and handed to
   :meth:`~repro.federated.server.Server.apply_batch`, which runs the
   whole server side — audit log, defense filters, robust or fused-sum
   aggregation — on the stacked tensors.  No per-client
   :class:`ClientUpdate` objects are materialised for any registry
   defense, filter, or audit configuration.

The malicious half of the round runs through an attached
:class:`~repro.attacks.cohort.MaliciousCohort` (the default for every
batch-engine simulation with an attack): all sampled malicious
clients' uploads are computed in one batched pass over the team's
struct-of-arrays state and splice into the ``UpdateBatch`` as
:class:`~repro.attacks.cohort.CohortUpload` views — again with no
``ClientUpdate`` materialisation.  Without a cohort the engine falls
back to the per-object ``participate`` loop, counted in
``object_malicious_rounds`` so CI can assert the cohort path never
silently degrades.

Client state enters and leaves the round through a
:class:`~repro.federated.state.ClientStateStore` when one is attached
(the default for every simulation): participant embeddings are
*gathered* from the store's dense user matrix by fancy indexing,
positives are zero-copy CSR slices, per-client learning rates come
from the store's vectorised cache, and the updated embeddings are
*scattered* back in one assignment.  Without a store the engine falls
back to stacking ``BenignClient`` objects row by row — the original
object-per-user path, kept as the benchmark baseline and counted in
``stacked_rounds`` so CI can assert the store path never silently
degrades to it.

Bit-exactness is a design invariant, not an approximation: every RNG
stream, every row-wise op, and every reduction matches the loop engine
bit for bit (NumPy scatters and reduces sequentially, so grouping rows
per item and summing matches scattering them in upload order), and so
``engine="loop"`` and ``engine="batch"`` produce identical
trajectories from the same seed.  The parity suites in
``tests/test_batch_engine.py`` and ``tests/test_batch_defended.py``
(every registry defense x attack x model/loss combination) assert
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import kernels
from repro.config import TrainConfig
from repro.datasets.sampling import sample_local_batches, sample_negatives_batch
from repro.federated.client import BenignClient
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.federated.update_batch import UpdateBatch
from repro.models.base import RecommenderModel, segment_starts
from repro.rng import spawn_batch

if TYPE_CHECKING:
    from repro.attacks.cohort import CohortUpload

__all__ = ["BatchClientEngine"]


@dataclass
class _RoundBatch:
    """The benign half of one round, in ragged row-stack layout."""

    item_ids: np.ndarray  # (total_rows,)
    lengths: np.ndarray  # (clients,)
    starts: np.ndarray  # (clients,) row offset of each client's segment
    item_grads: np.ndarray  # (total_rows, dim)
    param_stacks: list[np.ndarray] = field(default_factory=list)
    #: Client rows (participation order) that contribute parameter
    #: gradients; row ``j`` of every stack belongs to client
    #: ``param_owners[j]``.  All clients under BCE on a parametric
    #: model; only regularised clients under BPR.
    param_owners: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class BatchClientEngine:
    """Executes federated rounds with stacked per-client tensors."""

    def __init__(
        self,
        model: RecommenderModel,
        server: Server,
        benign_clients: list[BenignClient],
        malicious_clients: list,
        train_cfg: TrainConfig,
        seed: int,
        *,
        state=None,
        cohort=None,
        kernel_backend=None,
        fault_controller=None,
    ):
        self.model = model
        self.server = server
        self.benign_clients = benign_clients
        self.malicious_clients = malicious_clients
        self.train_cfg = train_cfg
        self.seed = seed
        #: The struct-of-arrays client state this engine gathers from
        #: and scatters to; ``None`` selects the object-per-user
        #: fallback path.
        self.state = state
        #: The team-level :class:`~repro.attacks.cohort.MaliciousCohort`
        #: executing all sampled malicious clients per round in one
        #: batched pass; ``None`` selects the per-object ``participate``
        #: fallback loop.
        self.cohort = cohort
        #: Rounds that ran on the object-per-user fallback (stacking
        #: ``BenignClient`` attributes row by row instead of indexing
        #: the store).  The state-scale CI smoke asserts this stays
        #: zero for store-backed simulations.
        self.stacked_rounds = 0
        #: Rounds whose malicious participants ran through the
        #: per-object ``participate`` loop instead of the cohort.  The
        #: attack-scale CI smoke asserts this stays zero for
        #: cohort-backed simulations.
        self.object_malicious_rounds = 0
        #: Resolved kernel backend (:func:`repro.kernels.resolve`) every
        #: round runs under; ``None`` defers to the caller's dispatch
        #: scope / the ``REPRO_KERNELS`` environment default per round.
        self.kernel_backend = kernel_backend
        #: Rounds in which the kernel backend served at least one
        #: dispatched call through its numpy fallback (unsupported
        #: dtype) — the same anti-fallback contract as the two counters
        #: above: a native-backend run that quietly degrades must be
        #: visible, and the native bench asserts this stays zero.
        self.kernel_fallback_rounds = 0
        #: Optional :class:`~repro.federated.faults.FaultController`
        #: transforming each assembled round batch (dropout /
        #: straggler / corruption injection plus stale-upload splicing)
        #: before the server sees it; ``None`` — the default — skips
        #: the hook entirely, keeping the ideal-synchronous path
        #: bit-identical and overhead-free.
        self.fault_controller = fault_controller

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    @property
    def num_benign(self) -> int:
        if self.state is not None:
            return self.state.num_users
        return len(self.benign_clients)

    def run_round(self, round_idx: int, sampled: np.ndarray) -> None:
        """Execute one communication round for the sampled user ids.

        The whole round runs inside the engine's kernel dispatch scope;
        per-call numpy fallbacks of the active backend are snapshotted
        across the round into ``kernel_fallback_rounds``.
        """
        with kernels.use(self.kernel_backend) as backend:
            fallbacks_before = backend.fallback_calls
            self._run_round(round_idx, sampled)
            if backend.fallback_calls > fallbacks_before:
                self.kernel_fallback_rounds += 1

    def compute_round_batch(
        self, round_idx: int, sampled: np.ndarray
    ) -> UpdateBatch:
        """One round's assembled :class:`UpdateBatch`, *not* applied.

        Runs the full client side of a round — malicious cohort pass,
        batched benign local training (participants' private state
        advances), splice — inside the engine's kernel scope, and
        returns the assembled batch instead of handing it to the
        server.  The asynchronous engine uses this to train a wave at
        dispatch time and decide later when each upload aggregates;
        because the RNG streams are keyed only by ``round_idx``, the
        batch is bit-identical to what :meth:`run_round` would have
        produced for the same round.  The fault-controller hook is
        *not* applied — transport faults are the synchronous loop's
        churn model, and the two layers are mutually exclusive.

        Kernel-fallback accounting is left to the caller's scope so a
        wave is never double-counted.
        """
        with kernels.use(self.kernel_backend):
            return self._compute_round(round_idx, sampled)

    def _run_round(self, round_idx: int, sampled: np.ndarray) -> None:
        round_batch = self._compute_round(round_idx, sampled)
        if self.fault_controller is not None:
            # Transport faults strike between upload and aggregation:
            # local training above already happened (dropped clients'
            # private state advanced), only the server's view changes.
            round_batch = self.fault_controller.apply_to_batch(
                round_batch, [int(u) for u in sampled], round_idx
            )
        self.server.apply_batch(round_batch)

    def _compute_round(self, round_idx: int, sampled: np.ndarray) -> UpdateBatch:
        num_benign = self.num_benign
        sampled_list = [int(user_id) for user_id in sampled]
        benign_ids = np.array(
            [u for u in sampled_list if u < num_benign], dtype=np.int64
        )

        # Malicious participants run before the benign tensor pass (the
        # global model is frozen within a round, so this is
        # order-equivalent to the interleaved reference loop): one
        # batched cohort pass when a MaliciousCohort is attached
        # (CohortUpload views), the per-object participate loop
        # otherwise (materialised ClientUpdate objects).
        malicious_by_pos: dict[int, "ClientUpdate | CohortUpload"] = {}
        mal_positions = [
            (pos, user_id - num_benign)
            for pos, user_id in enumerate(sampled_list)
            if user_id >= num_benign
        ]
        if mal_positions and self.cohort is not None:
            uploads = self.cohort.compute_uploads(
                self.model,
                self.train_cfg,
                round_idx,
                np.array([row for _, row in mal_positions], dtype=np.int64),
            )
            for (pos, _), upload in zip(mal_positions, uploads):
                if upload is not None:
                    malicious_by_pos[pos] = upload
        elif mal_positions:
            self.object_malicious_rounds += 1
            for pos, row in mal_positions:
                update = self.malicious_clients[row].participate(
                    self.model, self.train_cfg, round_idx
                )
                if update is not None:
                    malicious_by_pos[pos] = update

        batch = self._benign_batch_step(benign_ids, round_idx)
        return self._assemble(
            sampled_list, num_benign, benign_ids, malicious_by_pos, batch
        )

    # ------------------------------------------------------------------
    # Benign local training, batched
    # ------------------------------------------------------------------

    def _benign_batch_step(
        self, benign_ids: np.ndarray, round_idx: int
    ) -> _RoundBatch:
        """Run every sampled benign client's local step in one batch.

        Participant state enters as one embedding gather plus zero-copy
        CSR positive slices when a store is attached; the object
        fallback stacks the same values attribute by attribute.  Both
        feed the identical stacked arithmetic below, and the store
        writes results back as one scatter instead of a per-object
        assignment loop.
        """
        store = self.state
        if not len(benign_ids):
            zero = np.empty(0, dtype=np.int64)
            return _RoundBatch(
                zero, zero, zero, np.empty((0, self.model.embedding_dim))
            )

        if store is not None:
            regs = (
                [store.regularizer(int(u)) for u in benign_ids]
                if store.has_regularizers
                else None
            )
            user_vecs = store.user_embeddings[benign_ids]
            positives_list = store.positives_list(benign_ids)
            clients = None
        else:
            self.stacked_rounds += 1
            clients = [self.benign_clients[int(u)] for u in benign_ids]
            regs = [client.regularizer for client in clients]
            user_vecs = np.stack([client.user_embedding for client in clients])
            positives_list = [client.positive_items for client in clients]
        if regs is not None and not any(reg is not None for reg in regs):
            regs = None
        if regs is not None:
            for reg in regs:
                if reg is not None:
                    reg.observe(self.model.item_embeddings)

        rngs = spawn_batch(self.seed, ("client-round",), benign_ids, (round_idx,))
        if self.train_cfg.loss == "bpr":
            item_ids, lengths, item_grads, user_grads = self._bpr_stacks(
                positives_list, rngs, user_vecs
            )
            param_stacks, param_owners = self._bpr_param_stacks(regs)
        else:
            # Any non-BPR loss trains with BCE, exactly like the
            # reference client.
            item_ids, lengths, item_grads, user_grads, param_stacks = (
                self._bce_stacks(positives_list, rngs, user_vecs)
            )
            param_owners = (
                np.arange(len(benign_ids), dtype=np.int64)
                if param_stacks
                else np.empty(0, dtype=np.int64)
            )
        starts = segment_starts(lengths)

        if regs is not None:
            self._apply_regularizers(
                regs, user_vecs, item_ids, lengths, starts,
                item_grads, user_grads, param_stacks, param_owners,
            )

        # Local personalised-model update: u <- u - eta * grad_u, for the
        # whole participant stack at once.
        if self.train_cfg.client_lr_range is None:
            lrs: np.ndarray | float = self.train_cfg.effective_client_lr
            new_users = user_vecs - lrs * user_grads
        else:
            if store is not None:
                lrs = store.client_lrs(self.train_cfg.client_lr_range)[benign_ids]
            else:
                lrs = np.array(
                    [client._client_lr(self.train_cfg) for client in clients]
                )
            new_users = user_vecs - lrs[:, None] * user_grads
        if store is not None:
            store.user_embeddings[benign_ids] = new_users
        else:
            for client, row in zip(clients, new_users):
                client.user_embedding = row

        return _RoundBatch(
            item_ids, lengths, starts, item_grads, param_stacks, param_owners
        )

    def _bce_stacks(
        self,
        positives_list: list[np.ndarray],
        rngs: list[np.random.Generator],
        user_vecs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
        """Stacked BCE local batches and gradients for all clients."""
        item_ids, labels, lengths = sample_local_batches(
            rngs,
            positives_list,
            self.model.num_items,
            self.train_cfg.negative_ratio,
        )
        item_vecs = self.model.item_embeddings[item_ids]
        result = self.model.batch_local_step(user_vecs, item_vecs, labels, lengths)
        return item_ids, lengths, result.item_grads, result.user_grads, result.param_grads

    def _bpr_stacks(
        self,
        positives_list: list[np.ndarray],
        rngs: list[np.random.Generator],
        user_vecs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stacked BPR pairs, trained and merged to per-client uploads.

        Mirrors ``BenignClient._bpr_step`` for the whole stack: pair
        each positive with one freshly sampled negative (truncating
        positives when negatives are scarce), run the batched pairwise
        step, then merge each client's duplicate item rows exactly as
        the reference's per-client ``np.unique`` + ``np.add.at`` does —
        realised here as *one* ``np.unique`` over client-offset item
        keys, whose per-client blocks are the per-client results.
        """
        num_clients = len(positives_list)
        counts = np.array([len(p) for p in positives_list], dtype=np.int64)
        negatives = sample_negatives_batch(
            rngs, positives_list, self.model.num_items, counts
        )
        pairs = [
            (p[: len(n)], n) if len(n) < len(p) else (p, n)
            for p, n in zip(positives_list, negatives)
        ]
        lengths = np.array([len(n) for _, n in pairs], dtype=np.int64)
        pos_ids = np.concatenate([p for p, _ in pairs])
        neg_ids = np.concatenate([n for _, n in pairs])
        pos_vecs = self.model.item_embeddings[pos_ids]
        neg_vecs = self.model.item_embeddings[neg_ids]
        result = self.model.batch_local_step_bpr(
            user_vecs, pos_vecs, neg_vecs, lengths
        )
        total = int(lengths.sum())
        pos_grads = result.item_grads[:total]
        neg_grads = result.item_grads[total:]

        # Interleave each client's positive and negative rows into the
        # reference upload order (positives first), then merge duplicate
        # items per client.  Both buffers inherit the gradient dtype so
        # reduced-precision models upload at their own precision.
        starts = segment_starts(lengths)
        within = np.arange(total) - np.repeat(starts, lengths)
        dest_base = np.repeat(2 * starts, lengths)
        all_ids = np.empty(2 * total, dtype=np.int64)
        all_grads = np.empty(
            (2 * total, self.model.embedding_dim), dtype=result.item_grads.dtype
        )
        pos_dest = dest_base + within
        neg_dest = dest_base + np.repeat(lengths, lengths) + within
        all_ids[pos_dest] = pos_ids
        all_ids[neg_dest] = neg_ids
        all_grads[pos_dest] = pos_grads
        all_grads[neg_dest] = neg_grads

        owners = np.repeat(np.arange(num_clients, dtype=np.int64), 2 * lengths)
        keys = owners * self.model.num_items + all_ids
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        merged = np.zeros(
            (len(unique_keys), self.model.embedding_dim), dtype=all_grads.dtype
        )
        np.add.at(merged, inverse, all_grads)
        merged_ids = unique_keys % self.model.num_items
        merged_lengths = np.bincount(
            unique_keys // self.model.num_items, minlength=num_clients
        ).astype(np.int64)
        return merged_ids, merged_lengths, merged, result.user_grads

    def _bpr_param_stacks(
        self, regs: list | None
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Zero parameter stacks for the regularised BPR edge case.

        The BPR upload itself carries no interaction-parameter
        gradients; a client contributes one only when its defense
        regularizer emits a ``param_grad_terms`` correction — mirrored
        here by allocating zero rows for exactly the regularised
        clients (the terms are added in :meth:`_apply_regularizers`).
        """
        params = self.model.interaction_params()
        if not params or regs is None:
            return [], np.empty(0, dtype=np.int64)
        owners = np.array(
            [
                row
                for row, reg in enumerate(regs)
                if reg is not None
                and getattr(reg, "param_grad_terms", None) is not None
            ],
            dtype=np.int64,
        )
        if not len(owners):
            return [], owners
        stacks = [
            np.zeros((len(owners),) + p.shape, dtype=p.dtype) for p in params
        ]
        return stacks, owners

    def _apply_regularizers(
        self,
        regs: list,
        user_vecs: np.ndarray,
        item_ids: np.ndarray,
        lengths: np.ndarray,
        starts: np.ndarray,
        item_grads: np.ndarray,
        user_grads: np.ndarray,
        param_stacks: list[np.ndarray],
        param_owners: np.ndarray,
    ) -> None:
        """Add each client's defense gradient terms to the batch result.

        Mirrors the regularizer hook sequence of
        :meth:`BenignClient.participate` on each client's row segment of
        the stacked tensors (``user_vecs`` rows are the pre-update
        embeddings the reference hooks see); the hooks themselves are
        already vectorised, so this per-client pass costs one hook call
        per defended client.
        """
        item_matrix = self.model.item_embeddings
        has_params = bool(self.model.interaction_params())
        stack_row = {int(owner): j for j, owner in enumerate(param_owners)}
        for row, regularizer in enumerate(regs):
            if regularizer is None:
                continue
            seg = slice(int(starts[row]), int(starts[row]) + int(lengths[row]))
            ids = item_ids[seg]
            item_grads[seg] += regularizer.item_grad_terms(ids, item_matrix)
            user_grads[row] += regularizer.user_grad_term(
                user_vecs[row], item_matrix
            )
            param_hook = getattr(regularizer, "param_grad_terms", None)
            if param_hook is not None and has_params and row in stack_row:
                extra = param_hook(self.model, ids)
                if extra:
                    for index, term in enumerate(extra):
                        param_stacks[index][stack_row[row]] += term

    # ------------------------------------------------------------------
    # Server hand-off
    # ------------------------------------------------------------------

    def _assemble(
        self,
        sampled_list: list[int],
        num_benign: int,
        benign_ids: np.ndarray,
        malicious_by_pos: dict[int, ClientUpdate | CohortUpload],
        batch: _RoundBatch,
    ) -> UpdateBatch:
        """Splice benign stacks and malicious uploads into one UpdateBatch.

        The benign gradient rows already sit in participation order, so
        a round without malicious uploads wraps the training stacks
        with zero copies; otherwise malicious uploads are spliced in at
        their sampled positions (splitting the benign stack into a
        handful of contiguous runs), keeping the batch's client order —
        and therefore every downstream float accumulation — exactly the
        reference engine's upload order.

        ``malicious_by_pos`` values only need the upload attributes
        (``user_id`` / ``item_ids`` / ``item_grads`` / ``param_grads``
        / ``malicious``): the cohort path passes
        :class:`~repro.attacks.cohort.CohortUpload` views into its
        stacked round arrays, the fallback path real ``ClientUpdate``
        objects.
        """
        num_params = len(self.model.interaction_params())
        if not malicious_by_pos:
            return UpdateBatch(
                user_ids=benign_ids,
                item_ids=batch.item_ids,
                item_grads=batch.item_grads,
                lengths=batch.lengths,
                param_stacks=batch.param_stacks if num_params else [],
                param_owners=batch.param_owners if num_params else np.empty(0, dtype=np.int64),
                malicious=np.zeros(len(benign_ids), dtype=bool),
            )

        run_starts = batch.starts
        run_lengths = batch.lengths
        owners = batch.param_owners
        user_chunks: list[np.ndarray] = []
        length_chunks: list[np.ndarray] = []
        mal_chunks: list[np.ndarray] = []
        id_chunks: list[np.ndarray] = []
        grad_chunks: list[np.ndarray] = []
        param_chunks: list[list[np.ndarray]] = [[] for _ in range(num_params)]
        owner_chunks: list[np.ndarray] = []
        benign_row = 0  # index of the next benign client
        run_begin = 0  # first benign client of the current contiguous run
        inserted = 0  # malicious uploads spliced in so far

        def flush_run(end: int) -> None:
            nonlocal run_begin
            if end > run_begin:
                lo = int(run_starts[run_begin])
                hi = int(run_starts[end - 1] + run_lengths[end - 1])
                id_chunks.append(batch.item_ids[lo:hi])
                grad_chunks.append(batch.item_grads[lo:hi])
                user_chunks.append(benign_ids[run_begin:end])
                length_chunks.append(run_lengths[run_begin:end])
                mal_chunks.append(np.zeros(end - run_begin, dtype=bool))
                if num_params and len(owners):
                    olo, ohi = np.searchsorted(owners, (run_begin, end))
                    if ohi > olo:
                        owner_chunks.append(owners[olo:ohi] + inserted)
                        for index, stack in enumerate(batch.param_stacks):
                            param_chunks[index].append(stack[olo:ohi])
            run_begin = end

        for pos, user_id in enumerate(sampled_list):
            if user_id < num_benign:
                benign_row += 1
                continue
            update = malicious_by_pos.get(pos)
            if update is None:
                continue
            flush_run(benign_row)
            client_pos = benign_row + inserted
            user_chunks.append(np.array([update.user_id], dtype=np.int64))
            length_chunks.append(np.array([len(update.item_ids)], dtype=np.int64))
            mal_chunks.append(np.array([update.malicious], dtype=bool))
            id_chunks.append(update.item_ids)
            grad_chunks.append(update.item_grads)
            # Parameter uploads against a parameter-free model are
            # ignored, exactly like the reference server path.
            if update.param_grads and num_params:
                owner_chunks.append(np.array([client_pos], dtype=np.int64))
                for index, grad in enumerate(update.param_grads):
                    param_chunks[index].append(grad[None])
            inserted += 1
        flush_run(benign_row)

        param_stacks = [
            np.concatenate(chunks) for chunks in param_chunks if chunks
        ]
        return UpdateBatch(
            user_ids=np.concatenate(user_chunks)
            if user_chunks
            else np.empty(0, dtype=np.int64),
            item_ids=np.concatenate(id_chunks)
            if id_chunks
            else np.empty(0, dtype=np.int64),
            item_grads=np.concatenate(grad_chunks, axis=0)
            if grad_chunks
            else np.empty((0, self.model.embedding_dim)),
            lengths=np.concatenate(length_chunks)
            if length_chunks
            else np.empty(0, dtype=np.int64),
            param_stacks=param_stacks,
            param_owners=np.concatenate(owner_chunks)
            if owner_chunks
            else np.empty(0, dtype=np.int64),
            malicious=np.concatenate(mal_chunks)
            if mal_chunks
            else np.empty(0, dtype=bool),
        )
