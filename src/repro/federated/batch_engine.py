"""Vectorised batch-client execution engine for federated rounds.

The reference implementation of one communication round (the "loop"
engine in :class:`~repro.federated.simulation.FederatedSimulation`)
trains each sampled client in pure Python: per-client RNG spawn,
negative sampling, forward/backward, upload, then a per-item grouped
aggregation at the server.  At production round sizes the Python
per-client overhead — not the arithmetic — dominates wall-clock time.

:class:`BatchClientEngine` executes the *same* round as three tensor
passes over all sampled participants at once:

1. **Stack.** Every sampled benign client's local batch (its positives
   plus freshly sampled negatives, drawn from the client's own private
   RNG stream) is packed into one ragged row-stack
   (:func:`~repro.datasets.sampling.sample_local_batches`): flat
   ``(total_rows,)`` item-id and label arrays in which client ``k``
   owns a contiguous segment of ``lengths[k]`` rows.  The CSR-style
   layout wastes nothing under long-tail activity, where padding every
   client to the most active one would dwarf the real data.
2. **Step.** One batched embedding gather produces the stacked item
   vectors and a single batched local step runs every client's local
   epoch — :meth:`~repro.models.base.RecommenderModel.batch_local_step`
   for the BCE loss,
   :meth:`~repro.models.base.RecommenderModel.batch_local_step_bpr`
   for BPR (paired positive/negative stacks, with per-client
   duplicate-row merging done here via one offset-keyed ``np.unique``)
   — with per-client reductions taken over each client's exact row
   segment.
3. **Hand-off.** All uploads (the benign gradient rows — already
   row-aligned in participation order — plus whatever the round's
   malicious clients emitted, spliced in at their sampled positions)
   are assembled into one dense
   :class:`~repro.federated.update_batch.UpdateBatch` and handed to
   :meth:`~repro.federated.server.Server.apply_batch`, which runs the
   whole server side — audit log, defense filters, robust or fused-sum
   aggregation — on the stacked tensors.  No per-client
   :class:`ClientUpdate` objects are materialised for any registry
   defense, filter, or audit configuration.

The malicious half of the round runs through an attached
:class:`~repro.attacks.cohort.MaliciousCohort` (the default for every
batch-engine simulation with an attack): all sampled malicious
clients' uploads are computed in one batched pass over the team's
struct-of-arrays state and splice into the ``UpdateBatch`` as
:class:`~repro.attacks.cohort.CohortUpload` views — again with no
``ClientUpdate`` materialisation.  Without a cohort the engine falls
back to the per-object ``participate`` loop, counted in
``object_malicious_rounds`` so CI can assert the cohort path never
silently degrades.

Client state enters and leaves the round through a
:class:`~repro.federated.state.ClientStateStore` when one is attached
(the default for every simulation): participant embeddings are
*gathered* from the store's dense user matrix by fancy indexing,
positives are zero-copy CSR slices, per-client learning rates come
from the store's vectorised cache, and the updated embeddings are
*scattered* back in one assignment.  Without a store the engine falls
back to stacking ``BenignClient`` objects row by row — the original
object-per-user path, kept as the benchmark baseline and counted in
``stacked_rounds`` so CI can assert the store path never silently
degrades to it.

Bit-exactness is a design invariant, not an approximation: every RNG
stream, every row-wise op, and every reduction matches the loop engine
bit for bit (NumPy scatters and reduces sequentially, so grouping rows
per item and summing matches scattering them in upload order), and so
``engine="loop"`` and ``engine="batch"`` produce identical
trajectories from the same seed.  The parity suites in
``tests/test_batch_engine.py`` and ``tests/test_batch_defended.py``
(every registry defense x attack x model/loss combination) assert
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import kernels
from repro.config import TrainConfig
from repro.datasets.sampling import sample_local_batches, sample_negatives_batch
from repro.federated.client import BenignClient
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.federated.update_batch import UpdateBatch
from repro.models.base import RecommenderModel, segment_starts
from repro.rng import spawn_batch

if TYPE_CHECKING:
    from repro.attacks.cohort import CohortUpload

__all__ = ["BatchClientEngine", "ProcessRoundExecutor"]


# ----------------------------------------------------------------------
# Stacked local training, as pure functions
#
# Module-level so the multi-process round executor's workers run the
# *same code object* as the in-process engine: bit-identity between the
# two paths is then a property of per-client independence (private RNG
# streams, per-segment reductions, per-client BPR merges) rather than
# of two implementations staying in sync.
# ----------------------------------------------------------------------


def _bce_stacks_fn(
    model: RecommenderModel,
    train_cfg: TrainConfig,
    positives_list: list[np.ndarray],
    rngs: list[np.random.Generator],
    user_vecs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
    """Stacked BCE local batches and gradients for all clients."""
    item_ids, labels, lengths = sample_local_batches(
        rngs,
        positives_list,
        model.num_items,
        train_cfg.negative_ratio,
    )
    item_vecs = model.item_embeddings[item_ids]
    result = model.batch_local_step(user_vecs, item_vecs, labels, lengths)
    return item_ids, lengths, result.item_grads, result.user_grads, result.param_grads


def _bpr_stacks_fn(
    model: RecommenderModel,
    positives_list: list[np.ndarray],
    rngs: list[np.random.Generator],
    user_vecs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stacked BPR pairs, trained and merged to per-client uploads.

    Mirrors ``BenignClient._bpr_step`` for the whole stack: pair each
    positive with one freshly sampled negative (truncating positives
    when negatives are scarce), run the batched pairwise step, then
    merge each client's duplicate item rows exactly as the reference's
    per-client ``np.unique`` + ``np.add.at`` does — realised here as
    *one* ``np.unique`` over client-offset item keys, whose per-client
    blocks are the per-client results.
    """
    num_clients = len(positives_list)
    counts = np.array([len(p) for p in positives_list], dtype=np.int64)
    negatives = sample_negatives_batch(
        rngs, positives_list, model.num_items, counts
    )
    pairs = [
        (p[: len(n)], n) if len(n) < len(p) else (p, n)
        for p, n in zip(positives_list, negatives)
    ]
    lengths = np.array([len(n) for _, n in pairs], dtype=np.int64)
    pos_ids = np.concatenate([p for p, _ in pairs])
    neg_ids = np.concatenate([n for _, n in pairs])
    pos_vecs = model.item_embeddings[pos_ids]
    neg_vecs = model.item_embeddings[neg_ids]
    result = model.batch_local_step_bpr(
        user_vecs, pos_vecs, neg_vecs, lengths
    )
    total = int(lengths.sum())
    pos_grads = result.item_grads[:total]
    neg_grads = result.item_grads[total:]

    # Interleave each client's positive and negative rows into the
    # reference upload order (positives first), then merge duplicate
    # items per client.  Both buffers inherit the gradient dtype so
    # reduced-precision models upload at their own precision.
    starts = segment_starts(lengths)
    within = np.arange(total) - np.repeat(starts, lengths)
    dest_base = np.repeat(2 * starts, lengths)
    all_ids = np.empty(2 * total, dtype=np.int64)
    all_grads = np.empty(
        (2 * total, model.embedding_dim), dtype=result.item_grads.dtype
    )
    pos_dest = dest_base + within
    neg_dest = dest_base + np.repeat(lengths, lengths) + within
    all_ids[pos_dest] = pos_ids
    all_ids[neg_dest] = neg_ids
    all_grads[pos_dest] = pos_grads
    all_grads[neg_dest] = neg_grads

    owners = np.repeat(np.arange(num_clients, dtype=np.int64), 2 * lengths)
    keys = owners * model.num_items + all_ids
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    merged = np.zeros(
        (len(unique_keys), model.embedding_dim), dtype=all_grads.dtype
    )
    np.add.at(merged, inverse, all_grads)
    merged_ids = unique_keys % model.num_items
    merged_lengths = np.bincount(
        unique_keys // model.num_items, minlength=num_clients
    ).astype(np.int64)
    return merged_ids, merged_lengths, merged, result.user_grads


def _compute_benign_stacks(
    model: RecommenderModel,
    train_cfg: TrainConfig,
    seed: int,
    store,
    benign_ids: np.ndarray,
    round_idx: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
    """One store-backed benign local step for a participant subset.

    Returns ``(new_users, item_ids, lengths, item_grads, param_stacks)``
    with rows in ``benign_ids`` order, *without* scattering the updated
    embeddings (the caller owns all store writes — pure reads are what
    make worker retry after a SIGKILL trivially bit-identical).

    Every per-client quantity is a pure function of
    ``(seed, user_id, round_idx)`` and the frozen round-start model, so
    computing a subset here equals slicing the full-cohort computation:
    the exact property the multi-process executor's parity suite pins.
    Regularized stores never reach this path (the executor rejects
    them; the in-process engine keeps its own regularizer sequence).
    """
    user_vecs = store.gather_rows(benign_ids)
    positives_list = store.positives_list(benign_ids)
    rngs = spawn_batch(seed, ("client-round",), benign_ids, (round_idx,))
    if train_cfg.loss == "bpr":
        item_ids, lengths, item_grads, user_grads = _bpr_stacks_fn(
            model, positives_list, rngs, user_vecs
        )
        param_stacks: list[np.ndarray] = []
    else:
        item_ids, lengths, item_grads, user_grads, param_stacks = (
            _bce_stacks_fn(model, train_cfg, positives_list, rngs, user_vecs)
        )
    if train_cfg.client_lr_range is None:
        lrs: np.ndarray | float = train_cfg.effective_client_lr
        new_users = user_vecs - lrs * user_grads
    else:
        lrs = store.client_lrs_for(train_cfg.client_lr_range, benign_ids)
        new_users = user_vecs - lrs[:, None] * user_grads
    return new_users, item_ids, lengths, item_grads, param_stacks


@dataclass
class _RoundBatch:
    """The benign half of one round, in ragged row-stack layout."""

    item_ids: np.ndarray  # (total_rows,)
    lengths: np.ndarray  # (clients,)
    starts: np.ndarray  # (clients,) row offset of each client's segment
    item_grads: np.ndarray  # (total_rows, dim)
    param_stacks: list[np.ndarray] = field(default_factory=list)
    #: Client rows (participation order) that contribute parameter
    #: gradients; row ``j`` of every stack belongs to client
    #: ``param_owners[j]``.  All clients under BCE on a parametric
    #: model; only regularised clients under BPR.
    param_owners: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class BatchClientEngine:
    """Executes federated rounds with stacked per-client tensors."""

    def __init__(
        self,
        model: RecommenderModel,
        server: Server,
        benign_clients: list[BenignClient],
        malicious_clients: list,
        train_cfg: TrainConfig,
        seed: int,
        *,
        state=None,
        cohort=None,
        kernel_backend=None,
        fault_controller=None,
        executor=None,
    ):
        self.model = model
        self.server = server
        self.benign_clients = benign_clients
        self.malicious_clients = malicious_clients
        self.train_cfg = train_cfg
        self.seed = seed
        #: The struct-of-arrays client state this engine gathers from
        #: and scatters to; ``None`` selects the object-per-user
        #: fallback path.
        self.state = state
        #: The team-level :class:`~repro.attacks.cohort.MaliciousCohort`
        #: executing all sampled malicious clients per round in one
        #: batched pass; ``None`` selects the per-object ``participate``
        #: fallback loop.
        self.cohort = cohort
        #: Rounds that ran on the object-per-user fallback (stacking
        #: ``BenignClient`` attributes row by row instead of indexing
        #: the store).  The state-scale CI smoke asserts this stays
        #: zero for store-backed simulations.
        self.stacked_rounds = 0
        #: Rounds whose malicious participants ran through the
        #: per-object ``participate`` loop instead of the cohort.  The
        #: attack-scale CI smoke asserts this stays zero for
        #: cohort-backed simulations.
        self.object_malicious_rounds = 0
        #: Resolved kernel backend (:func:`repro.kernels.resolve`) every
        #: round runs under; ``None`` defers to the caller's dispatch
        #: scope / the ``REPRO_KERNELS`` environment default per round.
        self.kernel_backend = kernel_backend
        #: Rounds in which the kernel backend served at least one
        #: dispatched call through its numpy fallback (unsupported
        #: dtype) — the same anti-fallback contract as the two counters
        #: above: a native-backend run that quietly degrades must be
        #: visible, and the native bench asserts this stays zero.
        self.kernel_fallback_rounds = 0
        #: Optional :class:`~repro.federated.faults.FaultController`
        #: transforming each assembled round batch (dropout /
        #: straggler / corruption injection plus stale-upload splicing)
        #: before the server sees it; ``None`` — the default — skips
        #: the hook entirely, keeping the ideal-synchronous path
        #: bit-identical and overhead-free.
        self.fault_controller = fault_controller
        #: Optional :class:`ProcessRoundExecutor` computing each benign
        #: local step across forked worker processes attached to the
        #: sharded store; ``None`` computes rounds in-process.
        self.executor = executor
        #: Rounds whose benign step ran on the multi-process executor —
        #: the anti-fallback counter the million-user CI smoke asserts
        #: equals the round count (the shm path must actually engage).
        self.process_rounds = 0

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    @property
    def num_benign(self) -> int:
        if self.state is not None:
            return self.state.num_users
        return len(self.benign_clients)

    def run_round(self, round_idx: int, sampled: np.ndarray) -> None:
        """Execute one communication round for the sampled user ids.

        The whole round runs inside the engine's kernel dispatch scope;
        per-call numpy fallbacks of the active backend are snapshotted
        across the round into ``kernel_fallback_rounds``.
        """
        with kernels.use(self.kernel_backend) as backend:
            fallbacks_before = backend.fallback_calls
            self._run_round(round_idx, sampled)
            if backend.fallback_calls > fallbacks_before:
                self.kernel_fallback_rounds += 1

    def compute_round_batch(
        self, round_idx: int, sampled: np.ndarray
    ) -> UpdateBatch:
        """One round's assembled :class:`UpdateBatch`, *not* applied.

        Runs the full client side of a round — malicious cohort pass,
        batched benign local training (participants' private state
        advances), splice — inside the engine's kernel scope, and
        returns the assembled batch instead of handing it to the
        server.  The asynchronous engine uses this to train a wave at
        dispatch time and decide later when each upload aggregates;
        because the RNG streams are keyed only by ``round_idx``, the
        batch is bit-identical to what :meth:`run_round` would have
        produced for the same round.  The fault-controller hook is
        *not* applied — transport faults are the synchronous loop's
        churn model, and the two layers are mutually exclusive.

        Kernel-fallback accounting is left to the caller's scope so a
        wave is never double-counted.
        """
        with kernels.use(self.kernel_backend):
            return self._compute_round(round_idx, sampled)

    def _run_round(self, round_idx: int, sampled: np.ndarray) -> None:
        round_batch = self._compute_round(round_idx, sampled)
        if self.fault_controller is not None:
            # Transport faults strike between upload and aggregation:
            # local training above already happened (dropped clients'
            # private state advanced), only the server's view changes.
            round_batch = self.fault_controller.apply_to_batch(
                round_batch, [int(u) for u in sampled], round_idx
            )
        self.server.apply_batch(round_batch)

    def _compute_round(self, round_idx: int, sampled: np.ndarray) -> UpdateBatch:
        num_benign = self.num_benign
        sampled_list = [int(user_id) for user_id in sampled]
        benign_ids = np.array(
            [u for u in sampled_list if u < num_benign], dtype=np.int64
        )

        # Malicious participants run before the benign tensor pass (the
        # global model is frozen within a round, so this is
        # order-equivalent to the interleaved reference loop): one
        # batched cohort pass when a MaliciousCohort is attached
        # (CohortUpload views), the per-object participate loop
        # otherwise (materialised ClientUpdate objects).
        malicious_by_pos: dict[int, "ClientUpdate | CohortUpload"] = {}
        mal_positions = [
            (pos, user_id - num_benign)
            for pos, user_id in enumerate(sampled_list)
            if user_id >= num_benign
        ]
        if mal_positions and self.cohort is not None:
            uploads = self.cohort.compute_uploads(
                self.model,
                self.train_cfg,
                round_idx,
                np.array([row for _, row in mal_positions], dtype=np.int64),
            )
            for (pos, _), upload in zip(mal_positions, uploads):
                if upload is not None:
                    malicious_by_pos[pos] = upload
        elif mal_positions:
            self.object_malicious_rounds += 1
            for pos, row in mal_positions:
                update = self.malicious_clients[row].participate(
                    self.model, self.train_cfg, round_idx
                )
                if update is not None:
                    malicious_by_pos[pos] = update

        batch = self._benign_batch_step(benign_ids, round_idx)
        return self._assemble(
            sampled_list, num_benign, benign_ids, malicious_by_pos, batch
        )

    # ------------------------------------------------------------------
    # Benign local training, batched
    # ------------------------------------------------------------------

    def _benign_batch_step(
        self, benign_ids: np.ndarray, round_idx: int
    ) -> _RoundBatch:
        """Run every sampled benign client's local step in one batch.

        Participant state enters as one embedding gather plus zero-copy
        CSR positive slices when a store is attached; the object
        fallback stacks the same values attribute by attribute.  Both
        feed the identical stacked arithmetic below, and the store
        writes results back as one scatter instead of a per-object
        assignment loop.
        """
        store = self.state
        if not len(benign_ids):
            zero = np.empty(0, dtype=np.int64)
            return _RoundBatch(
                zero, zero, zero, np.empty((0, self.model.embedding_dim))
            )

        if store is not None and not store.has_regularizers:
            # The regularizer-free store path is a pure function of
            # (seed, ids, round, model) — run it in-process or farm it
            # to the executor's workers; either way the engine owns the
            # single scatter that commits the round.
            if self.executor is not None:
                new_users, item_ids, lengths, item_grads, param_stacks = (
                    self.executor.compute(benign_ids, round_idx)
                )
                self.process_rounds += 1
            else:
                new_users, item_ids, lengths, item_grads, param_stacks = (
                    _compute_benign_stacks(
                        self.model, self.train_cfg, self.seed,
                        store, benign_ids, round_idx,
                    )
                )
            store.scatter_rows(benign_ids, new_users)
            param_owners = (
                np.arange(len(benign_ids), dtype=np.int64)
                if param_stacks
                else np.empty(0, dtype=np.int64)
            )
            return _RoundBatch(
                item_ids, lengths, segment_starts(lengths),
                item_grads, param_stacks, param_owners,
            )
        if self.executor is not None:
            # Regularizers appeared after executor construction (or the
            # store vanished): refusing beats silently computing rounds
            # on a different path than the one the user asked for.
            raise RuntimeError(
                "ProcessRoundExecutor cannot run this round: per-user "
                "regularizer state lives only in the parent process"
            )

        if store is not None:
            regs = [store.regularizer(int(u)) for u in benign_ids]
            user_vecs = store.gather_rows(benign_ids)
            positives_list = store.positives_list(benign_ids)
            clients = None
        else:
            self.stacked_rounds += 1
            clients = [self.benign_clients[int(u)] for u in benign_ids]
            regs = [client.regularizer for client in clients]
            user_vecs = np.stack([client.user_embedding for client in clients])
            positives_list = [client.positive_items for client in clients]
        if regs is not None and not any(reg is not None for reg in regs):
            regs = None
        if regs is not None:
            for reg in regs:
                if reg is not None:
                    reg.observe(self.model.item_embeddings)

        rngs = spawn_batch(self.seed, ("client-round",), benign_ids, (round_idx,))
        if self.train_cfg.loss == "bpr":
            item_ids, lengths, item_grads, user_grads = self._bpr_stacks(
                positives_list, rngs, user_vecs
            )
            param_stacks, param_owners = self._bpr_param_stacks(regs)
        else:
            # Any non-BPR loss trains with BCE, exactly like the
            # reference client.
            item_ids, lengths, item_grads, user_grads, param_stacks = (
                self._bce_stacks(positives_list, rngs, user_vecs)
            )
            param_owners = (
                np.arange(len(benign_ids), dtype=np.int64)
                if param_stacks
                else np.empty(0, dtype=np.int64)
            )
        starts = segment_starts(lengths)

        if regs is not None:
            self._apply_regularizers(
                regs, user_vecs, item_ids, lengths, starts,
                item_grads, user_grads, param_stacks, param_owners,
            )

        # Local personalised-model update: u <- u - eta * grad_u, for the
        # whole participant stack at once.
        if self.train_cfg.client_lr_range is None:
            lrs: np.ndarray | float = self.train_cfg.effective_client_lr
            new_users = user_vecs - lrs * user_grads
        else:
            if store is not None:
                lrs = store.client_lrs_for(
                    self.train_cfg.client_lr_range, benign_ids
                )
            else:
                lrs = np.array(
                    [client._client_lr(self.train_cfg) for client in clients]
                )
            new_users = user_vecs - lrs[:, None] * user_grads
        if store is not None:
            store.scatter_rows(benign_ids, new_users)
        else:
            for client, row in zip(clients, new_users):
                client.user_embedding = row

        return _RoundBatch(
            item_ids, lengths, starts, item_grads, param_stacks, param_owners
        )

    def _bce_stacks(
        self,
        positives_list: list[np.ndarray],
        rngs: list[np.random.Generator],
        user_vecs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
        """Stacked BCE local batches and gradients for all clients."""
        return _bce_stacks_fn(
            self.model, self.train_cfg, positives_list, rngs, user_vecs
        )

    def _bpr_stacks(
        self,
        positives_list: list[np.ndarray],
        rngs: list[np.random.Generator],
        user_vecs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stacked BPR pairs, trained and merged to per-client uploads.

        Delegates to :func:`_bpr_stacks_fn` — the shared pure function
        the multi-process executor's workers also run.
        """
        return _bpr_stacks_fn(self.model, positives_list, rngs, user_vecs)

    def _bpr_param_stacks(
        self, regs: list | None
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Zero parameter stacks for the regularised BPR edge case.

        The BPR upload itself carries no interaction-parameter
        gradients; a client contributes one only when its defense
        regularizer emits a ``param_grad_terms`` correction — mirrored
        here by allocating zero rows for exactly the regularised
        clients (the terms are added in :meth:`_apply_regularizers`).
        """
        params = self.model.interaction_params()
        if not params or regs is None:
            return [], np.empty(0, dtype=np.int64)
        owners = np.array(
            [
                row
                for row, reg in enumerate(regs)
                if reg is not None
                and getattr(reg, "param_grad_terms", None) is not None
            ],
            dtype=np.int64,
        )
        if not len(owners):
            return [], owners
        stacks = [
            np.zeros((len(owners),) + p.shape, dtype=p.dtype) for p in params
        ]
        return stacks, owners

    def _apply_regularizers(
        self,
        regs: list,
        user_vecs: np.ndarray,
        item_ids: np.ndarray,
        lengths: np.ndarray,
        starts: np.ndarray,
        item_grads: np.ndarray,
        user_grads: np.ndarray,
        param_stacks: list[np.ndarray],
        param_owners: np.ndarray,
    ) -> None:
        """Add each client's defense gradient terms to the batch result.

        Mirrors the regularizer hook sequence of
        :meth:`BenignClient.participate` on each client's row segment of
        the stacked tensors (``user_vecs`` rows are the pre-update
        embeddings the reference hooks see); the hooks themselves are
        already vectorised, so this per-client pass costs one hook call
        per defended client.
        """
        item_matrix = self.model.item_embeddings
        has_params = bool(self.model.interaction_params())
        stack_row = {int(owner): j for j, owner in enumerate(param_owners)}
        for row, regularizer in enumerate(regs):
            if regularizer is None:
                continue
            seg = slice(int(starts[row]), int(starts[row]) + int(lengths[row]))
            ids = item_ids[seg]
            item_grads[seg] += regularizer.item_grad_terms(ids, item_matrix)
            user_grads[row] += regularizer.user_grad_term(
                user_vecs[row], item_matrix
            )
            param_hook = getattr(regularizer, "param_grad_terms", None)
            if param_hook is not None and has_params and row in stack_row:
                extra = param_hook(self.model, ids)
                if extra:
                    for index, term in enumerate(extra):
                        param_stacks[index][stack_row[row]] += term

    # ------------------------------------------------------------------
    # Server hand-off
    # ------------------------------------------------------------------

    def _assemble(
        self,
        sampled_list: list[int],
        num_benign: int,
        benign_ids: np.ndarray,
        malicious_by_pos: dict[int, ClientUpdate | CohortUpload],
        batch: _RoundBatch,
    ) -> UpdateBatch:
        """Splice benign stacks and malicious uploads into one UpdateBatch.

        The benign gradient rows already sit in participation order, so
        a round without malicious uploads wraps the training stacks
        with zero copies; otherwise malicious uploads are spliced in at
        their sampled positions (splitting the benign stack into a
        handful of contiguous runs), keeping the batch's client order —
        and therefore every downstream float accumulation — exactly the
        reference engine's upload order.

        ``malicious_by_pos`` values only need the upload attributes
        (``user_id`` / ``item_ids`` / ``item_grads`` / ``param_grads``
        / ``malicious``): the cohort path passes
        :class:`~repro.attacks.cohort.CohortUpload` views into its
        stacked round arrays, the fallback path real ``ClientUpdate``
        objects.
        """
        num_params = len(self.model.interaction_params())
        if not malicious_by_pos:
            return UpdateBatch(
                user_ids=benign_ids,
                item_ids=batch.item_ids,
                item_grads=batch.item_grads,
                lengths=batch.lengths,
                param_stacks=batch.param_stacks if num_params else [],
                param_owners=batch.param_owners if num_params else np.empty(0, dtype=np.int64),
                malicious=np.zeros(len(benign_ids), dtype=bool),
            )

        run_starts = batch.starts
        run_lengths = batch.lengths
        owners = batch.param_owners
        user_chunks: list[np.ndarray] = []
        length_chunks: list[np.ndarray] = []
        mal_chunks: list[np.ndarray] = []
        id_chunks: list[np.ndarray] = []
        grad_chunks: list[np.ndarray] = []
        param_chunks: list[list[np.ndarray]] = [[] for _ in range(num_params)]
        owner_chunks: list[np.ndarray] = []
        benign_row = 0  # index of the next benign client
        run_begin = 0  # first benign client of the current contiguous run
        inserted = 0  # malicious uploads spliced in so far

        def flush_run(end: int) -> None:
            nonlocal run_begin
            if end > run_begin:
                lo = int(run_starts[run_begin])
                hi = int(run_starts[end - 1] + run_lengths[end - 1])
                id_chunks.append(batch.item_ids[lo:hi])
                grad_chunks.append(batch.item_grads[lo:hi])
                user_chunks.append(benign_ids[run_begin:end])
                length_chunks.append(run_lengths[run_begin:end])
                mal_chunks.append(np.zeros(end - run_begin, dtype=bool))
                if num_params and len(owners):
                    olo, ohi = np.searchsorted(owners, (run_begin, end))
                    if ohi > olo:
                        owner_chunks.append(owners[olo:ohi] + inserted)
                        for index, stack in enumerate(batch.param_stacks):
                            param_chunks[index].append(stack[olo:ohi])
            run_begin = end

        for pos, user_id in enumerate(sampled_list):
            if user_id < num_benign:
                benign_row += 1
                continue
            update = malicious_by_pos.get(pos)
            if update is None:
                continue
            flush_run(benign_row)
            client_pos = benign_row + inserted
            user_chunks.append(np.array([update.user_id], dtype=np.int64))
            length_chunks.append(np.array([len(update.item_ids)], dtype=np.int64))
            mal_chunks.append(np.array([update.malicious], dtype=bool))
            id_chunks.append(update.item_ids)
            grad_chunks.append(update.item_grads)
            # Parameter uploads against a parameter-free model are
            # ignored, exactly like the reference server path.
            if update.param_grads and num_params:
                owner_chunks.append(np.array([client_pos], dtype=np.int64))
                for index, grad in enumerate(update.param_grads):
                    param_chunks[index].append(grad[None])
            inserted += 1
        flush_run(benign_row)

        param_stacks = [
            np.concatenate(chunks) for chunks in param_chunks if chunks
        ]
        return UpdateBatch(
            user_ids=np.concatenate(user_chunks)
            if user_chunks
            else np.empty(0, dtype=np.int64),
            item_ids=np.concatenate(id_chunks)
            if id_chunks
            else np.empty(0, dtype=np.int64),
            item_grads=np.concatenate(grad_chunks, axis=0)
            if grad_chunks
            else np.empty((0, self.model.embedding_dim)),
            lengths=np.concatenate(length_chunks)
            if length_chunks
            else np.empty(0, dtype=np.int64),
            param_stacks=param_stacks,
            param_owners=np.concatenate(owner_chunks)
            if owner_chunks
            else np.empty(0, dtype=np.int64),
            malicious=np.concatenate(mal_chunks)
            if mal_chunks
            else np.empty(0, dtype=bool),
        )


# ----------------------------------------------------------------------
# Multi-process round execution
# ----------------------------------------------------------------------


class _ModelMirror:
    """The round-start global model in one fork-shared anonymous mapping.

    The parent publishes ``item_embeddings`` (and any interaction
    parameters) into the mapping before dispatching a round; each
    worker copies them into its private model replica before computing.
    Anonymous ``MAP_SHARED`` memory needs no names, no unlink and no
    tracker — it dies with the last process that maps it — and is
    inherited by the fork-spawned workers automatically.
    """

    def __init__(self, model: RecommenderModel):
        import mmap as _mmap

        shapes = [model.item_embeddings.shape] + [
            p.shape for p in model.interaction_params()
        ]
        dtypes = [model.item_embeddings.dtype] + [
            p.dtype for p in model.interaction_params()
        ]
        sizes = [
            int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            for shape, dtype in zip(shapes, dtypes)
        ]
        self._mmap = _mmap.mmap(-1, max(1, sum(sizes)))
        self.views: list[np.ndarray] = []
        offset = 0
        buffer = memoryview(self._mmap)
        for shape, dtype, nbytes in zip(shapes, dtypes, sizes):
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(
                buffer[offset : offset + nbytes], dtype=dtype, count=count
            ).reshape(shape)
            self.views.append(view)
            offset += nbytes

    def publish(self, model: RecommenderModel) -> None:
        """Parent side: copy the live model into the shared mapping."""
        arrays = [model.item_embeddings] + list(model.interaction_params())
        for view, array in zip(self.views, arrays):
            view[...] = array

    def load_into(self, model: RecommenderModel) -> None:
        """Worker side: refresh the private replica from the mapping."""
        arrays = [model.item_embeddings] + list(model.interaction_params())
        for array, view in zip(arrays, self.views):
            array[...] = view


def _round_worker_main(
    conn,
    store,
    manifest_json,
    shard_ids,
    model,
    mirror,
    train_cfg,
    seed,
    kernel_backend,
):
    """One executor worker: pure per-subset local steps, forever.

    ``store`` arrives fork-inherited; for named-shm stores the worker
    drops it and re-attaches *only its own shards* through the manifest
    (the attach path the sweep backend also uses), for anonymous-mmap
    stores the inherited ``MAP_SHARED`` mappings are the attachment.
    Every task is a pure read of (store segments, model mirror): the
    worker never writes shared state, so the parent can kill and
    re-dispatch at any point without bit-drift.
    """
    if manifest_json is not None:
        from repro.federated.shards import ShardedStateStore

        store = ShardedStateStore.attach(manifest_json, shard_ids=shard_ids)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died; nothing left to do
            return
        if message is None:
            return
        round_idx, benign_ids = message
        with kernels.use(kernel_backend) as backend:
            fallbacks_before = backend.fallback_calls
            mirror.load_into(model)
            result = _compute_benign_stacks(
                model, train_cfg, seed, store, benign_ids, round_idx
            )
            fallbacks = backend.fallback_calls - fallbacks_before
        try:
            conn.send((round_idx,) + result + (fallbacks,))
        except (BrokenPipeError, OSError):  # parent died mid-round
            return


class _RoundWorker:
    """Handle for one forked worker process plus its pipe."""

    def __init__(self, ctx, index, spawn_args):
        self._ctx = ctx
        self.index = index
        self._spawn_args = spawn_args
        self.conn = None
        self.process = None
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_round_worker_main,
            args=(child_conn,) + self._spawn_args,
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.conn = parent_conn
        self.process = process

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=5)
        self.conn.close()


class ProcessRoundExecutor:
    """Computes benign round steps across forked worker processes.

    Each worker owns the shards ``{s : s mod workers == w}`` of a
    :class:`~repro.federated.shards.ShardedStateStore` and, per round,
    receives exactly the sampled participants living in those shards.
    Workers return per-client row stacks plus updated user rows over
    their pipe; the parent reassembles everything into exact
    participation order and performs the *single* scatter that commits
    the round — so the downstream fused server merge
    (:meth:`~repro.federated.server.Server.apply_batch`) accumulates in
    precisely the single-process order and the result is bit-identical
    to the in-process reference (pinned by the executor parity suite).

    Crash tolerance falls out of the dataflow: worker tasks are pure
    reads, so a worker SIGKILLed mid-round is respawned (re-attaching
    its shards) and its subset re-dispatched, with no state to repair.
    ``respawns`` counts those events for the chaos suite.

    Regularized stores are rejected at construction: the client-side
    defense keeps per-user mutable Python objects that live only in
    the parent, and silently computing around them would diverge.
    """

    def __init__(
        self,
        model: RecommenderModel,
        train_cfg: TrainConfig,
        seed: int,
        store,
        num_workers: int,
        *,
        kernel_backend=None,
    ):
        if num_workers < 2:
            raise ValueError("ProcessRoundExecutor needs num_workers >= 2")
        backend = getattr(store, "backend", None)
        if backend not in ("shm", "mmap"):
            raise ValueError(
                "ProcessRoundExecutor requires a ShardedStateStore "
                "(shared segments are what make worker reads see live "
                "state); got a dense in-process store"
            )
        if store.has_regularizers:
            raise ValueError(
                "ProcessRoundExecutor cannot execute client-side "
                "regularization: per-user regularizer state lives only "
                "in the parent process. Run this config in-process "
                "(round_workers=0)."
            )
        import multiprocessing

        self.model = model
        self.train_cfg = train_cfg
        self.seed = seed
        self.store = store
        self.num_workers = min(num_workers, store.manifest.num_shards)
        #: Workers respawned after dying mid-round (chaos counter).
        self.respawns = 0
        #: Rounds dispatched through the worker pool.
        self.rounds = 0
        #: Kernel numpy-fallback calls reported by workers.
        self.worker_kernel_fallbacks = 0
        self._bounds = store.manifest.bounds()
        self._ctx = multiprocessing.get_context("fork")
        manifest_json = (
            store.manifest.to_json() if backend == "shm" else None
        )
        # One mirror shared by every worker; created before the forks
        # so the anonymous mapping is inherited.
        self._mirror = _ModelMirror(model)
        self._pool = []
        for w in range(self.num_workers):
            shard_ids = [
                s
                for s in range(store.manifest.num_shards)
                if s % self.num_workers == w
            ]
            spawn_args = (
                None if manifest_json is not None else store,
                manifest_json,
                shard_ids,
                model,
                self._mirror,
                train_cfg,
                seed,
                kernel_backend,
            )
            self._pool.append(_RoundWorker(self._ctx, w, spawn_args))
        self._closed = False

    # -- dispatch -------------------------------------------------------

    def _worker_of(self, benign_ids: np.ndarray) -> np.ndarray:
        shards = np.searchsorted(self._bounds, benign_ids, side="right") - 1
        return shards % self.num_workers

    def compute(
        self, benign_ids: np.ndarray, round_idx: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
        """One round's benign stacks, reassembled in participation order."""
        if self._closed:
            raise RuntimeError("executor is closed")
        self._mirror.publish(self.model)
        ids = np.asarray(benign_ids, dtype=np.int64)
        owners = self._worker_of(ids)
        tasks: list[tuple[_RoundWorker, np.ndarray]] = []
        for w in np.unique(owners):
            positions = np.flatnonzero(owners == w)
            tasks.append((self._pool[int(w)], positions))
        # Phase 1: every worker gets its subset before any reply is
        # awaited, so all workers compute concurrently.
        for worker, positions in tasks:
            self._send(worker, round_idx, ids[positions])
        # Phase 2: collect (respawn + re-dispatch on worker death —
        # tasks are pure reads and nothing was scattered yet, so a
        # fresh worker recomputes the identical subset).
        replies = [
            self._recv(worker, round_idx, ids[positions])
            for worker, positions in tasks
        ]
        self.rounds += 1
        return self._reassemble(benign_ids, tasks, replies)

    def _send(self, worker: _RoundWorker, round_idx, ids) -> None:
        try:
            worker.conn.send((round_idx, ids))
        except (BrokenPipeError, OSError):
            self.respawns += 1
            worker.spawn()
            worker.conn.send((round_idx, ids))

    def _recv(self, worker: _RoundWorker, round_idx, ids):
        for attempt in range(3):
            try:
                reply = worker.conn.recv()
                if reply[0] != round_idx:  # pragma: no cover - stale reply
                    raise RuntimeError("out-of-order executor reply")
                self.worker_kernel_fallbacks += int(reply[-1])
                return reply[1:-1]
            except (EOFError, BrokenPipeError, OSError):
                self.respawns += 1
                worker.spawn()
                worker.conn.send((round_idx, ids))
        raise RuntimeError(
            f"executor worker {worker.index} kept dying mid-round; giving up"
        )

    def _reassemble(self, benign_ids, tasks, replies):
        """Merge per-worker subset results back into cohort order."""
        positions = np.concatenate([p for _, p in tasks])
        order = np.argsort(positions)
        new_users = np.concatenate([r[0] for r in replies])[order]
        lengths_cat = np.concatenate([r[2] for r in replies])
        ids_cat = np.concatenate([r[1] for r in replies])
        grads_cat = np.concatenate([r[3] for r in replies])
        lengths = lengths_cat[order]
        total = int(lengths_cat.sum())
        starts_cat = segment_starts(lengths_cat)
        # Row permutation: client `order[k]`'s contiguous row segment
        # moves to position k, rows within a segment keep their order.
        row_idx = (
            np.repeat(starts_cat[order], lengths)
            + np.arange(total, dtype=np.int64)
            - np.repeat(segment_starts(lengths), lengths)
        )
        item_ids = ids_cat[row_idx]
        item_grads = grads_cat[row_idx]
        num_param_stacks = len(replies[0][4]) if replies else 0
        param_stacks = [
            np.concatenate([r[4][index] for r in replies])[order]
            for index in range(num_param_stacks)
        ]
        return new_users, item_ids, lengths, item_grads, param_stacks

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if not self._closed:
            self._closed = True
            for worker in self._pool:
                worker.stop()
