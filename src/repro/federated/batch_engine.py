"""Vectorised batch-client execution engine for federated rounds.

The reference implementation of one communication round (the "loop"
engine in :class:`~repro.federated.simulation.FederatedSimulation`)
trains each sampled client in pure Python: per-client RNG spawn,
negative sampling, forward/backward, upload, then a per-item grouped
aggregation at the server.  At production round sizes the Python
per-client overhead — not the arithmetic — dominates wall-clock time.

:class:`BatchClientEngine` executes the *same* round as three tensor
passes over all sampled participants at once:

1. **Stack.** Every sampled benign client's local batch (its positives
   plus freshly sampled negatives, drawn from the client's own private
   RNG stream) is packed into one ragged row-stack
   (:func:`~repro.datasets.sampling.sample_local_batches`): flat
   ``(total_rows,)`` item-id and label arrays in which client ``k``
   owns a contiguous segment of ``lengths[k]`` rows.  The CSR-style
   layout wastes nothing under long-tail activity, where padding every
   client to the most active one would dwarf the real data.
2. **Step.** One batched embedding gather produces ``(total_rows,
   dim)`` item vectors and a single
   :meth:`~repro.models.base.RecommenderModel.batch_local_step` call
   runs every client's local BCE epoch — one row-stacked forward /
   backward shared by MF and NCF, with per-client reductions taken
   over each client's exact row segment.
3. **Scatter.** All uploads (the benign gradient rows — already
   row-aligned in participation order — plus whatever the round's
   malicious clients emitted, spliced in at their sampled positions)
   land in one dense delta buffer via a single
   :func:`~repro.federated.aggregation.scatter_sum` and the server
   takes one fused SGD step
   (:meth:`~repro.federated.server.Server.apply_scatter`).

Bit-exactness is a design invariant, not an approximation: every RNG
stream, every row-wise op, and every reduction matches the loop engine
bit for bit (NumPy scatters and reduces sequentially, so grouping rows
per item and summing matches scattering them in upload order), and so
``engine="loop"`` and ``engine="batch"`` produce identical
trajectories from the same seed.  The parity suite in
``tests/test_batch_engine.py`` asserts exactly that.

When a round needs per-client server machinery — a robust aggregator,
an update filter, or an audit log — the engine still *computes* in
batch but materialises ordinary :class:`ClientUpdate` uploads and
routes them through :meth:`Server.apply_updates`.  Rounds that need
semantics the batched step does not cover (the BPR loss) fall back to
the reference per-client loop wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.config import TrainConfig
from repro.datasets.sampling import sample_local_batches
from repro.federated.client import BenignClient
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.models.base import RecommenderModel, segment_starts
from repro.rng import spawn_batch

__all__ = ["BatchClientEngine"]


@dataclass
class _RoundBatch:
    """The benign half of one round, in ragged row-stack layout."""

    item_ids: np.ndarray  # (total_rows,)
    lengths: np.ndarray  # (clients,)
    starts: np.ndarray  # (clients,) row offset of each client's segment
    item_grads: np.ndarray  # (total_rows, dim)
    param_stacks: list[np.ndarray] = field(default_factory=list)


class BatchClientEngine:
    """Executes federated rounds with stacked per-client tensors."""

    def __init__(
        self,
        model: RecommenderModel,
        server: Server,
        benign_clients: Sequence[BenignClient],
        malicious_clients: Sequence,
        train_cfg: TrainConfig,
        seed: int,
        *,
        loop_round: Callable[[int, np.ndarray], None],
    ):
        self.model = model
        self.server = server
        self.benign_clients = benign_clients
        self.malicious_clients = malicious_clients
        self.train_cfg = train_cfg
        self.seed = seed
        #: Reference per-client implementation used for semantics the
        #: batched step does not cover (currently the BPR loss).
        self._loop_round = loop_round

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def run_round(self, round_idx: int, sampled: np.ndarray) -> None:
        """Execute one communication round for the sampled user ids."""
        if self.train_cfg.loss != "bce":
            self._loop_round(round_idx, sampled)
            return

        num_benign = len(self.benign_clients)
        sampled_list = [int(user_id) for user_id in sampled]
        benign_ids = np.array(
            [u for u in sampled_list if u < num_benign], dtype=np.int64
        )
        clients = [self.benign_clients[u] for u in benign_ids]

        # Malicious participants run their own (already attacker-internal
        # vectorised) logic; the global model is frozen within a round, so
        # running them before the benign batch is order-equivalent to the
        # interleaved reference loop.
        malicious_by_pos: dict[int, ClientUpdate] = {}
        for pos, user_id in enumerate(sampled_list):
            if user_id >= num_benign:
                update = self.malicious_clients[user_id - num_benign].participate(
                    self.model, self.train_cfg, round_idx
                )
                if update is not None:
                    malicious_by_pos[pos] = update

        batch = self._benign_batch_step(clients, benign_ids, round_idx)

        fast = (
            self.server.aggregator.supports_scatter
            and self.server.update_filter is None
            and self.server.audit_log is None
        )
        if fast:
            self._apply_fused(sampled_list, num_benign, malicious_by_pos, batch)
        else:
            self._apply_materialised(
                sampled_list, num_benign, malicious_by_pos, batch
            )

    # ------------------------------------------------------------------
    # Benign local training, batched
    # ------------------------------------------------------------------

    def _benign_batch_step(
        self,
        clients: list[BenignClient],
        benign_ids: np.ndarray,
        round_idx: int,
    ) -> _RoundBatch:
        """Run every sampled benign client's local step in one batch."""
        if not clients:
            zero = np.empty(0, dtype=np.int64)
            return _RoundBatch(zero, zero, zero, np.empty((0, 0)))

        for client in clients:
            if client.regularizer is not None:
                client.regularizer.observe(self.model.item_embeddings)

        rngs = spawn_batch(self.seed, ("client-round",), benign_ids, (round_idx,))
        item_ids, labels, lengths = sample_local_batches(
            rngs,
            [client.positive_items for client in clients],
            self.model.num_items,
            self.train_cfg.negative_ratio,
        )
        starts = segment_starts(lengths)
        user_vecs = np.stack([client.user_embedding for client in clients])
        item_vecs = self.model.item_embeddings[item_ids]
        result = self.model.batch_local_step(user_vecs, item_vecs, labels, lengths)
        item_grads = result.item_grads
        user_grads = result.user_grads
        param_stacks = result.param_grads

        if any(client.regularizer is not None for client in clients):
            self._apply_regularizers(
                clients, item_ids, lengths, starts,
                item_grads, user_grads, param_stacks,
            )

        # Local personalised-model update: u <- u - eta * grad_u, for the
        # whole participant stack at once.
        if self.train_cfg.client_lr_range is None:
            lrs: np.ndarray | float = self.train_cfg.effective_client_lr
            new_users = user_vecs - lrs * user_grads
        else:
            lrs = np.array(
                [client._client_lr(self.train_cfg) for client in clients]
            )
            new_users = user_vecs - lrs[:, None] * user_grads
        for client, row in zip(clients, new_users):
            client.user_embedding = row

        return _RoundBatch(item_ids, lengths, starts, item_grads, param_stacks)

    def _apply_regularizers(
        self,
        clients: list[BenignClient],
        item_ids: np.ndarray,
        lengths: np.ndarray,
        starts: np.ndarray,
        item_grads: np.ndarray,
        user_grads: np.ndarray,
        param_stacks: list[np.ndarray],
    ) -> None:
        """Add each client's defense gradient terms to the batch result.

        Mirrors the regularizer hook sequence of
        :meth:`BenignClient.participate` on each client's row segment of
        the stacked tensors; the hooks themselves are already
        vectorised, so this per-client pass costs one hook call per
        defended client.
        """
        item_matrix = self.model.item_embeddings
        has_params = bool(self.model.interaction_params())
        for row, client in enumerate(clients):
            regularizer = client.regularizer
            if regularizer is None:
                continue
            seg = slice(int(starts[row]), int(starts[row]) + int(lengths[row]))
            ids = item_ids[seg]
            item_grads[seg] += regularizer.item_grad_terms(ids, item_matrix)
            user_grads[row] += regularizer.user_grad_term(
                client.user_embedding, item_matrix
            )
            param_hook = getattr(regularizer, "param_grad_terms", None)
            if param_hook is not None and has_params:
                extra = param_hook(self.model, ids)
                if extra:
                    for index, term in enumerate(extra):
                        param_stacks[index][row] += term

    # ------------------------------------------------------------------
    # Server hand-off
    # ------------------------------------------------------------------

    def _apply_fused(
        self,
        sampled_list: list[int],
        num_benign: int,
        malicious_by_pos: dict[int, ClientUpdate],
        batch: _RoundBatch,
    ) -> None:
        """Ship the round as one concatenated scatter, no per-client uploads.

        The benign gradient rows already sit in participation order, so
        a round without malicious uploads goes to the server with zero
        copies; otherwise malicious uploads are spliced in at their
        sampled positions (splitting the benign stack into a handful of
        contiguous runs), keeping the scatter's row order — and
        therefore its floating-point result — exactly the reference
        engine's upload order.
        """
        if not malicious_by_pos:
            if len(batch.item_ids):
                self.server.apply_scatter(
                    batch.item_ids, batch.item_grads, batch.param_stacks
                )
            return

        num_params = len(self.model.interaction_params())
        run_starts = batch.starts
        run_lengths = batch.lengths
        id_chunks: list[np.ndarray] = []
        grad_chunks: list[np.ndarray] = []
        param_chunks: list[list[np.ndarray]] = [[] for _ in range(num_params)]
        benign_row = 0  # index of the next benign client
        run_begin = 0  # first benign client of the current contiguous run

        def flush_run(end: int) -> None:
            nonlocal run_begin
            if end > run_begin:
                lo = int(run_starts[run_begin])
                hi = int(run_starts[end - 1] + run_lengths[end - 1])
                id_chunks.append(batch.item_ids[lo:hi])
                grad_chunks.append(batch.item_grads[lo:hi])
                for index, stack in enumerate(batch.param_stacks):
                    param_chunks[index].append(stack[run_begin:end])
            run_begin = end

        malicious_has_params = False
        for pos, user_id in enumerate(sampled_list):
            if user_id < num_benign:
                benign_row += 1
                continue
            update = malicious_by_pos.get(pos)
            if update is None:
                continue
            flush_run(benign_row)
            id_chunks.append(update.item_ids)
            grad_chunks.append(update.item_grads)
            # Parameter uploads against a parameter-free model are
            # ignored, exactly like the reference server path.
            if update.param_grads and num_params:
                malicious_has_params = True
                for index, grad in enumerate(update.param_grads):
                    param_chunks[index].append(grad[None])
        flush_run(benign_row)

        if not id_chunks:
            return
        flat_ids = np.concatenate(id_chunks)
        flat_grads = np.concatenate(grad_chunks, axis=0)
        stacks: Sequence[np.ndarray] = batch.param_stacks
        if malicious_has_params:
            # Interleave parameter contributors in reference upload order.
            stacks = [np.concatenate(chunks) for chunks in param_chunks]
        self.server.apply_scatter(flat_ids, flat_grads, stacks)

    def _apply_materialised(
        self,
        sampled_list: list[int],
        num_benign: int,
        malicious_by_pos: dict[int, ClientUpdate],
        batch: _RoundBatch,
    ) -> None:
        """Rebuild per-client uploads for defenses, filters and audits.

        Robust aggregators need per-item contributor stacks, update
        filters and audit logs need whole per-client uploads; this path
        keeps the batched local *training* win while feeding the server
        exactly what the reference engine would.
        """
        updates: list[ClientUpdate] = []
        row = 0
        for pos, user_id in enumerate(sampled_list):
            if user_id < num_benign:
                seg = slice(
                    int(batch.starts[row]),
                    int(batch.starts[row]) + int(batch.lengths[row]),
                )
                updates.append(
                    ClientUpdate(
                        user_id=user_id,
                        item_ids=batch.item_ids[seg].copy(),
                        item_grads=batch.item_grads[seg].copy(),
                        # Copies, like the item arrays: updates may be
                        # retained (audit logs) or mutated by filters,
                        # and views would alias the whole round's stacks.
                        param_grads=[
                            stack[row].copy() for stack in batch.param_stacks
                        ],
                    )
                )
                row += 1
            else:
                update = malicious_by_pos.get(pos)
                if update is not None:
                    updates.append(update)
        self.server.apply_updates(updates)
