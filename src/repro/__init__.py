"""repro: reproduction of "Preventing the Popular Item Embedding Based
Attack in Federated Recommendations" (ICDE 2024).

The library provides, in pure NumPy:

* federated recommender training (MF-FRS and DL-FRS / NCF),
* the PIECK attack family (popular item mining, PIECK-IPE, PIECK-UEA)
  and the four baseline attacks it is compared against,
* six Byzantine-robust server defenses and the paper's client-side
  regularization defense,
* the full experiment harness regenerating every table and figure.

Quickstart::

    from repro import ExperimentConfig, AttackConfig, FederatedSimulation
    cfg = ExperimentConfig(attack=AttackConfig(name="pieck_uea"))
    result = FederatedSimulation(cfg).run()
    print(result.exposure, result.hit_ratio)
"""

from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
    replace,
)
from repro.datasets import InteractionDataset, generate_longtail_dataset, load_dataset
from repro.federated import FederatedSimulation, SimulationResult
from repro.models import build_model

__version__ = "1.0.0"

__all__ = [
    "AttackConfig",
    "DatasetConfig",
    "DefenseConfig",
    "ExperimentConfig",
    "ModelConfig",
    "TrainConfig",
    "replace",
    "InteractionDataset",
    "generate_longtail_dataset",
    "load_dataset",
    "FederatedSimulation",
    "SimulationResult",
    "build_model",
    "__version__",
]
