"""Per-round wall-clock cost measurement (Fig. 6b).

The paper reports average time per training round for the vanilla FRS,
the two PIECK variants and the defense, on both model types, showing
all overheads are small. This helper measures the same quantity for
any experiment configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.federated.simulation import FederatedSimulation

__all__ = ["RoundCost", "measure_round_cost"]


@dataclass(frozen=True)
class RoundCost:
    """Average seconds per communication round for one configuration."""

    label: str
    seconds_per_round: float
    rounds_measured: int


def measure_round_cost(
    config: ExperimentConfig,
    *,
    rounds: int = 30,
    warmup_rounds: int = 5,
    label: str = "",
    dataset: InteractionDataset | None = None,
) -> RoundCost:
    """Time the round loop, excluding setup and warm-up rounds.

    Warm-up rounds let PIECK's miners finish (their attack path is the
    expensive one) so the steady-state cost is what gets measured,
    matching the paper's 500-round averages.
    """
    sim = FederatedSimulation(config, dataset=dataset)
    for round_idx in range(warmup_rounds):
        sim.run_round(round_idx)
    started = time.perf_counter()
    for round_idx in range(warmup_rounds, warmup_rounds + rounds):
        sim.run_round(round_idx)
    elapsed = time.perf_counter() - started
    return RoundCost(
        label=label or (config.attack.name if config.attack else "clean"),
        seconds_per_round=elapsed / max(rounds, 1),
        rounds_measured=rounds,
    )
