"""Expected poisonous-gradient proportion Ẽ(v_j) (Section V-A, Eq. 11-13).

The paper's defense analysis: for an item ``v_j``, the expected share
of poisonous gradients among all gradients the server receives for it
is ``p̃ / ((1 - p̃) p_j + p̃)`` where ``p_j`` is the probability that a
benign user's local training set contains ``v_j``. For a cold target
item ``p_j`` is tiny and the poison share approaches 1 — the reason
count-based robust aggregation cannot work.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import InteractionDataset

__all__ = ["item_inclusion_probability", "expected_poison_proportion"]


def item_inclusion_probability(
    dataset: InteractionDataset, item: int, negative_ratio: int = 1
) -> float:
    """``p_j`` (Eq. 12-13): chance a benign user's D_i contains item j.

    For users who interacted with the item the probability is 1; for
    the rest it is the chance the item lands among the ``q |D_i+|``
    sampled negatives out of the ``|V| - |D_i+|`` candidates.
    """
    if not 0 <= item < dataset.num_items:
        raise ValueError(f"item {item} out of range")
    total = 0.0
    for user in range(dataset.num_users):
        positives = dataset.train_pos[user]
        if item in dataset.train_set(user):
            total += 1.0
        else:
            pool = dataset.num_items - len(positives)
            if pool > 0:
                total += min(negative_ratio * len(positives), pool) / pool
    return total / max(dataset.num_users, 1)


def expected_poison_proportion(
    inclusion_probability: float, malicious_ratio: float
) -> float:
    """``Ẽ(v_j)`` (Eq. 11) from ``p_j`` and the malicious ratio ``p̃``."""
    if not 0.0 <= inclusion_probability <= 1.0:
        raise ValueError("inclusion probability must lie in [0, 1]")
    if not 0.0 <= malicious_ratio < 1.0:
        raise ValueError("malicious ratio must lie in [0, 1)")
    if malicious_ratio == 0.0:
        return 0.0
    benign = (1.0 - malicious_ratio) * inclusion_probability
    return malicious_ratio / (benign + malicious_ratio)


def poison_proportion_profile(
    dataset: InteractionDataset,
    malicious_ratio: float,
    *,
    negative_ratio: int = 1,
    items: np.ndarray | None = None,
) -> np.ndarray:
    """``Ẽ(v_j)`` for a set of items (default: every item)."""
    if items is None:
        items = np.arange(dataset.num_items)
    return np.array(
        [
            expected_poison_proportion(
                item_inclusion_probability(dataset, int(j), negative_ratio),
                malicious_ratio,
            )
            for j in np.atleast_1d(items)
        ]
    )
