"""Empirical validation of the Eq. 11 defense analysis from audit logs.

Section V-A derives that the expected *proportion* of poisonous
gradients for an item grows as the item gets colder (Eq. 11-13),
breaking the minority-poison assumption of Byzantine-robust
aggregation. :func:`poison_share_summary` computes the measured
counterpart from a :class:`repro.federated.audit.ServerAuditLog`, and
:func:`theory_vs_measured` lines it up against the closed-form
prediction for each attacked item.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.poison_proportion import (
    expected_poison_proportion,
    item_inclusion_probability,
)
from repro.datasets.base import InteractionDataset
from repro.federated.audit import ServerAuditLog

__all__ = [
    "ItemPoisonSummary",
    "poison_share_summary",
    "theory_vs_measured",
]


@dataclass(frozen=True)
class ItemPoisonSummary:
    """Aggregated poison statistics for one item across all rounds."""

    item_id: int
    rounds_contributed: int
    benign_gradients: int
    malicious_gradients: int
    mean_count_share: float
    mean_mass_share: float

    @property
    def overall_count_share(self) -> float:
        """Poison share of all gradients pooled over rounds."""
        total = self.benign_gradients + self.malicious_gradients
        return self.malicious_gradients / total if total else 0.0


def poison_share_summary(
    log: ServerAuditLog, item_id: int
) -> ItemPoisonSummary:
    """Summarise one item's poison exposure across the logged rounds."""
    records = log.for_item(item_id)
    if not records:
        return ItemPoisonSummary(
            item_id=item_id,
            rounds_contributed=0,
            benign_gradients=0,
            malicious_gradients=0,
            mean_count_share=0.0,
            mean_mass_share=0.0,
        )
    count_shares = [r.poison_count_share for r in records]
    mass_shares = [r.poison_mass_share for r in records]
    return ItemPoisonSummary(
        item_id=item_id,
        rounds_contributed=len(records),
        benign_gradients=sum(r.benign_count for r in records),
        malicious_gradients=sum(r.malicious_count for r in records),
        mean_count_share=float(np.mean(count_shares)),
        mean_mass_share=float(np.mean(mass_shares)),
    )


def theory_vs_measured(
    log: ServerAuditLog,
    dataset: InteractionDataset,
    malicious_ratio: float,
    *,
    negative_ratio: int = 1,
) -> list[tuple[int, float, float]]:
    """Eq. 11 prediction vs measured poison count share per attacked item.

    Returns ``(item_id, predicted_share, measured_share)`` triples for
    every item the log saw at least one malicious gradient for. The
    prediction uses the item's inclusion probability ``p_j`` (Eq. 12-13)
    computed from the dataset's ground-truth interactions.
    """
    rows: list[tuple[int, float, float]] = []
    for item_id in log.poisoned_items():
        pj = item_inclusion_probability(
            dataset, int(item_id), negative_ratio=negative_ratio
        )
        predicted = expected_poison_proportion(pj, malicious_ratio)
        measured = poison_share_summary(log, int(item_id)).overall_count_share
        rows.append((int(item_id), float(predicted), float(measured)))
    return rows
