"""Item popularity distribution analysis (Fig. 3).

The paper motivates popular item mining with the long-tail law of item
popularity: the top 15% of items collect more than 50% of all
interactions on its datasets. These helpers compute the curve and the
head/tail summary for any :class:`repro.datasets.InteractionDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import InteractionDataset

__all__ = ["popularity_curve", "longtail_summary", "LongTailSummary"]


def popularity_curve(dataset: InteractionDataset) -> np.ndarray:
    """Interaction counts sorted descending — the Fig. 3 curve."""
    counts = dataset.popularity()
    return np.sort(counts)[::-1]


@dataclass(frozen=True)
class LongTailSummary:
    """Head/tail split statistics of the popularity distribution."""

    num_items: int
    num_interactions: int
    #: Fraction of items considered "popular" (the paper uses 15%).
    head_fraction: float
    #: Share of all interactions collected by the head items.
    head_interaction_share: float
    #: Smallest number of head items covering 50% of interactions,
    #: as a fraction of the catalogue.
    items_for_half_interactions: float
    #: Gini coefficient of the popularity distribution (0 = uniform).
    gini: float


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of non-negative counts."""
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts).astype(np.float64)
    n = len(sorted_counts)
    cumulative = np.cumsum(sorted_counts)
    # Standard formula: 1 - 2 * integral of the Lorenz curve.
    lorenz_area = (cumulative / total).sum() / n
    return float(1.0 - 2.0 * lorenz_area + 1.0 / n)


def longtail_summary(
    dataset: InteractionDataset, head_fraction: float = 0.15
) -> LongTailSummary:
    """Summarise the long-tail shape the paper's Fig. 3 visualises.

    Reproducing the figure's claim amounts to
    ``head_interaction_share > 0.5`` at ``head_fraction = 0.15``.
    """
    if not 0.0 < head_fraction <= 1.0:
        raise ValueError("head_fraction must lie in (0, 1]")
    curve = popularity_curve(dataset)
    total = int(curve.sum())
    head = max(1, int(round(len(curve) * head_fraction)))
    head_share = float(curve[:head].sum() / total) if total else 0.0

    if total:
        cumulative = np.cumsum(curve)
        half_idx = int(np.searchsorted(cumulative, total / 2.0)) + 1
        items_for_half = half_idx / len(curve)
    else:
        items_for_half = 1.0
    return LongTailSummary(
        num_items=dataset.num_items,
        num_interactions=total,
        head_fraction=head_fraction,
        head_interaction_share=head_share,
        items_for_half_interactions=items_for_half,
        gini=_gini(curve),
    )
