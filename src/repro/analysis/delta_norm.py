"""Δ-Norm vs popularity study (Fig. 4, Properties 1-2).

Trains a clean FRS while recording the global item matrix every round,
then asks: of the top-50 items by per-round Δ-Norm (Eq. 7), how many
are popular? The paper's claim — reproduced here — is that popular
items dominate the top Δ-Norm ranks, increasingly so as unpopular
items converge (rounds 4 → 80).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ExperimentConfig
from repro.datasets.base import InteractionDataset
from repro.federated.simulation import FederatedSimulation

__all__ = ["DeltaNormStudy", "run_delta_norm_study", "mining_window_study"]


@dataclass
class DeltaNormStudy:
    """Per-round Δ-Norm top-K popularity ranks for a clean training run."""

    rounds: list[int]
    #: ``top_popularity_ranks[i]`` = popularity ranks (0 = most popular)
    #: of the top-K items by Δ-Norm at ``rounds[i]``.
    top_popularity_ranks: list[np.ndarray] = field(default_factory=list)
    #: Fraction of the top-K Δ-Norm items that are popular (head) items.
    popular_share: list[float] = field(default_factory=list)

    def share_at(self, round_idx: int) -> float:
        """Popular share of the Δ-Norm top-K at a recorded round."""
        return self.popular_share[self.rounds.index(round_idx)]


def run_delta_norm_study(
    config: ExperimentConfig,
    *,
    probe_rounds: tuple[int, ...] = (4, 8, 20, 80),
    top_k: int = 50,
    head_fraction: float = 0.15,
    dataset: InteractionDataset | None = None,
) -> DeltaNormStudy:
    """Reproduce Fig. 4 for the configured model/dataset.

    Runs a clean (attack-free) simulation long enough to cover the last
    probe round, recording global item snapshots, then ranks items by
    single-round Δ-Norm at each probe round.
    """
    if config.attack is not None:
        raise ValueError("the Δ-Norm study uses a clean (attack-free) run")
    max_round = max(probe_rounds)
    sim = FederatedSimulation(config, dataset=dataset)
    result = sim.run(rounds=max_round + 1, record_item_history=True)
    snapshots = result.item_history  # one per round + final

    pop_rank = sim.dataset.popularity_rank_of()
    head = max(1, int(round(sim.dataset.num_items * head_fraction)))
    study = DeltaNormStudy(rounds=list(probe_rounds))
    for round_idx in probe_rounds:
        delta = np.linalg.norm(
            snapshots[round_idx + 1] - snapshots[round_idx], axis=1
        )
        top = np.argsort(-delta, kind="stable")[: min(top_k, len(delta))]
        ranks = pop_rank[top]
        study.top_popularity_ranks.append(ranks)
        study.popular_share.append(float((ranks < head).mean()))
    return study


def mining_window_study(
    config: ExperimentConfig,
    *,
    windows: tuple[int, ...] = (1, 2, 4, 8),
    num_popular: int = 10,
    start_round: int = 0,
    head_fraction: float = 0.15,
    dataset: InteractionDataset | None = None,
) -> dict[int, float]:
    """Ablate Algorithm 1's accumulation window R-tilde.

    Runs one clean training run, mines the popular set with a separate
    miner per window R-tilde (all observing the same snapshots from
    ``start_round`` on), and returns ``{window: popular_share}`` where
    the share is the fraction of the mined top-N that belongs to the
    head (top ``head_fraction``) of the true popularity ranking.
    """
    from repro.attacks.mining import PopularItemMiner

    if config.attack is not None:
        raise ValueError("the mining-window study uses a clean run")
    if not windows:
        raise ValueError("need at least one window")
    sim = FederatedSimulation(config, dataset=dataset)
    miners = {
        window: PopularItemMiner(sim.dataset.num_items, window, num_popular)
        for window in windows
    }
    total_rounds = start_round + max(windows) + 1
    for round_idx in range(total_rounds):
        sim.run_round(round_idx)
        if round_idx < start_round:
            continue
        for miner in miners.values():
            if not miner.ready:
                miner.observe(sim.model.item_embeddings)
    pop_rank = sim.dataset.popularity_rank_of()
    head = max(1, int(round(sim.dataset.num_items * head_fraction)))
    return {
        window: float((pop_rank[miner.popular_items()] < head).mean())
        for window, miner in miners.items()
    }
