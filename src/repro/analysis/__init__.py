"""Analysis utilities behind the paper's figures and theory sections."""

from repro.analysis.audit import (
    ItemPoisonSummary,
    poison_share_summary,
    theory_vs_measured,
)
from repro.analysis.cost import measure_round_cost
from repro.analysis.delta_norm import (
    DeltaNormStudy,
    mining_window_study,
    run_delta_norm_study,
)
from repro.analysis.geometry import (
    AlignmentReport,
    alignment_report,
    centroid_cosine,
    property3_report,
)
from repro.analysis.poison_proportion import expected_poison_proportion, item_inclusion_probability
from repro.analysis.popularity import longtail_summary, popularity_curve

__all__ = [
    "popularity_curve",
    "longtail_summary",
    "DeltaNormStudy",
    "run_delta_norm_study",
    "mining_window_study",
    "expected_poison_proportion",
    "item_inclusion_probability",
    "measure_round_cost",
    "AlignmentReport",
    "alignment_report",
    "centroid_cosine",
    "property3_report",
    "ItemPoisonSummary",
    "poison_share_summary",
    "theory_vs_measured",
]
