"""Embedding-geometry diagnostics behind Property 3 (Section IV-D).

PIECK-UEA rests on the observation that mined popular items' embeddings
distribute like benign users' embeddings. These diagnostics quantify
*how well* that holds for a trained simulation — the centroid cosine,
norm ratios, and per-user alignment — and are what surfaced the q=10
breakdown documented in EXPERIMENTS.md: heavy negative sampling pushes
item embeddings into a region users do not occupy, which is exactly
when the raw Eq. 10 approximation stops working and the refined
pseudo-user source (:mod:`repro.attacks.refinement`) is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.federated.simulation import FederatedSimulation

__all__ = ["AlignmentReport", "alignment_report", "centroid_cosine"]


def centroid_cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between the centroids of two embedding sets."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("expected 2-D embedding matrices")
    ca, cb = a.mean(axis=0), b.mean(axis=0)
    na, nb = np.linalg.norm(ca), np.linalg.norm(cb)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(ca @ cb / (na * nb))


@dataclass(frozen=True)
class AlignmentReport:
    """How closely a set of stand-in vectors matches the user geometry.

    Attributes
    ----------
    centroid_cos:
        Cosine between the stand-in centroid and the user centroid
        (Property 3 holds when this is near 1).
    mean_user_cos:
        Mean cosine between each real user embedding and the stand-in
        centroid — per-user alignment rather than centroid-level.
    positive_user_fraction:
        Fraction of real users whose embedding has positive cosine with
        the stand-in centroid (1.0 means no user points away).
    norm_ratio:
        Mean stand-in norm divided by mean user norm; poison optimised
        against stand-ins with the wrong scale under- or over-shoots.
    """

    centroid_cos: float
    mean_user_cos: float
    positive_user_fraction: float
    norm_ratio: float


def alignment_report(
    users: np.ndarray, stand_ins: np.ndarray
) -> AlignmentReport:
    """Measure how well ``stand_ins`` approximate the ``users`` matrix."""
    if len(users) == 0 or len(stand_ins) == 0:
        raise ValueError("need at least one user and one stand-in vector")
    centroid = stand_ins.mean(axis=0)
    centroid_norm = float(np.linalg.norm(centroid))
    user_norms = np.linalg.norm(users, axis=1)
    safe_user_norms = np.where(user_norms == 0.0, 1.0, user_norms)
    if centroid_norm == 0.0:
        cosines = np.zeros(len(users))
    else:
        cosines = users @ centroid / (safe_user_norms * centroid_norm)
    mean_user_norm = float(user_norms.mean())
    mean_standin_norm = float(np.linalg.norm(stand_ins, axis=1).mean())
    return AlignmentReport(
        centroid_cos=centroid_cosine(users, stand_ins),
        mean_user_cos=float(cosines.mean()),
        positive_user_fraction=float((cosines > 0.0).mean()),
        norm_ratio=(
            mean_standin_norm / mean_user_norm if mean_user_norm > 0 else 0.0
        ),
    )


def property3_report(
    sim: FederatedSimulation, *, num_popular: int = 10
) -> AlignmentReport:
    """Property-3 alignment of the true top-N popular items for ``sim``.

    Uses ground-truth popularity (analysis-side, not attacker-side) so
    the report isolates the geometry question from mining quality.
    ``sim.user_embedding_matrix()`` is a zero-copy view of the live
    client-state store — reading it here costs nothing at any user
    count, and nothing below mutates it.
    """
    popularity = sim.dataset.popularity()
    top = np.argsort(popularity)[::-1][:num_popular]
    return alignment_report(
        sim.user_embedding_matrix(), sim.model.item_embeddings[top]
    )
